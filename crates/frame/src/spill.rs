//! Process-global LRU spill-to-disk tier for cold segments (DESIGN.md §15).
//!
//! Unconfigured (the default), every function here is a no-op and segments
//! stay resident forever — the pre-segmentation behaviour. Configuring the
//! pool ([`configure`]) sets a directory and a resident-byte budget; sealing
//! or reloading a segment that pushes the pool past its budget evicts the
//! least-recently-used resident segments to fingerprint-addressed files
//! until the pool fits again.
//!
//! Spilling is invisible to traces: payloads round-trip bit-exactly (f64
//! bit patterns, u32 codes, packed validity), fingerprints are memoized
//! before eviction, and the LRU order derives from a monotonic access
//! counter, never the wall clock (lint rule D3). Spill/reload totals are
//! exported through `comet-obs` (`segment.spills`, `segment.reloads`,
//! `segment.resident`, `segment.spill_bytes`).
//!
//! Lock order: pool → segment fingerprint slot → segment state. Segment
//! file I/O helpers never touch the pool lock, so eviction (which runs with
//! the pool lock held) and reload (which runs with no lock held) cannot
//! deadlock. Byte accounting tolerates a bounded, self-correcting drift of
//! one segment per thread racing an eviction against a reload.

use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, Weak};

use crate::segment::{SegData, SegPayload, SegmentCore, SpillOutcome};
use crate::{ColumnKind, FrameError, Result};

/// Spill file magic + version.
const MAGIC: &[u8; 8] = b"CSEG0001";

/// Resident bytes released by dropped segments, not yet settled into the
/// pool's `resident` counter. `SegmentCore::drop` may run while the pool
/// lock is held (eviction can release the last strong reference), so drops
/// record here lock-free and every pool entry point settles the books
/// before acting. Without this, bytes of dropped-while-resident segments
/// would inflate `resident` forever — once the phantom total passes the
/// budget, every register/reload evicts everything live and the pool
/// thrashes permanently.
static DEAD_RESIDENT: AtomicU64 = AtomicU64::new(0);

struct PoolState {
    dir: PathBuf,
    budget: u64,
    /// Bytes of registered, currently-resident segment payloads.
    resident: u64,
    /// Bytes currently parked in spill files by live segments.
    spilled: u64,
    entries: Vec<Weak<SegmentCore>>,
    spills: u64,
    reloads: u64,
    error: Option<String>,
}

static POOL: Mutex<Option<PoolState>> = Mutex::new(None);

fn pool() -> std::sync::MutexGuard<'static, Option<PoolState>> {
    POOL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Point-in-time pool counters, for reports and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillStats {
    /// Registered segments currently resident.
    pub resident_segments: usize,
    /// Bytes of resident registered payloads.
    pub resident_bytes: u64,
    /// Segments currently parked on disk.
    pub spilled_segments: usize,
    /// Bytes currently parked on disk.
    pub spill_bytes: u64,
    /// Total evictions since configure.
    pub spills: u64,
    /// Total reloads since configure.
    pub reloads: u64,
}

/// Enable the spill tier: segments spill under `dir` once their combined
/// resident payload exceeds `budget_bytes`. Reconfiguring replaces the
/// budget and directory; already-spilled segments reload from wherever they
/// were written (spill files are fingerprint-addressed, so stale files are
/// harmless). Segments sealed before the pool was configured are not
/// tracked — configure the pool before loading data.
pub fn configure(dir: impl AsRef<Path>, budget_bytes: u64) -> Result<()> {
    let dir = dir.as_ref().to_path_buf();
    fs::create_dir_all(&dir)?;
    let mut guard = pool();
    match guard.as_mut() {
        Some(state) => {
            state.dir = dir;
            state.budget = budget_bytes;
        }
        None => {
            // Drops recorded while no pool was live belong to untracked
            // segments — discard them with the fresh counters.
            // comet-lint: allow(D9) — refund counter reset under the pool guard; settles at next pool op
            DEAD_RESIDENT.store(0, Ordering::Relaxed);
            *guard = Some(PoolState {
                dir,
                budget: budget_bytes,
                resident: 0,
                spilled: 0,
                entries: Vec::new(),
                spills: 0,
                reloads: 0,
                error: None,
            });
        }
    }
    Ok(())
}

/// Disable the spill tier. Already-spilled segments can no longer reload
/// (the pool forgets its directory), so only call this when no spilled
/// data is live — tests and teardown.
pub fn deconfigure() {
    *pool() = None;
}

/// True when a spill pool is active.
pub fn is_configured() -> bool {
    pool().is_some()
}

/// The pool's spill directory, when configured.
pub(crate) fn dir() -> Option<PathBuf> {
    pool().as_ref().map(|s| s.dir.clone())
}

/// Current pool counters, `None` when unconfigured.
pub fn stats() -> Option<SpillStats> {
    let mut guard = pool();
    let state = guard.as_mut()?;
    settle_dead(state);
    let mut resident_segments = 0usize;
    let mut spilled_segments = 0usize;
    for entry in &state.entries {
        if let Some(core) = entry.upgrade() {
            if core.resident_bytes().is_some() {
                resident_segments += 1;
            } else {
                spilled_segments += 1;
            }
        }
    }
    Some(SpillStats {
        resident_segments,
        resident_bytes: state.resident,
        spilled_segments,
        spill_bytes: state.spilled,
        spills: state.spills,
        reloads: state.reloads,
    })
}

/// Record a spill-path failure. Sticky: surfaced by [`take_error`].
pub fn note_error(msg: &str) {
    if let Some(state) = pool().as_mut() {
        if state.error.is_none() {
            state.error = Some(msg.to_string());
        }
    }
}

/// Take (and clear) the first spill-path failure since the last call.
/// Session runners should check this at step boundaries: per-cell reads
/// have no error channel, so a reload failure downgrades them to missing
/// cells (lint rule D4 forbids panicking) and the cause surfaces here.
pub fn take_error() -> Option<String> {
    pool().as_mut().and_then(|state| state.error.take())
}

/// Register a freshly sealed resident segment and evict if over budget.
pub(crate) fn register(core: &Arc<SegmentCore>) {
    let mut guard = pool();
    let Some(state) = guard.as_mut() else { return };
    settle_dead(state);
    let bytes = core.resident_bytes().unwrap_or(0);
    core.set_tracked();
    state.entries.push(Arc::downgrade(core));
    state.resident = state.resident.saturating_add(bytes);
    evict_to_budget(state);
    publish(state);
}

/// Record resident bytes released by a dropped tracked segment. Lock-free
/// on purpose: see [`DEAD_RESIDENT`].
pub(crate) fn note_dead(bytes: u64) {
    // comet-lint: allow(D9) — commutative byte-count refund; settled under the pool lock before reads
    DEAD_RESIDENT.fetch_add(bytes, Ordering::Relaxed);
}

/// Settle dropped-segment refunds into the resident counter before any
/// budget decision reads it.
fn settle_dead(state: &mut PoolState) {
    // comet-lint: allow(D9) — swap happens under the pool lock; concurrent refunds land in the next settle
    let dead = DEAD_RESIDENT.swap(0, Ordering::Relaxed);
    state.resident = state.resident.saturating_sub(dead);
}

/// Account a reload (the segment is already registered) and rebalance.
pub(crate) fn after_reload(bytes: u64) {
    let mut guard = pool();
    let Some(state) = guard.as_mut() else { return };
    settle_dead(state);
    state.resident = state.resident.saturating_add(bytes);
    state.spilled = state.spilled.saturating_sub(bytes);
    state.reloads += 1;
    comet_obs::counter_add("segment.reloads", 1);
    evict_to_budget(state);
    publish(state);
}

/// Account an eviction undone by the mutation path: a segment whose
/// payload was reinstated from a live view without touching disk (not a
/// reload — no file was read, so the reload counter stays put).
pub(crate) fn after_reinstate(bytes: u64) {
    let mut guard = pool();
    let Some(state) = guard.as_mut() else { return };
    settle_dead(state);
    state.resident = state.resident.saturating_add(bytes);
    state.spilled = state.spilled.saturating_sub(bytes);
    evict_to_budget(state);
    publish(state);
}

/// Evict least-recently-used resident segments until under budget. Runs
/// with the pool lock held; takes each core's fingerprint + state locks in
/// turn (pool → fp → state order, see module docs).
fn evict_to_budget(state: &mut PoolState) {
    if state.resident <= state.budget {
        return;
    }
    // Drop dead entries and rank survivors by LRU clock.
    let mut live: Vec<(u64, Arc<SegmentCore>)> = Vec::with_capacity(state.entries.len());
    state.entries.retain(|w| match w.upgrade() {
        Some(core) => {
            if core.resident_bytes().is_some() {
                live.push((core.last_touch(), Arc::clone(&core)));
            }
            true
        }
        None => false,
    });
    live.sort_by_key(|&(touch, _)| touch);
    for (_, core) in live {
        if state.resident <= state.budget {
            break;
        }
        match core.try_spill(&state.dir) {
            SpillOutcome::Spilled(bytes) => {
                state.resident = state.resident.saturating_sub(bytes);
                state.spilled = state.spilled.saturating_add(bytes);
                state.spills += 1;
                comet_obs::counter_add("segment.spills", 1);
            }
            SpillOutcome::Skip => {}
            SpillOutcome::Failed(msg) => {
                if state.error.is_none() {
                    state.error = Some(msg);
                }
            }
        }
    }
}

fn publish(state: &PoolState) {
    comet_obs::gauge_set("segment.resident_bytes", state.resident as f64);
    comet_obs::gauge_set("segment.spill_bytes", state.spilled as f64);
}

/// Recompute the resident-segment-count gauge (an O(entries) sweep, so it
/// runs on demand from report paths rather than on every access).
pub fn publish_resident_gauge() {
    if let Some(stats) = stats() {
        comet_obs::gauge_set("segment.resident", stats.resident_segments as f64);
    }
}

fn file_path(dir: &Path, fp: u64) -> PathBuf {
    dir.join(format!("{fp:016x}.seg"))
}

/// Serialize a payload to its fingerprint-addressed file under `dir`.
/// Content-addressed writes are idempotent: an existing file is trusted
/// (same fingerprint, same bytes). Writes go through a temp file + rename
/// so a kill mid-spill never leaves a truncated file under the final name.
/// Never touches the pool lock (callable from eviction).
pub(crate) fn write_segment_file(dir: &Path, fp: u64, payload: &SegPayload) -> Result<()> {
    let path = file_path(dir, fp);
    if path.exists() {
        return Ok(());
    }
    let tmp = dir.join(format!("{fp:016x}.tmp"));
    {
        let mut f = std::io::BufWriter::new(fs::File::create(&tmp)?);
        f.write_all(MAGIC)?;
        let (kind, len) = match &payload.data {
            SegData::Num(v) => (0u8, v.len()),
            SegData::Cat(v) => (1u8, v.len()),
        };
        f.write_all(&[kind])?;
        f.write_all(&(len as u64).to_le_bytes())?;
        match &payload.data {
            SegData::Num(v) => {
                for x in v {
                    f.write_all(&x.to_bits().to_le_bytes())?;
                }
            }
            SegData::Cat(v) => {
                for x in v {
                    f.write_all(&x.to_le_bytes())?;
                }
            }
        }
        let mut byte = 0u8;
        let mut bits = 0u32;
        for (i, &v) in payload.valid.iter().enumerate() {
            byte |= (v as u8) << bits;
            bits += 1;
            if bits == 8 || i + 1 == payload.valid.len() {
                f.write_all(&[byte])?;
                byte = 0;
                bits = 0;
            }
        }
        f.flush()?;
    }
    fs::rename(&tmp, &path)?;
    Ok(())
}

/// Read a payload back from its fingerprint-addressed file, bit-exactly.
/// Never touches the pool lock.
pub(crate) fn read_segment_file(
    dir: &Path,
    fp: u64,
    kind: ColumnKind,
    len: usize,
) -> Result<SegPayload> {
    let path = file_path(dir, fp);
    let mut f =
        std::io::BufReader::new(fs::File::open(&path).map_err(|e| {
            FrameError::Io(format!("spill reload of {} failed: {e}", path.display()))
        })?);
    let mut magic = [0u8; 8];
    f.read_exact(&mut magic)?;
    let mut head = [0u8; 9];
    f.read_exact(&mut head)?;
    let file_kind = head[0];
    let file_len = u64::from_le_bytes([
        head[1], head[2], head[3], head[4], head[5], head[6], head[7], head[8],
    ]) as usize;
    let kind_ok =
        matches!((kind, file_kind), (ColumnKind::Numeric, 0) | (ColumnKind::Categorical, 1));
    if &magic != MAGIC || !kind_ok || file_len != len {
        return Err(FrameError::Io(format!(
            "spill file {} is corrupt or mismatched",
            path.display()
        )));
    }
    let data = match kind {
        ColumnKind::Numeric => {
            let mut v = Vec::with_capacity(len);
            let mut buf = [0u8; 8];
            for _ in 0..len {
                f.read_exact(&mut buf)?;
                v.push(f64::from_bits(u64::from_le_bytes(buf)));
            }
            SegData::Num(v)
        }
        ColumnKind::Categorical => {
            let mut v = Vec::with_capacity(len);
            let mut buf = [0u8; 4];
            for _ in 0..len {
                f.read_exact(&mut buf)?;
                v.push(u32::from_le_bytes(buf));
            }
            SegData::Cat(v)
        }
    };
    let mut valid = Vec::with_capacity(len);
    let mut byte = [0u8; 1];
    let mut bits = 8u32;
    for _ in 0..len {
        if bits == 8 {
            f.read_exact(&mut byte)?;
            bits = 0;
        }
        valid.push((byte[0] >> bits) & 1 == 1);
        bits += 1;
    }
    Ok(SegPayload { data, valid })
}
