//! Train/test splitting.

use crate::{DataFrame, FrameError, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// Options controlling [`train_test_split`].
#[derive(Debug, Clone, Copy)]
pub struct SplitOptions {
    /// Fraction of rows assigned to the test split, in (0, 1).
    pub test_fraction: f64,
    /// Stratify by label so both splits keep the class distribution.
    pub stratify: bool,
}

impl Default for SplitOptions {
    fn default() -> Self {
        // The paper uses standard hold-out evaluation; 80/20 stratified is
        // the conventional scikit-learn default workflow.
        SplitOptions { test_fraction: 0.2, stratify: true }
    }
}

/// The result of a split.
#[derive(Debug, Clone)]
pub struct TrainTest {
    /// Training split.
    pub train: DataFrame,
    /// Test split.
    pub test: DataFrame,
    /// Original row indices of the training rows.
    pub train_rows: Vec<usize>,
    /// Original row indices of the test rows.
    pub test_rows: Vec<usize>,
}

/// Split `df` into train and test frames.
///
/// With `stratify`, rows are grouped by label code and each group is split
/// independently so class balance is preserved — important for F1 stability
/// on the imbalanced datasets (Churn, Credit).
pub fn train_test_split<R: Rng>(
    df: &DataFrame,
    options: SplitOptions,
    rng: &mut R,
) -> Result<TrainTest> {
    if !(options.test_fraction > 0.0 && options.test_fraction < 1.0) {
        return Err(FrameError::InvalidArgument(format!(
            "test_fraction must be in (0,1), got {}",
            options.test_fraction
        )));
    }
    let n = df.nrows();
    if n < 2 {
        return Err(FrameError::InvalidArgument("need at least 2 rows to split".into()));
    }

    let mut test_rows: Vec<usize>;
    let mut train_rows: Vec<usize>;

    if options.stratify {
        let codes = df.label_codes()?;
        let n_classes = codes.iter().copied().max().map_or(1, |m| m as usize + 1);
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
        for (row, &code) in codes.iter().enumerate() {
            groups[code as usize].push(row);
        }
        test_rows = Vec::new();
        train_rows = Vec::new();
        for group in &mut groups {
            group.shuffle(rng);
            // Round per group; tiny groups keep at least one training row.
            let mut take = (group.len() as f64 * options.test_fraction).round() as usize;
            take = take.min(group.len().saturating_sub(1));
            test_rows.extend_from_slice(&group[..take]);
            train_rows.extend_from_slice(&group[take..]);
        }
    } else {
        let mut rows: Vec<usize> = (0..n).collect();
        rows.shuffle(rng);
        let take = ((n as f64 * options.test_fraction).round() as usize).clamp(1, n - 1);
        test_rows = rows[..take].to_vec();
        train_rows = rows[take..].to_vec();
    }

    // Deterministic within-split order: sort back to original row order so
    // downstream cell indices are stable regardless of shuffle internals.
    train_rows.sort_unstable();
    test_rows.sort_unstable();

    if train_rows.is_empty() || test_rows.is_empty() {
        return Err(FrameError::InvalidArgument(
            "split produced an empty train or test set".into(),
        ));
    }

    Ok(TrainTest {
        train: df.take(&train_rows)?,
        test: df.take(&test_rows)?,
        train_rows,
        test_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Column;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame(n: usize) -> DataFrame {
        let x = Column::numeric("x", (0..n).map(|i| i as f64).collect());
        let y = Column::categorical(
            "y",
            (0..n).map(|i| (i % 2) as u32).collect(),
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        DataFrame::new(vec![x, y], Some("y")).unwrap()
    }

    #[test]
    fn partitions_rows_exactly() {
        let df = frame(100);
        let mut rng = StdRng::seed_from_u64(7);
        let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
        assert_eq!(tt.train_rows.len() + tt.test_rows.len(), 100);
        let mut all: Vec<usize> = tt.train_rows.iter().chain(&tt.test_rows).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        assert_eq!(tt.train.nrows(), tt.train_rows.len());
        assert_eq!(tt.test.nrows(), tt.test_rows.len());
    }

    #[test]
    fn stratified_split_preserves_class_balance() {
        let df = frame(200);
        let mut rng = StdRng::seed_from_u64(1);
        let tt =
            train_test_split(&df, SplitOptions { test_fraction: 0.25, stratify: true }, &mut rng)
                .unwrap();
        let test_codes = tt.test.label_codes().unwrap();
        let ones = test_codes.iter().filter(|&&c| c == 1).count();
        assert_eq!(test_codes.len(), 50);
        assert_eq!(ones, 25);
    }

    #[test]
    fn unstratified_split_sizes() {
        let df = frame(10);
        let mut rng = StdRng::seed_from_u64(2);
        let tt =
            train_test_split(&df, SplitOptions { test_fraction: 0.3, stratify: false }, &mut rng)
                .unwrap();
        assert_eq!(tt.test.nrows(), 3);
        assert_eq!(tt.train.nrows(), 7);
    }

    #[test]
    fn invalid_fraction_rejected() {
        let df = frame(10);
        let mut rng = StdRng::seed_from_u64(3);
        for frac in [0.0, 1.0, -0.5, 2.0] {
            let err = train_test_split(
                &df,
                SplitOptions { test_fraction: frac, stratify: false },
                &mut rng,
            );
            assert!(err.is_err(), "fraction {frac} should be rejected");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let df = frame(50);
        let a =
            train_test_split(&df, SplitOptions::default(), &mut StdRng::seed_from_u64(9)).unwrap();
        let b =
            train_test_split(&df, SplitOptions::default(), &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a.train_rows, b.train_rows);
        assert_eq!(a.test_rows, b.test_rows);
    }

    #[test]
    fn tiny_frame_rejected() {
        let df = frame(2).take(&[0]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(train_test_split(&df, SplitOptions::default(), &mut rng).is_err());
    }
}
