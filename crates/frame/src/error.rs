//! Error type for frame operations.

use std::fmt;

/// Errors raised by frame construction, access, and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A column name was not found in the schema.
    UnknownColumn(String),
    /// A row index was out of bounds.
    RowOutOfBounds { row: usize, nrows: usize },
    /// A column index was out of bounds.
    ColumnOutOfBounds { col: usize, ncols: usize },
    /// Columns passed to a frame had differing lengths.
    LengthMismatch { expected: usize, got: usize, column: String },
    /// A value of the wrong kind was written into a typed column.
    TypeMismatch { column: String, expected: &'static str, got: &'static str },
    /// A categorical code was not present in the column dictionary.
    UnknownCategory { column: String, code: u32 },
    /// A duplicate column name was supplied.
    DuplicateColumn(String),
    /// The frame has no label column but one was required.
    NoLabel,
    /// CSV parsing failed.
    Csv { line: usize, message: String },
    /// A CSV data row had a different field count than the header.
    RaggedRow { line: usize, expected: usize, got: usize },
    /// A single CSV cell could not be parsed (1-based field index).
    MalformedCell { line: usize, column: usize, message: String },
    /// An I/O error occurred (message-only so the error stays `Clone`/`Eq`).
    Io(String),
    /// An operation required a non-empty frame.
    Empty,
    /// Invalid argument (e.g. split fraction outside (0, 1)).
    InvalidArgument(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::UnknownColumn(name) => write!(f, "unknown column: {name:?}"),
            FrameError::RowOutOfBounds { row, nrows } => {
                write!(f, "row index {row} out of bounds for frame with {nrows} rows")
            }
            FrameError::ColumnOutOfBounds { col, ncols } => {
                write!(f, "column index {col} out of bounds for frame with {ncols} columns")
            }
            FrameError::LengthMismatch { expected, got, column } => {
                write!(f, "column {column:?} has length {got}, expected {expected}")
            }
            FrameError::TypeMismatch { column, expected, got } => {
                write!(f, "type mismatch on column {column:?}: expected {expected}, got {got}")
            }
            FrameError::UnknownCategory { column, code } => {
                write!(f, "category code {code} not in dictionary of column {column:?}")
            }
            FrameError::DuplicateColumn(name) => write!(f, "duplicate column name: {name:?}"),
            FrameError::NoLabel => write!(f, "frame has no label column"),
            FrameError::Csv { line, message } => write!(f, "CSV error on line {line}: {message}"),
            FrameError::RaggedRow { line, expected, got } => {
                write!(f, "ragged CSV row on line {line}: expected {expected} fields, got {got}")
            }
            FrameError::MalformedCell { line, column, message } => {
                write!(f, "malformed cell at line {line}, field {column}: {message}")
            }
            FrameError::Io(msg) => write!(f, "I/O error: {msg}"),
            FrameError::Empty => write!(f, "operation requires a non-empty frame"),
            FrameError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(err: std::io::Error) -> Self {
        FrameError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let cases: Vec<(FrameError, &str)> = vec![
            (FrameError::UnknownColumn("age".into()), "age"),
            (FrameError::RowOutOfBounds { row: 9, nrows: 3 }, "row index 9"),
            (FrameError::ColumnOutOfBounds { col: 4, ncols: 2 }, "column index 4"),
            (FrameError::LengthMismatch { expected: 10, got: 9, column: "x".into() }, "length 9"),
            (
                FrameError::TypeMismatch {
                    column: "x".into(),
                    expected: "numeric",
                    got: "categorical",
                },
                "type mismatch",
            ),
            (FrameError::UnknownCategory { column: "c".into(), code: 7 }, "code 7"),
            (FrameError::DuplicateColumn("dup".into()), "dup"),
            (FrameError::NoLabel, "label"),
            (FrameError::Csv { line: 3, message: "bad".into() }, "line 3"),
            (FrameError::RaggedRow { line: 4, expected: 5, got: 3 }, "expected 5 fields, got 3"),
            (
                FrameError::MalformedCell { line: 2, column: 1, message: "stray quote".into() },
                "line 2, field 1",
            ),
            (FrameError::Io("gone".into()), "gone"),
            (FrameError::Empty, "non-empty"),
            (FrameError::InvalidArgument("frac".into()), "frac"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err} should contain {needle}");
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing file");
        let err: FrameError = io.into();
        assert!(matches!(err, FrameError::Io(_)));
        assert!(err.to_string().contains("missing file"));
    }
}
