//! Per-column summary statistics.

use crate::segment::SegData;
use crate::{Column, ColumnKind, DataFrame, Result};

/// Summary of a numeric column over its *valid* cells.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericSummary {
    /// Number of valid cells.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 when count < 2).
    pub std: f64,
    /// Minimum valid value.
    pub min: f64,
    /// Maximum valid value.
    pub max: f64,
}

/// Summary of any column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnSummary {
    /// Numeric column statistics.
    Numeric(NumericSummary),
    /// Categorical column: per-code counts over valid cells and the index of
    /// the most frequent code (the mode), if any cell is valid.
    Categorical { counts: Vec<usize>, mode: Option<u32> },
}

impl Column {
    /// Compute this column's summary by streaming its segments in row
    /// order. The numeric pass is deliberately *sequential* — Welford's
    /// update is order-sensitive in its low bits, and featurize keys its
    /// caches by these statistics, so a parallel tree-reduction would break
    /// bit-identity with the pre-segmentation layout. (Parallelism over
    /// segments lives in featurize's block computation instead, which is
    /// per-row and order-free.)
    pub fn summary(&self) -> ColumnSummary {
        match self.kind() {
            ColumnKind::Numeric => {
                let mut count = 0usize;
                let mut mean = 0.0f64;
                let mut m2 = 0.0f64;
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for seg in 0..self.n_segments() {
                    // A reload failure degrades this segment's rows to
                    // missing; the cause surfaces via `spill::take_error`.
                    let Ok(view) = self.segment_view(seg) else { continue };
                    let payload = view.payload();
                    let SegData::Num(values) = &payload.data else { continue };
                    for (i, &v) in values.iter().enumerate() {
                        if !payload.valid[i] {
                            continue;
                        }
                        count += 1;
                        // Welford's online algorithm: numerically stable even
                        // for large, offset-heavy columns (e.g. scaled-by-1000
                        // errors).
                        let delta = v - mean;
                        mean += delta / count as f64;
                        m2 += delta * (v - mean);
                        min = min.min(v);
                        max = max.max(v);
                    }
                }
                let std = if count >= 2 { (m2 / (count as f64 - 1.0)).sqrt() } else { 0.0 };
                if count == 0 {
                    mean = 0.0;
                    min = 0.0;
                    max = 0.0;
                }
                ColumnSummary::Numeric(NumericSummary { count, mean, std, min, max })
            }
            ColumnKind::Categorical => {
                let mut counts = vec![0usize; self.cardinality()];
                for seg in 0..self.n_segments() {
                    let Ok(view) = self.segment_view(seg) else { continue };
                    let payload = view.payload();
                    let SegData::Cat(codes) = &payload.data else { continue };
                    for (i, &code) in codes.iter().enumerate() {
                        if payload.valid[i] {
                            counts[code as usize] += 1;
                        }
                    }
                }
                let mode = counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .max_by_key(|(_, &c)| c)
                    .map(|(i, _)| i as u32);
                ColumnSummary::Categorical { counts, mode }
            }
        }
    }

    /// Mean of valid cells (numeric columns only).
    pub fn mean(&self) -> Option<f64> {
        match self.summary() {
            ColumnSummary::Numeric(s) if s.count > 0 => Some(s.mean),
            _ => None,
        }
    }

    /// Sample standard deviation of valid cells (numeric columns only).
    pub fn std(&self) -> Option<f64> {
        match self.summary() {
            ColumnSummary::Numeric(s) if s.count > 0 => Some(s.std),
            _ => None,
        }
    }

    /// Most frequent valid code (categorical columns only).
    pub fn mode(&self) -> Option<u32> {
        match self.summary() {
            ColumnSummary::Categorical { mode, .. } => mode,
            _ => None,
        }
    }
}

impl DataFrame {
    /// Summaries for every column, in schema order.
    pub fn describe(&self) -> Result<Vec<(String, ColumnSummary)>> {
        Ok(self.columns().iter().map(|c| (c.name().to_string(), c.summary())).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cell;

    #[test]
    fn numeric_summary_basic() {
        let c = Column::numeric("x", vec![1.0, 2.0, 3.0, 4.0]);
        match c.summary() {
            ColumnSummary::Numeric(s) => {
                assert_eq!(s.count, 4);
                assert!((s.mean - 2.5).abs() < 1e-12);
                assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
                assert_eq!(s.min, 1.0);
                assert_eq!(s.max, 4.0);
            }
            _ => panic!("expected numeric summary"),
        }
    }

    #[test]
    fn numeric_summary_skips_missing() {
        let mut c = Column::numeric("x", vec![1.0, 100.0, 3.0]);
        c.set(1, Cell::Missing).unwrap();
        match c.summary() {
            ColumnSummary::Numeric(s) => {
                assert_eq!(s.count, 2);
                assert!((s.mean - 2.0).abs() < 1e-12);
                assert_eq!(s.max, 3.0);
            }
            _ => panic!(),
        }
        assert_eq!(c.mean(), Some(2.0));
    }

    #[test]
    fn all_missing_numeric() {
        let c = Column::numeric_opt("x", vec![None, None]);
        match c.summary() {
            ColumnSummary::Numeric(s) => {
                assert_eq!(s.count, 0);
                assert_eq!(s.mean, 0.0);
            }
            _ => panic!(),
        }
        assert_eq!(c.mean(), None);
        assert_eq!(c.std(), None);
    }

    #[test]
    fn single_value_std_is_zero() {
        let c = Column::numeric("x", vec![5.0]);
        assert_eq!(c.std(), Some(0.0));
    }

    #[test]
    fn categorical_counts_and_mode() {
        let mut c =
            Column::categorical("c", vec![0, 1, 1, 2, 1], vec!["a".into(), "b".into(), "c".into()])
                .unwrap();
        assert_eq!(c.mode(), Some(1));
        c.set(1, Cell::Missing).unwrap();
        match c.summary() {
            ColumnSummary::Categorical { counts, mode } => {
                assert_eq!(counts, vec![1, 2, 1]);
                assert_eq!(mode, Some(1));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn all_missing_categorical_has_no_mode() {
        let c = Column::categorical_opt("c", vec![None, None], vec!["a".into()]).unwrap();
        assert_eq!(c.mode(), None);
    }

    #[test]
    fn mode_of_numeric_is_none() {
        let c = Column::numeric("x", vec![1.0]);
        assert_eq!(c.mode(), None);
        let cat = Column::categorical("c", vec![0], vec!["a".into()]).unwrap();
        assert_eq!(cat.mean(), None);
    }

    #[test]
    fn describe_covers_all_columns() {
        let x = Column::numeric("x", vec![1.0, 2.0]);
        let y = Column::categorical("y", vec![0, 1], vec!["n".into(), "p".into()]).unwrap();
        let df = DataFrame::new(vec![x, y], Some("y")).unwrap();
        let d = df.describe().unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, "x");
        assert_eq!(d[1].0, "y");
    }

    #[test]
    fn welford_is_stable_under_large_offsets() {
        let base = 1.0e9;
        let c = Column::numeric("x", (0..1000).map(|i| base + (i % 7) as f64).collect());
        let std = c.std().unwrap();
        assert!(std > 1.9 && std < 2.1, "std {std} should be ~2");
    }

    #[test]
    fn summary_is_segment_size_invariant() {
        let vals: Vec<Option<f64>> = (0..300)
            .map(|i| if i % 11 == 0 { None } else { Some((i as f64).sin() * 1e6) })
            .collect();
        let whole = Column::numeric_opt("x", vals);
        let base = whole.summary();
        for seg_rows in [1usize, 7, 64, 299, 1024] {
            let seg = whole.resegment(seg_rows).unwrap();
            assert_eq!(seg.summary(), base, "seg_rows={seg_rows} (bit-identical Welford)");
        }
    }
}
