//! Schema: column names, kinds, and roles.

use crate::{FrameError, Result};

/// The storage kind of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnKind {
    /// `f64` values.
    Numeric,
    /// Dictionary-encoded categories (`u32` codes).
    Categorical,
}

impl ColumnKind {
    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            ColumnKind::Numeric => "numeric",
            ColumnKind::Categorical => "categorical",
        }
    }
}

/// The role a column plays in the ML task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// An input feature — eligible for pollution and cleaning.
    Feature,
    /// The prediction target. The paper never pollutes labels (§4.1).
    Label,
}

/// Metadata for one column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldMeta {
    /// Column name (unique within a schema).
    pub name: String,
    /// Storage kind.
    pub kind: ColumnKind,
    /// Feature or label.
    pub role: Role,
}

impl FieldMeta {
    /// Convenience constructor for a numeric feature.
    pub fn numeric(name: impl Into<String>) -> Self {
        FieldMeta { name: name.into(), kind: ColumnKind::Numeric, role: Role::Feature }
    }

    /// Convenience constructor for a categorical feature.
    pub fn categorical(name: impl Into<String>) -> Self {
        FieldMeta { name: name.into(), kind: ColumnKind::Categorical, role: Role::Feature }
    }

    /// Convenience constructor for a categorical label.
    pub fn label(name: impl Into<String>) -> Self {
        FieldMeta { name: name.into(), kind: ColumnKind::Categorical, role: Role::Label }
    }
}

/// An ordered set of [`FieldMeta`] with unique names and at most one label.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<FieldMeta>,
}

impl Schema {
    /// Build a schema, validating name uniqueness and label multiplicity.
    pub fn new(fields: Vec<FieldMeta>) -> Result<Self> {
        let mut labels = 0usize;
        for (i, field) in fields.iter().enumerate() {
            if fields[..i].iter().any(|f| f.name == field.name) {
                return Err(FrameError::DuplicateColumn(field.name.clone()));
            }
            if field.role == Role::Label {
                labels += 1;
            }
        }
        if labels > 1 {
            return Err(FrameError::InvalidArgument("schema has more than one label".into()));
        }
        Ok(Schema { fields })
    }

    /// Number of columns (features + label).
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in column order.
    pub fn fields(&self) -> &[FieldMeta] {
        &self.fields
    }

    /// Metadata for column `idx`.
    pub fn field(&self, idx: usize) -> Result<&FieldMeta> {
        self.fields
            .get(idx)
            .ok_or(FrameError::ColumnOutOfBounds { col: idx, ncols: self.fields.len() })
    }

    /// Index of the column called `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| FrameError::UnknownColumn(name.to_string()))
    }

    /// Index of the label column, if any.
    pub fn label_index(&self) -> Option<usize> {
        self.fields.iter().position(|f| f.role == Role::Label)
    }

    /// Indices of all feature columns, in order.
    pub fn feature_indices(&self) -> Vec<usize> {
        self.fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.role == Role::Feature)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of feature columns of the given kind.
    pub fn count_features(&self, kind: ColumnKind) -> usize {
        self.fields.iter().filter(|f| f.role == Role::Feature && f.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            FieldMeta::numeric("age"),
            FieldMeta::categorical("job"),
            FieldMeta::label("churn"),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![FieldMeta::numeric("x"), FieldMeta::categorical("x")]);
        assert_eq!(err.unwrap_err(), FrameError::DuplicateColumn("x".into()));
    }

    #[test]
    fn two_labels_rejected() {
        let err = Schema::new(vec![FieldMeta::label("a"), FieldMeta::label("b")]);
        assert!(matches!(err.unwrap_err(), FrameError::InvalidArgument(_)));
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = sample();
        assert_eq!(s.index_of("job").unwrap(), 1);
        assert_eq!(s.field(0).unwrap().name, "age");
        assert!(s.index_of("nope").is_err());
        assert!(s.field(9).is_err());
    }

    #[test]
    fn label_and_feature_indices() {
        let s = sample();
        assert_eq!(s.label_index(), Some(2));
        assert_eq!(s.feature_indices(), vec![0, 1]);
        assert_eq!(s.count_features(ColumnKind::Numeric), 1);
        assert_eq!(s.count_features(ColumnKind::Categorical), 1);
    }

    #[test]
    fn schema_without_label() {
        let s = Schema::new(vec![FieldMeta::numeric("only")]).unwrap();
        assert_eq!(s.label_index(), None);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn kind_names() {
        assert_eq!(ColumnKind::Numeric.name(), "numeric");
        assert_eq!(ColumnKind::Categorical.name(), "categorical");
    }
}
