//! Fixed-size row segments — the unit of storage, copy-on-write, content
//! fingerprinting, and disk spill (DESIGN.md §15).
//!
//! A [`crate::Column`] is an ordered list of segments of `seg_rows` rows
//! (default [`DEFAULT_SEGMENT_ROWS`]; the last segment may be short). Each
//! segment is an `Arc<SegmentCore>`: cloning a column bumps one refcount per
//! segment, and a cell write un-shares only the touched segment, so a
//! few-cell pollution on a million-row column clones and re-fingerprints
//! O(segment) data instead of O(column).
//!
//! A segment's payload is either *resident* (in memory) or *spilled* to a
//! fingerprint-addressed file managed by [`crate::spill`]. All readers go
//! through [`SegmentCore::view`], which transparently reloads spilled
//! payloads; when no spill pool is configured (the default), segments are
//! always resident and the state lock is the only overhead.
//!
//! Lock order (shared with the pool): pool → fingerprint slot → state.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::spill;
use crate::{ColumnKind, FrameError, Result};

/// Default rows per segment (64Ki). Small frames therefore occupy a single
/// segment and behave exactly like the pre-segmentation layout.
pub const DEFAULT_SEGMENT_ROWS: usize = 65_536;

/// Typed payload of one segment. Slots for missing rows hold a neutral
/// filler (0.0 / code 0) and are masked out by the validity slice.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SegData {
    Num(Vec<f64>),
    Cat(Vec<u32>),
}

/// One segment's values plus validity mask.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SegPayload {
    pub(crate) data: SegData,
    pub(crate) valid: Vec<bool>,
}

impl SegPayload {
    pub(crate) fn len(&self) -> usize {
        self.valid.len()
    }

    /// Heap bytes this payload pins (the spill pool's accounting unit).
    pub(crate) fn heap_bytes(&self) -> u64 {
        let data = match &self.data {
            SegData::Num(v) => v.len() * std::mem::size_of::<f64>(),
            SegData::Cat(v) => v.len() * std::mem::size_of::<u32>(),
        };
        (data + self.valid.len()) as u64
    }
}

/// Resident-or-spilled state, guarded by the core's state mutex.
#[derive(Debug)]
pub(crate) enum SegState {
    Resident(Arc<SegPayload>),
    Spilled,
}

/// Result of an eviction attempt (reported back to the pool without
/// touching the pool lock).
pub(crate) enum SpillOutcome {
    /// Payload written; this many resident bytes were released.
    Spilled(u64),
    /// Already spilled, no fingerprint yet, or empty — nothing to do.
    Skip,
    /// The write failed.
    Failed(String),
}

/// Global monotonic access counter backing the spill pool's LRU order.
static TOUCH_CLOCK: AtomicU64 = AtomicU64::new(1);

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The shared heart of a segment. Columns hold `Arc<SegmentCore>`; the
/// spill pool holds `Weak<SegmentCore>`.
#[derive(Debug)]
pub(crate) struct SegmentCore {
    len: usize,
    kind: ColumnKind,
    /// Memoized content fingerprint (kind + values + validity; no name) —
    /// the spill file address and the feature-block cache key component.
    /// `None` after a mutation. A mutex rather than `OnceLock` so in-place
    /// writes can reset it through a shared reference.
    fp: Mutex<Option<u64>>,
    /// LRU clock value of the last access (global monotonic counter — no
    /// wall clock, so eviction never reads entropy; lint rule D3).
    touch: AtomicU64,
    /// Set by [`spill::register`] when a pool accounted for this segment's
    /// bytes; tells `drop` whether it owes the pool a refund.
    tracked: AtomicBool,
    state: Mutex<SegState>,
}

/// A tracked segment dropped while resident must hand its bytes back to
/// the pool, or they inflate the `resident` counter forever and the pool
/// degenerates into evict-everything thrash once the phantom total passes
/// the budget. Drops can run while the pool lock is held (eviction may
/// release the last strong reference), so the refund is recorded lock-free
/// and settled at the pool's next operation.
impl Drop for SegmentCore {
    fn drop(&mut self) {
        // comet-lint: allow(D9) — tracked is set once before the segment is shared; Drop races nothing
        if !self.tracked.load(Ordering::Relaxed) {
            return;
        }
        let state = self.state.get_mut().unwrap_or_else(PoisonError::into_inner);
        if let SegState::Resident(p) = state {
            spill::note_dead(p.heap_bytes());
        }
    }
}

impl SegmentCore {
    pub(crate) fn new_resident(payload: SegPayload, kind: ColumnKind) -> Arc<SegmentCore> {
        let core = Arc::new(SegmentCore {
            len: payload.len(),
            kind,
            fp: Mutex::new(None),
            // comet-lint: allow(D9) — LRU clock tick; ties only skew eviction order, never correctness
            touch: AtomicU64::new(TOUCH_CLOCK.fetch_add(1, Ordering::Relaxed)),
            tracked: AtomicBool::new(false),
            state: Mutex::new(SegState::Resident(Arc::new(payload))),
        });
        spill::register(&core);
        core
    }

    /// Mark this segment as accounted for by the spill pool.
    pub(crate) fn set_tracked(&self) {
        // comet-lint: allow(D9) — one-way flag set under the pool lock; readers tolerate a stale false
        self.tracked.store(true, Ordering::Relaxed);
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn last_touch(&self) -> u64 {
        // comet-lint: allow(D9) — LRU clock read; staleness only skews eviction order
        self.touch.load(Ordering::Relaxed)
    }

    /// Resident payload bytes if currently resident (pool accounting).
    pub(crate) fn resident_bytes(&self) -> Option<u64> {
        match &*lock(&self.state) {
            SegState::Resident(p) => Some(p.heap_bytes()),
            SegState::Spilled => None,
        }
    }

    /// Fetch the payload, reloading from the spill file when necessary.
    /// Bumps the LRU clock. The returned view keeps the payload alive even
    /// if the pool spills this segment concurrently.
    pub(crate) fn view(&self) -> Result<SegmentView> {
        // comet-lint: allow(D9) — LRU clock bump; an out-of-order touch only skews eviction order
        self.touch.store(TOUCH_CLOCK.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
        // Fast path: resident. Only the state lock is taken.
        {
            let state = lock(&self.state);
            if let SegState::Resident(p) = &*state {
                return Ok(SegmentView { payload: Arc::clone(p) });
            }
        }
        // Slow path: reload with no segment lock held (the pool lock is
        // taken briefly inside the helpers; pool → state order everywhere).
        let fp = lock(&self.fp).ok_or_else(|| {
            // Segments only spill after fingerprinting (the file is named
            // by the fingerprint), so an empty slot here means corruption.
            FrameError::Io("spilled segment has no memoized fingerprint".into())
        })?;
        let dir = spill::dir().ok_or_else(|| {
            FrameError::Io("segment is spilled but the spill pool is not configured".into())
        })?;
        let payload = match spill::read_segment_file(&dir, fp, self.kind, self.len) {
            Ok(p) => Arc::new(p),
            Err(err) => {
                spill::note_error(&err.to_string());
                return Err(err);
            }
        };
        let bytes = payload.heap_bytes();
        {
            let mut state = lock(&self.state);
            match &*state {
                SegState::Resident(p) => {
                    // A racing reader installed the payload first.
                    return Ok(SegmentView { payload: Arc::clone(p) });
                }
                SegState::Spilled => {
                    *state = SegState::Resident(Arc::clone(&payload));
                }
            }
        }
        spill::after_reload(bytes);
        Ok(SegmentView { payload })
    }

    /// Content fingerprint, memoized. Loads the payload (possibly from
    /// disk) on first use.
    pub(crate) fn fingerprint(&self) -> Result<u64> {
        if let Some(fp) = *lock(&self.fp) {
            return Ok(fp);
        }
        let view = self.view()?;
        let mut slot = lock(&self.fp);
        if let Some(fp) = *slot {
            return Ok(fp);
        }
        let fp = crate::fingerprint::segment_content_fp(view.payload(), self.kind);
        *slot = Some(fp);
        Ok(fp)
    }

    /// Reset the memoized fingerprint (after an in-place mutation).
    pub(crate) fn reset_fingerprint(&self) {
        *lock(&self.fp) = None;
    }

    /// Mutable access to the resident payload when this core is uniquely
    /// owned by the calling column (`Arc::strong_count == 1` checked by the
    /// caller). Reloads first if spilled. The payload `Arc` itself may
    /// still be shared with live views, so the caller goes through
    /// `Arc::make_mut`.
    pub(crate) fn with_payload_mut<T>(&self, f: impl FnOnce(&mut SegPayload) -> T) -> Result<T> {
        // The view both ensures residency and pins the payload, so a pool
        // eviction racing the reload — deterministic under a budget
        // smaller than one segment, where `view()` itself re-evicts —
        // cannot strand the mutation: a Spilled state is reinstated from
        // the pinned payload without touching disk.
        let view = self.view()?;
        let mut state = lock(&self.state);
        let mut reinstated = 0u64;
        if matches!(&*state, SegState::Spilled) {
            reinstated = view.payload.heap_bytes();
            *state = SegState::Resident(Arc::clone(&view.payload));
        }
        // Release the pin before `make_mut`: a payload whose only other
        // reference is the view would otherwise be deep-copied on every
        // single-cell write, turning bulk injection quadratic. Dropping a
        // view is a plain `Arc` drop — no locks.
        drop(view);
        match &mut *state {
            SegState::Resident(p) => {
                let out = f(Arc::make_mut(p));
                drop(state);
                self.reset_fingerprint();
                if reinstated > 0 {
                    // Rebalance the pool after the state flip (pool lock is
                    // never taken while the state lock is held).
                    spill::after_reinstate(reinstated);
                }
                Ok(out)
            }
            // Unreachable (just reinstated), but typed rather than
            // panicking (lint rule D4).
            SegState::Spilled => Err(FrameError::Io("segment evicted during mutation".into())),
        }
    }

    /// Try to move the payload to disk under `dir`. Called by the spill
    /// pool with the pool lock held; never touches the pool lock itself.
    pub(crate) fn try_spill(&self, dir: &std::path::Path) -> SpillOutcome {
        let fp = {
            let slot = lock(&self.fp);
            match *slot {
                Some(fp) => fp,
                None => {
                    // Fingerprint lazily on first eviction.
                    drop(slot);
                    let payload = match &*lock(&self.state) {
                        SegState::Resident(p) => Arc::clone(p),
                        SegState::Spilled => return SpillOutcome::Skip,
                    };
                    let fp = crate::fingerprint::segment_content_fp(&payload, self.kind);
                    *lock(&self.fp) = Some(fp);
                    fp
                }
            }
        };
        let payload = match &*lock(&self.state) {
            SegState::Resident(p) => Arc::clone(p),
            SegState::Spilled => return SpillOutcome::Skip,
        };
        if payload.len() == 0 {
            return SpillOutcome::Skip;
        }
        let bytes = payload.heap_bytes();
        if let Err(err) = spill::write_segment_file(dir, fp, &payload) {
            return SpillOutcome::Failed(format!("spill write failed: {err}"));
        }
        let mut state = lock(&self.state);
        match &*state {
            SegState::Resident(_) => {
                *state = SegState::Spilled;
                SpillOutcome::Spilled(bytes)
            }
            SegState::Spilled => SpillOutcome::Skip,
        }
    }
}

/// A read handle on one segment's payload. Holding a view pins the payload
/// in memory (spilling the segment does not invalidate the view). Row
/// indices are segment-local.
#[derive(Debug, Clone)]
pub struct SegmentView {
    payload: Arc<SegPayload>,
}

impl SegmentView {
    /// Rows in this segment.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the segment has no rows.
    pub fn is_empty(&self) -> bool {
        self.payload.len() == 0
    }

    /// True when the cell at segment-local `row` is present.
    pub fn is_valid(&self, row: usize) -> bool {
        self.payload.valid.get(row).copied().unwrap_or(false)
    }

    /// Numeric value at segment-local `row`, if present and numeric.
    pub fn num(&self, row: usize) -> Option<f64> {
        match (&self.payload.data, self.payload.valid.get(row)) {
            (SegData::Num(v), Some(true)) => Some(v[row]),
            _ => None,
        }
    }

    /// Categorical code at segment-local `row`, if present and categorical.
    pub fn cat(&self, row: usize) -> Option<u32> {
        match (&self.payload.data, self.payload.valid.get(row)) {
            (SegData::Cat(v), Some(true)) => Some(v[row]),
            _ => None,
        }
    }

    pub(crate) fn payload(&self) -> &SegPayload {
        &self.payload
    }
}

/// Split a full column's values/validity into sealed segments of `seg_rows`.
pub(crate) fn seal_numeric(
    values: Vec<f64>,
    valid: Vec<bool>,
    seg_rows: usize,
) -> Vec<Arc<SegmentCore>> {
    if values.len() <= seg_rows {
        return vec![SegmentCore::new_resident(
            SegPayload { data: SegData::Num(values), valid },
            ColumnKind::Numeric,
        )];
    }
    values
        .chunks(seg_rows)
        .zip(valid.chunks(seg_rows))
        .map(|(v, m)| {
            SegmentCore::new_resident(
                SegPayload { data: SegData::Num(v.to_vec()), valid: m.to_vec() },
                ColumnKind::Numeric,
            )
        })
        .collect()
}

/// Split a full categorical column into sealed segments of `seg_rows`.
pub(crate) fn seal_categorical(
    codes: Vec<u32>,
    valid: Vec<bool>,
    seg_rows: usize,
) -> Vec<Arc<SegmentCore>> {
    if codes.len() <= seg_rows {
        return vec![SegmentCore::new_resident(
            SegPayload { data: SegData::Cat(codes), valid },
            ColumnKind::Categorical,
        )];
    }
    codes
        .chunks(seg_rows)
        .zip(valid.chunks(seg_rows))
        .map(|(v, m)| {
            SegmentCore::new_resident(
                SegPayload { data: SegData::Cat(v.to_vec()), valid: m.to_vec() },
                ColumnKind::Categorical,
            )
        })
        .collect()
}
