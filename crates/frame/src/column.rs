//! Typed columns with an explicit validity mask.
//!
//! Storage is `Arc`-backed and copy-on-write: cloning a column (and thus
//! snapshotting or duplicating a frame) is O(1) reference bumps, and the
//! first mutation through [`Column::set`] un-shares only the touched
//! buffers. The cleaning session leans on this — every candidate pollution
//! snapshots a column and every polluter variant clones both frames.

use std::sync::{Arc, OnceLock};

use crate::{ColumnKind, FrameError, Result};

/// A single cell value, as read from or written into a column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    /// Missing value (the validity mask is authoritative, not NaN).
    Missing,
    /// Numeric value.
    Num(f64),
    /// Categorical code into the column's dictionary.
    Cat(u32),
}

impl Cell {
    /// Kind name for error reporting.
    pub fn kind_name(self) -> &'static str {
        match self {
            Cell::Missing => "missing",
            Cell::Num(_) => "numeric",
            Cell::Cat(_) => "categorical",
        }
    }

    /// True if this cell is missing.
    pub fn is_missing(self) -> bool {
        matches!(self, Cell::Missing)
    }

    /// Numeric payload, if any.
    pub fn as_num(self) -> Option<f64> {
        match self {
            Cell::Num(v) => Some(v),
            _ => None,
        }
    }

    /// Categorical payload, if any.
    pub fn as_cat(self) -> Option<u32> {
        match self {
            Cell::Cat(c) => Some(c),
            _ => None,
        }
    }
}

/// The typed payload of a column. Slots for missing rows hold a neutral
/// filler (0.0 / code 0) and are masked out by [`Column::valid`].
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// `f64` payload.
    Numeric(Vec<f64>),
    /// Dictionary codes. Every valid code must index into the dictionary.
    Categorical(Vec<u32>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Numeric(v) => v.len(),
            ColumnData::Categorical(v) => v.len(),
        }
    }
}

/// Memoized content fingerprint. Cloning carries the computed value over
/// (clones share content, so they share the fingerprint); any mutation
/// resets the slot. Excluded from equality — it is a cache, not content.
#[derive(Debug, Default)]
pub(crate) struct FpCache(OnceLock<u64>);

impl Clone for FpCache {
    fn clone(&self) -> Self {
        let slot = OnceLock::new();
        if let Some(v) = self.0.get() {
            let _ = slot.set(*v);
        }
        FpCache(slot)
    }
}

/// One named, typed column with a validity mask and (for categoricals) a
/// dictionary mapping codes to category names.
#[derive(Debug, Clone)]
pub struct Column {
    name: Arc<str>,
    data: Arc<ColumnData>,
    valid: Arc<Vec<bool>>,
    /// Dictionary for categorical columns; empty for numeric columns.
    categories: Arc<Vec<String>>,
    fp: FpCache,
}

impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        // Shared storage (the common case after an O(1) snapshot) short-
        // circuits without scanning the payload.
        self.name == other.name
            && (Arc::ptr_eq(&self.data, &other.data) || self.data == other.data)
            && (Arc::ptr_eq(&self.valid, &other.valid) || self.valid == other.valid)
            && (Arc::ptr_eq(&self.categories, &other.categories)
                || self.categories == other.categories)
    }
}

impl Column {
    fn build(name: Arc<str>, data: ColumnData, valid: Vec<bool>, categories: Vec<String>) -> Self {
        Column {
            name,
            data: Arc::new(data),
            valid: Arc::new(valid),
            categories: Arc::new(categories),
            fp: FpCache::default(),
        }
    }

    /// Build a numeric column where every value is valid.
    pub fn numeric(name: impl Into<String>, values: Vec<f64>) -> Self {
        let valid = vec![true; values.len()];
        Column::build(name.into().into(), ColumnData::Numeric(values), valid, Vec::new())
    }

    /// Build a numeric column from optional values (None = missing).
    pub fn numeric_opt(name: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        let valid: Vec<bool> = values.iter().map(Option::is_some).collect();
        let data: Vec<f64> = values.into_iter().map(|v| v.unwrap_or(0.0)).collect();
        Column::build(name.into().into(), ColumnData::Numeric(data), valid, Vec::new())
    }

    /// Build a categorical column from codes and a dictionary. Codes must
    /// index into the dictionary.
    pub fn categorical(
        name: impl Into<String>,
        codes: Vec<u32>,
        categories: Vec<String>,
    ) -> Result<Self> {
        let name = name.into();
        for &code in &codes {
            if code as usize >= categories.len() {
                return Err(FrameError::UnknownCategory { column: name, code });
            }
        }
        let valid = vec![true; codes.len()];
        Ok(Column::build(name.into(), ColumnData::Categorical(codes), valid, categories))
    }

    /// Build a categorical column from optional codes (None = missing).
    pub fn categorical_opt(
        name: impl Into<String>,
        codes: Vec<Option<u32>>,
        categories: Vec<String>,
    ) -> Result<Self> {
        let name = name.into();
        for code in codes.iter().flatten() {
            if *code as usize >= categories.len() {
                return Err(FrameError::UnknownCategory { column: name, code: *code });
            }
        }
        let valid: Vec<bool> = codes.iter().map(Option::is_some).collect();
        let data: Vec<u32> = codes.into_iter().map(|c| c.unwrap_or(0)).collect();
        Ok(Column::build(name.into(), ColumnData::Categorical(data), valid, categories))
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Storage kind of this column.
    pub fn kind(&self) -> ColumnKind {
        match *self.data {
            ColumnData::Numeric(_) => ColumnKind::Numeric,
            ColumnData::Categorical(_) => ColumnKind::Categorical,
        }
    }

    /// The raw typed payload.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Validity mask: `true` means present, `false` means missing.
    pub fn valid(&self) -> &[bool] {
        &self.valid
    }

    /// Dictionary (empty for numeric columns).
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// Number of categories in the dictionary (0 for numeric columns).
    pub fn cardinality(&self) -> usize {
        self.categories.len()
    }

    /// Number of missing cells.
    pub fn missing_count(&self) -> usize {
        self.valid.iter().filter(|v| !**v).count()
    }

    /// Read the cell at `row`.
    pub fn get(&self, row: usize) -> Result<Cell> {
        if row >= self.len() {
            return Err(FrameError::RowOutOfBounds { row, nrows: self.len() });
        }
        if !self.valid[row] {
            return Ok(Cell::Missing);
        }
        Ok(match &*self.data {
            ColumnData::Numeric(v) => Cell::Num(v[row]),
            ColumnData::Categorical(v) => Cell::Cat(v[row]),
        })
    }

    /// Write the cell at `row`, enforcing the column's kind. Writing
    /// [`Cell::Missing`] clears the validity bit; writing a value sets it.
    /// The first write to shared storage un-shares it (copy-on-write).
    pub fn set(&mut self, row: usize, cell: Cell) -> Result<()> {
        if row >= self.len() {
            return Err(FrameError::RowOutOfBounds { row, nrows: self.len() });
        }
        match (&*self.data, cell) {
            (_, Cell::Missing) => {
                Arc::make_mut(&mut self.valid)[row] = false;
            }
            (ColumnData::Numeric(_), Cell::Num(x)) => {
                if let ColumnData::Numeric(v) = Arc::make_mut(&mut self.data) {
                    v[row] = x;
                }
                Arc::make_mut(&mut self.valid)[row] = true;
            }
            (ColumnData::Categorical(_), Cell::Cat(code)) => {
                if code as usize >= self.categories.len() {
                    return Err(FrameError::UnknownCategory {
                        column: self.name.as_ref().to_owned(),
                        code,
                    });
                }
                if let ColumnData::Categorical(v) = Arc::make_mut(&mut self.data) {
                    v[row] = code;
                }
                Arc::make_mut(&mut self.valid)[row] = true;
            }
            (_, cell) => {
                return Err(FrameError::TypeMismatch {
                    column: self.name.as_ref().to_owned(),
                    expected: self.kind().name(),
                    got: cell.kind_name(),
                })
            }
        }
        self.fp = FpCache::default();
        Ok(())
    }

    /// Numeric value at `row` if present and the column is numeric.
    pub fn num(&self, row: usize) -> Option<f64> {
        match (&*self.data, self.valid.get(row)) {
            (ColumnData::Numeric(v), Some(true)) => Some(v[row]),
            _ => None,
        }
    }

    /// Categorical code at `row` if present and the column is categorical.
    pub fn cat(&self, row: usize) -> Option<u32> {
        match (&*self.data, self.valid.get(row)) {
            (ColumnData::Categorical(v), Some(true)) => Some(v[row]),
            _ => None,
        }
    }

    /// Iterate all cells in row order.
    pub fn iter(&self) -> impl Iterator<Item = Cell> + '_ {
        (0..self.len()).map(move |row| self.get(row).unwrap_or(Cell::Missing))
    }

    /// Build a new column containing only the given rows, in order.
    /// Duplicated and re-ordered indices are allowed (used by bootstrap
    /// sampling and splits).
    pub fn take(&self, rows: &[usize]) -> Result<Column> {
        let nrows = self.len();
        if let Some(&bad) = rows.iter().find(|&&r| r >= nrows) {
            return Err(FrameError::RowOutOfBounds { row: bad, nrows });
        }
        let data = match &*self.data {
            ColumnData::Numeric(src) => ColumnData::Numeric(rows.iter().map(|&r| src[r]).collect()),
            ColumnData::Categorical(src) => {
                ColumnData::Categorical(rows.iter().map(|&r| src[r]).collect())
            }
        };
        let valid = rows.iter().map(|&r| self.valid[r]).collect();
        Ok(Column {
            name: self.name.clone(),
            data: Arc::new(data),
            valid: Arc::new(valid),
            categories: self.categories.clone(),
            fp: FpCache::default(),
        })
    }

    /// Rename the column (used when deriving feature matrices).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into().into();
        self.fp = FpCache::default();
        self
    }

    /// True when `self` and `other` share the same payload storage (an O(1)
    /// copy-on-write clone that has not diverged). Diagnostic for tests and
    /// snapshot-cost assertions.
    pub fn shares_storage_with(&self, other: &Column) -> bool {
        Arc::ptr_eq(&self.data, &other.data) && Arc::ptr_eq(&self.valid, &other.valid)
    }

    /// Memoization slot for the content fingerprint (see `fingerprint.rs`).
    pub(crate) fn fp_slot(&self) -> &OnceLock<u64> {
        &self.fp.0
    }

    /// Display string for a cell (category name, numeric literal, or empty
    /// string for missing) — the CSV writer's cell format.
    pub fn display(&self, row: usize) -> Result<String> {
        Ok(match self.get(row)? {
            Cell::Missing => String::new(),
            Cell::Num(v) => format_float(v),
            Cell::Cat(code) => self.categories[code as usize].clone(),
        })
    }
}

/// Format a float so that CSV round-trips losslessly (shortest repr).
pub(crate) fn format_float(v: f64) -> String {
    let mut s = format!("{v}");
    // Ensure a decimal point or exponent so the reader infers numeric.
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
        s.push_str(".0");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat_col() -> Column {
        Column::categorical(
            "color",
            vec![0, 1, 2, 1],
            vec!["red".into(), "green".into(), "blue".into()],
        )
        .unwrap()
    }

    #[test]
    fn numeric_get_set_roundtrip() {
        let mut c = Column::numeric("x", vec![1.0, 2.0, 3.0]);
        assert_eq!(c.get(1).unwrap(), Cell::Num(2.0));
        c.set(1, Cell::Num(9.5)).unwrap();
        assert_eq!(c.get(1).unwrap(), Cell::Num(9.5));
        assert_eq!(c.num(1), Some(9.5));
        assert_eq!(c.cat(1), None);
    }

    #[test]
    fn missing_via_mask_not_nan() {
        let mut c = Column::numeric("x", vec![1.0, 2.0]);
        c.set(0, Cell::Missing).unwrap();
        assert_eq!(c.get(0).unwrap(), Cell::Missing);
        assert_eq!(c.missing_count(), 1);
        // Restoring a value clears the missing bit.
        c.set(0, Cell::Num(7.0)).unwrap();
        assert_eq!(c.missing_count(), 0);
        assert_eq!(c.get(0).unwrap(), Cell::Num(7.0));
    }

    #[test]
    fn numeric_opt_builder() {
        let c = Column::numeric_opt("x", vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(c.missing_count(), 1);
        assert!(c.get(1).unwrap().is_missing());
    }

    #[test]
    fn categorical_roundtrip_and_dictionary_bounds() {
        let mut c = cat_col();
        assert_eq!(c.get(2).unwrap(), Cell::Cat(2));
        assert_eq!(c.cardinality(), 3);
        c.set(0, Cell::Cat(2)).unwrap();
        assert_eq!(c.cat(0), Some(2));
        let err = c.set(0, Cell::Cat(3)).unwrap_err();
        assert!(matches!(err, FrameError::UnknownCategory { code: 3, .. }));
    }

    #[test]
    fn invalid_code_in_constructor() {
        let err = Column::categorical("c", vec![5], vec!["only".into()]).unwrap_err();
        assert!(matches!(err, FrameError::UnknownCategory { code: 5, .. }));
        let err = Column::categorical_opt("c", vec![Some(9)], vec!["only".into()]).unwrap_err();
        assert!(matches!(err, FrameError::UnknownCategory { code: 9, .. }));
    }

    #[test]
    fn type_mismatch_on_set() {
        let mut c = Column::numeric("x", vec![1.0]);
        let err = c.set(0, Cell::Cat(0)).unwrap_err();
        assert!(matches!(err, FrameError::TypeMismatch { .. }));
    }

    #[test]
    fn out_of_bounds_get_set() {
        let mut c = Column::numeric("x", vec![1.0]);
        assert!(c.get(1).is_err());
        assert!(c.set(1, Cell::Num(0.0)).is_err());
    }

    #[test]
    fn take_reorders_and_duplicates() {
        let c = Column::numeric_opt("x", vec![Some(1.0), None, Some(3.0)]);
        let t = c.take(&[2, 0, 0, 1]).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(0).unwrap(), Cell::Num(3.0));
        assert_eq!(t.get(1).unwrap(), Cell::Num(1.0));
        assert_eq!(t.get(2).unwrap(), Cell::Num(1.0));
        assert!(t.get(3).unwrap().is_missing());
        assert!(c.take(&[99]).is_err());
    }

    #[test]
    fn take_preserves_dictionary() {
        let c = cat_col();
        let t = c.take(&[3, 2]).unwrap();
        assert_eq!(t.categories(), c.categories());
        assert_eq!(t.cat(0), Some(1));
    }

    #[test]
    fn display_formats() {
        let mut c = cat_col();
        assert_eq!(c.display(0).unwrap(), "red");
        c.set(0, Cell::Missing).unwrap();
        assert_eq!(c.display(0).unwrap(), "");
        let n = Column::numeric("x", vec![2.0, 2.5]);
        assert_eq!(n.display(0).unwrap(), "2.0");
        assert_eq!(n.display(1).unwrap(), "2.5");
    }

    #[test]
    fn iter_yields_all_cells() {
        let c = Column::numeric_opt("x", vec![Some(1.0), None]);
        let cells: Vec<Cell> = c.iter().collect();
        assert_eq!(cells, vec![Cell::Num(1.0), Cell::Missing]);
    }

    #[test]
    fn clone_is_shared_until_mutation() {
        let a = Column::numeric_opt("x", vec![Some(1.0), None, Some(3.0)]);
        let mut b = a.clone();
        assert!(a.shares_storage_with(&b));
        b.set(0, Cell::Num(9.0)).unwrap();
        assert!(!a.shares_storage_with(&b));
        // The original is untouched by writes through the clone.
        assert_eq!(a.get(0).unwrap(), Cell::Num(1.0));
        assert_eq!(b.get(0).unwrap(), Cell::Num(9.0));
        assert!(a.get(1).unwrap().is_missing() && b.get(1).unwrap().is_missing());
    }

    #[test]
    fn missing_write_unshares_only_the_mask() {
        let a = cat_col();
        let mut b = a.clone();
        b.set(2, Cell::Missing).unwrap();
        assert_eq!(a.missing_count(), 0);
        assert_eq!(b.missing_count(), 1);
        assert_eq!(a.cat(2), Some(2));
    }

    #[test]
    fn equality_ignores_sharing() {
        let a = Column::numeric("x", vec![1.0, 2.0]);
        let shared = a.clone();
        let rebuilt = Column::numeric("x", vec![1.0, 2.0]);
        assert!(a.shares_storage_with(&shared));
        assert!(!a.shares_storage_with(&rebuilt));
        assert_eq!(a, shared);
        assert_eq!(a, rebuilt);
    }

    #[test]
    fn cell_accessors() {
        assert!(Cell::Missing.is_missing());
        assert_eq!(Cell::Num(2.0).as_num(), Some(2.0));
        assert_eq!(Cell::Num(2.0).as_cat(), None);
        assert_eq!(Cell::Cat(1).as_cat(), Some(1));
        assert_eq!(Cell::Cat(1).as_num(), None);
        assert_eq!(Cell::Missing.kind_name(), "missing");
    }
}
