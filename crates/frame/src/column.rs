//! Typed columns with an explicit validity mask, stored as chunked row
//! segments.
//!
//! Storage is `Arc`-backed and copy-on-write at *segment* granularity:
//! cloning a column (and thus snapshotting or duplicating a frame) is O(1)
//! reference bumps per segment, and a mutation through [`Column::set`]
//! un-shares only the touched segment — a few-cell pollution on a
//! million-row column copies O(segment) data, not O(column). The cleaning
//! session leans on this: every candidate pollution snapshots a column and
//! every polluter variant clones both frames. Cold segments can spill to
//! disk under a memory budget (see [`crate::spill`]); readers transparently
//! reload them.

use std::sync::{Arc, OnceLock};

use crate::segment::{
    seal_categorical, seal_numeric, SegData, SegPayload, SegmentCore, SegmentView,
    DEFAULT_SEGMENT_ROWS,
};
use crate::{ColumnKind, FrameError, Result};

/// A single cell value, as read from or written into a column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cell {
    /// Missing value (the validity mask is authoritative, not NaN).
    Missing,
    /// Numeric value.
    Num(f64),
    /// Categorical code into the column's dictionary.
    Cat(u32),
}

impl Cell {
    /// Kind name for error reporting.
    pub fn kind_name(self) -> &'static str {
        match self {
            Cell::Missing => "missing",
            Cell::Num(_) => "numeric",
            Cell::Cat(_) => "categorical",
        }
    }

    /// True if this cell is missing.
    pub fn is_missing(self) -> bool {
        matches!(self, Cell::Missing)
    }

    /// Numeric payload, if any.
    pub fn as_num(self) -> Option<f64> {
        match self {
            Cell::Num(v) => Some(v),
            _ => None,
        }
    }

    /// Categorical payload, if any.
    pub fn as_cat(self) -> Option<u32> {
        match self {
            Cell::Cat(c) => Some(c),
            _ => None,
        }
    }
}

/// Memoized content fingerprint. Cloning carries the computed value over
/// (clones share content, so they share the fingerprint); any mutation
/// resets the slot. Excluded from equality — it is a cache, not content.
#[derive(Debug, Default)]
pub(crate) struct FpCache(OnceLock<u64>);

impl Clone for FpCache {
    fn clone(&self) -> Self {
        let slot = OnceLock::new();
        if let Some(v) = self.0.get() {
            let _ = slot.set(*v);
        }
        FpCache(slot)
    }
}

/// One named, typed column with a validity mask and (for categoricals) a
/// dictionary mapping codes to category names. Rows live in fixed-size
/// segments of `seg_rows` (the last segment may be short).
#[derive(Debug, Clone)]
pub struct Column {
    name: Arc<str>,
    kind: ColumnKind,
    /// Rows per full segment; always ≥ 1.
    seg_rows: usize,
    len: usize,
    segments: Vec<Arc<SegmentCore>>,
    /// Dictionary for categorical columns; empty for numeric columns.
    categories: Arc<Vec<String>>,
    fp: FpCache,
}

impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        if self.name != other.name
            || self.kind != other.kind
            || self.len != other.len
            || !(Arc::ptr_eq(&self.categories, &other.categories)
                || self.categories == other.categories)
        {
            return false;
        }
        // Shared storage (the common case after an O(1) snapshot) short-
        // circuits without scanning payloads.
        if self.segments.len() == other.segments.len()
            && self.segments.iter().zip(&other.segments).all(|(a, b)| Arc::ptr_eq(a, b))
        {
            return true;
        }
        // Logical comparison: validity plus values at valid rows.
        for row in 0..self.len {
            let a = self.get(row).unwrap_or(Cell::Missing);
            let b = other.get(row).unwrap_or(Cell::Missing);
            match (a, b) {
                (Cell::Num(x), Cell::Num(y)) if x.to_bits() != y.to_bits() => return false,
                (Cell::Num(_), Cell::Num(_)) => {}
                (a, b) if a != b => return false,
                _ => {}
            }
        }
        true
    }
}

/// Write `cell` into a payload at segment-local `row`. Kind and dictionary
/// checks happen before this is called.
fn apply_cell(payload: &mut SegPayload, row: usize, cell: Cell) {
    match cell {
        Cell::Missing => payload.valid[row] = false,
        Cell::Num(x) => {
            if let SegData::Num(v) = &mut payload.data {
                v[row] = x;
            }
            payload.valid[row] = true;
        }
        Cell::Cat(code) => {
            if let SegData::Cat(v) = &mut payload.data {
                v[row] = code;
            }
            payload.valid[row] = true;
        }
    }
}

impl Column {
    fn from_parts(
        name: Arc<str>,
        kind: ColumnKind,
        seg_rows: usize,
        len: usize,
        segments: Vec<Arc<SegmentCore>>,
        categories: Arc<Vec<String>>,
    ) -> Self {
        Column { name, kind, seg_rows, len, segments, categories, fp: FpCache::default() }
    }

    pub(crate) fn from_segments(
        name: Arc<str>,
        kind: ColumnKind,
        seg_rows: usize,
        len: usize,
        segments: Vec<Arc<SegmentCore>>,
        categories: Arc<Vec<String>>,
    ) -> Self {
        Column::from_parts(name, kind, seg_rows, len, segments, categories)
    }

    /// Build a numeric column where every value is valid.
    pub fn numeric(name: impl Into<String>, values: Vec<f64>) -> Self {
        let len = values.len();
        let valid = vec![true; len];
        let segments = seal_numeric(values, valid, DEFAULT_SEGMENT_ROWS);
        Column::from_parts(
            name.into().into(),
            ColumnKind::Numeric,
            DEFAULT_SEGMENT_ROWS,
            len,
            segments,
            Arc::new(Vec::new()),
        )
    }

    /// Build a numeric column from optional values (None = missing).
    pub fn numeric_opt(name: impl Into<String>, values: Vec<Option<f64>>) -> Self {
        let valid: Vec<bool> = values.iter().map(Option::is_some).collect();
        let data: Vec<f64> = values.into_iter().map(|v| v.unwrap_or(0.0)).collect();
        let len = data.len();
        let segments = seal_numeric(data, valid, DEFAULT_SEGMENT_ROWS);
        Column::from_parts(
            name.into().into(),
            ColumnKind::Numeric,
            DEFAULT_SEGMENT_ROWS,
            len,
            segments,
            Arc::new(Vec::new()),
        )
    }

    /// Build a categorical column from codes and a dictionary. Codes must
    /// index into the dictionary.
    pub fn categorical(
        name: impl Into<String>,
        codes: Vec<u32>,
        categories: Vec<String>,
    ) -> Result<Self> {
        let name = name.into();
        for &code in &codes {
            if code as usize >= categories.len() {
                return Err(FrameError::UnknownCategory { column: name, code });
            }
        }
        let len = codes.len();
        let valid = vec![true; len];
        let segments = seal_categorical(codes, valid, DEFAULT_SEGMENT_ROWS);
        Ok(Column::from_parts(
            name.into(),
            ColumnKind::Categorical,
            DEFAULT_SEGMENT_ROWS,
            len,
            segments,
            Arc::new(categories),
        ))
    }

    /// Build a categorical column from optional codes (None = missing).
    pub fn categorical_opt(
        name: impl Into<String>,
        codes: Vec<Option<u32>>,
        categories: Vec<String>,
    ) -> Result<Self> {
        let name = name.into();
        for code in codes.iter().flatten() {
            if *code as usize >= categories.len() {
                return Err(FrameError::UnknownCategory { column: name, code: *code });
            }
        }
        let valid: Vec<bool> = codes.iter().map(Option::is_some).collect();
        let data: Vec<u32> = codes.into_iter().map(|c| c.unwrap_or(0)).collect();
        let len = data.len();
        let segments = seal_categorical(data, valid, DEFAULT_SEGMENT_ROWS);
        Ok(Column::from_parts(
            name.into(),
            ColumnKind::Categorical,
            DEFAULT_SEGMENT_ROWS,
            len,
            segments,
            Arc::new(categories),
        ))
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Storage kind of this column.
    pub fn kind(&self) -> ColumnKind {
        self.kind
    }

    /// Dictionary (empty for numeric columns).
    pub fn categories(&self) -> &[String] {
        &self.categories
    }

    /// Number of categories in the dictionary (0 for numeric columns).
    pub fn cardinality(&self) -> usize {
        self.categories.len()
    }

    /// Rows per full segment.
    pub fn segment_rows(&self) -> usize {
        self.seg_rows
    }

    /// Number of segments.
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// First row covered by segment `seg`.
    pub fn segment_offset(&self, seg: usize) -> usize {
        seg * self.seg_rows
    }

    /// Rows in segment `seg` (the last segment may be short).
    pub fn segment_len(&self, seg: usize) -> usize {
        self.segments.get(seg).map_or(0, |s| s.len())
    }

    /// Read handle on segment `seg`'s payload, reloading it from the spill
    /// tier if necessary. Hot loops should fetch one view per segment
    /// instead of calling the per-cell accessors per row.
    pub fn segment_view(&self, seg: usize) -> Result<SegmentView> {
        match self.segments.get(seg) {
            Some(core) => core.view(),
            None => Err(FrameError::ColumnOutOfBounds { col: seg, ncols: self.segments.len() }),
        }
    }

    /// Memoized content fingerprint of segment `seg` (kind + values +
    /// validity; excludes the column name, so identical content shares
    /// spill files and feature-block cache entries across columns).
    pub fn segment_fingerprint(&self, seg: usize) -> Result<u64> {
        match self.segments.get(seg) {
            Some(core) => core.fingerprint(),
            None => Err(FrameError::ColumnOutOfBounds { col: seg, ncols: self.segments.len() }),
        }
    }

    #[inline]
    fn locate(&self, row: usize) -> (usize, usize) {
        (row / self.seg_rows, row % self.seg_rows)
    }

    /// Number of missing cells.
    pub fn missing_count(&self) -> usize {
        let mut count = 0;
        for seg in &self.segments {
            if let Ok(view) = seg.view() {
                count += view.payload().valid.iter().filter(|v| !**v).count();
            }
        }
        count
    }

    /// True when the cell at `row` is present (in bounds and not missing).
    pub fn is_valid(&self, row: usize) -> bool {
        if row >= self.len {
            return false;
        }
        let (s, local) = self.locate(row);
        self.segments[s].view().map(|v| v.is_valid(local)).unwrap_or(false)
    }

    /// Read the cell at `row`.
    pub fn get(&self, row: usize) -> Result<Cell> {
        if row >= self.len {
            return Err(FrameError::RowOutOfBounds { row, nrows: self.len });
        }
        let (s, local) = self.locate(row);
        let view = self.segments[s].view()?;
        if !view.is_valid(local) {
            return Ok(Cell::Missing);
        }
        Ok(match view.payload().data {
            SegData::Num(ref v) => Cell::Num(v[local]),
            SegData::Cat(ref v) => Cell::Cat(v[local]),
        })
    }

    /// Write the cell at `row`, enforcing the column's kind. Writing
    /// [`Cell::Missing`] clears the validity bit; writing a value sets it.
    /// The first write to a shared segment un-shares that segment only
    /// (copy-on-write at segment granularity).
    pub fn set(&mut self, row: usize, cell: Cell) -> Result<()> {
        if row >= self.len {
            return Err(FrameError::RowOutOfBounds { row, nrows: self.len });
        }
        match (self.kind, cell) {
            (_, Cell::Missing) | (ColumnKind::Numeric, Cell::Num(_)) => {}
            (ColumnKind::Categorical, Cell::Cat(code)) => {
                if code as usize >= self.categories.len() {
                    return Err(FrameError::UnknownCategory {
                        column: self.name.as_ref().to_owned(),
                        code,
                    });
                }
            }
            (_, cell) => {
                return Err(FrameError::TypeMismatch {
                    column: self.name.as_ref().to_owned(),
                    expected: self.kind.name(),
                    got: cell.kind_name(),
                })
            }
        }
        let (s, local) = self.locate(row);
        let core = &self.segments[s];
        if Arc::strong_count(core) == 1 {
            // Uniquely owned by this column: mutate in place (the payload
            // itself un-shares from live views via make_mut).
            core.with_payload_mut(|payload| apply_cell(payload, local, cell))?;
        } else {
            // Shared with a snapshot: copy-on-write this one segment.
            let view = core.view()?;
            let mut payload = view.payload().clone();
            apply_cell(&mut payload, local, cell);
            self.segments[s] = SegmentCore::new_resident(payload, self.kind);
        }
        self.fp = FpCache::default();
        Ok(())
    }

    /// Numeric value at `row` if present and the column is numeric.
    pub fn num(&self, row: usize) -> Option<f64> {
        if row >= self.len {
            return None;
        }
        let (s, local) = self.locate(row);
        self.segments[s].view().ok()?.num(local)
    }

    /// Categorical code at `row` if present and the column is categorical.
    pub fn cat(&self, row: usize) -> Option<u32> {
        if row >= self.len {
            return None;
        }
        let (s, local) = self.locate(row);
        self.segments[s].view().ok()?.cat(local)
    }

    /// Iterate all cells in row order.
    pub fn iter(&self) -> impl Iterator<Item = Cell> + '_ {
        (0..self.len).map(move |row| self.get(row).unwrap_or(Cell::Missing))
    }

    /// Build a new column containing only the given rows, in order.
    /// Duplicated and re-ordered indices are allowed (used by bootstrap
    /// sampling and splits). Raw payload values (including fillers under
    /// masked cells) are preserved so fingerprints match the pre-segmented
    /// layout exactly.
    pub fn take(&self, rows: &[usize]) -> Result<Column> {
        let nrows = self.len;
        if let Some(&bad) = rows.iter().find(|&&r| r >= nrows) {
            return Err(FrameError::RowOutOfBounds { row: bad, nrows });
        }
        let mut out = RawBuilder::new(self.kind, self.seg_rows, rows.len());
        // Cache the last source view: split/sample indices are sorted, so
        // consecutive rows overwhelmingly land in the same segment.
        let mut cached: Option<(usize, SegmentView)> = None;
        for &r in rows {
            let (s, local) = self.locate(r);
            let view = match &cached {
                Some((seg, view)) if *seg == s => view,
                _ => {
                    cached = Some((s, self.segment_view(s)?));
                    match &cached {
                        Some((_, view)) => view,
                        // The cache was just written; this arm is unreachable.
                        None => return Err(FrameError::Io("segment cache invariant".into())),
                    }
                }
            };
            out.push_raw(view, local);
        }
        Ok(Column::from_parts(
            self.name.clone(),
            self.kind,
            self.seg_rows,
            rows.len(),
            out.finish(),
            self.categories.clone(),
        ))
    }

    /// Rebuild this column with a different segment size. `seg_rows == 0`
    /// means whole-column (a single segment). Content, fingerprints, and
    /// traces are invariant under resegmentation; only locality and spill
    /// granularity change. A no-op (O(1) clone) when the size matches.
    pub fn resegment(&self, seg_rows: usize) -> Result<Column> {
        let target = if seg_rows == 0 { self.len.max(1) } else { seg_rows };
        if target == self.seg_rows {
            return Ok(self.clone());
        }
        let mut out = RawBuilder::new(self.kind, target, self.len);
        for seg in 0..self.segments.len() {
            let view = self.segment_view(seg)?;
            for local in 0..view.len() {
                out.push_raw(&view, local);
            }
        }
        let mut col = Column::from_parts(
            self.name.clone(),
            self.kind,
            target,
            self.len,
            out.finish(),
            self.categories.clone(),
        );
        // Content is unchanged, so the memoized whole-column fingerprint
        // (segment-size-invariant by construction) carries over.
        col.fp = self.fp.clone();
        Ok(col)
    }

    /// Rename the column (used when deriving feature matrices).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into().into();
        self.fp = FpCache::default();
        self
    }

    /// True when `self` and `other` share the same payload storage (an O(1)
    /// copy-on-write clone that has not diverged). Diagnostic for tests and
    /// snapshot-cost assertions.
    pub fn shares_storage_with(&self, other: &Column) -> bool {
        self.segments.len() == other.segments.len()
            && self.segments.iter().zip(&other.segments).all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// Memoization slot for the content fingerprint (see `fingerprint.rs`).
    pub(crate) fn fp_slot(&self) -> &OnceLock<u64> {
        &self.fp.0
    }

    /// Display string for a cell (category name, numeric literal, or empty
    /// string for missing) — the CSV writer's cell format.
    pub fn display(&self, row: usize) -> Result<String> {
        Ok(match self.get(row)? {
            Cell::Missing => String::new(),
            Cell::Num(v) => format_float(v),
            Cell::Cat(code) => self.categories[code as usize].clone(),
        })
    }
}

/// Accumulates raw (value, validity) pairs into sealed segments — the
/// engine behind [`Column::take`] and [`Column::resegment`], which must
/// preserve filler values under masked cells bit-for-bit.
struct RawBuilder {
    kind: ColumnKind,
    seg_rows: usize,
    nums: Vec<f64>,
    cats: Vec<u32>,
    valid: Vec<bool>,
    segments: Vec<Arc<SegmentCore>>,
}

impl RawBuilder {
    fn new(kind: ColumnKind, seg_rows: usize, size_hint: usize) -> Self {
        let cap = seg_rows.min(size_hint.max(1));
        RawBuilder {
            kind,
            seg_rows,
            nums: if kind == ColumnKind::Numeric { Vec::with_capacity(cap) } else { Vec::new() },
            cats: if kind == ColumnKind::Categorical {
                Vec::with_capacity(cap)
            } else {
                Vec::new()
            },
            valid: Vec::with_capacity(cap),
            segments: Vec::new(),
        }
    }

    fn push_raw(&mut self, view: &SegmentView, local: usize) {
        match &view.payload().data {
            SegData::Num(v) => self.nums.push(v[local]),
            SegData::Cat(v) => self.cats.push(v[local]),
        }
        self.valid.push(view.payload().valid[local]);
        if self.valid.len() == self.seg_rows {
            self.seal();
        }
    }

    fn seal(&mut self) {
        let valid = std::mem::take(&mut self.valid);
        let data = match self.kind {
            ColumnKind::Numeric => SegData::Num(std::mem::take(&mut self.nums)),
            ColumnKind::Categorical => SegData::Cat(std::mem::take(&mut self.cats)),
        };
        self.segments.push(SegmentCore::new_resident(SegPayload { data, valid }, self.kind));
    }

    fn finish(mut self) -> Vec<Arc<SegmentCore>> {
        if !self.valid.is_empty() || self.segments.is_empty() {
            self.seal();
        }
        self.segments
    }
}

/// Format a float so that CSV round-trips losslessly (shortest repr).
pub(crate) fn format_float(v: f64) -> String {
    let mut s = format!("{v}");
    // Ensure a decimal point or exponent so the reader infers numeric.
    if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
        s.push_str(".0");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat_col() -> Column {
        Column::categorical(
            "color",
            vec![0, 1, 2, 1],
            vec!["red".into(), "green".into(), "blue".into()],
        )
        .unwrap()
    }

    #[test]
    fn numeric_get_set_roundtrip() {
        let mut c = Column::numeric("x", vec![1.0, 2.0, 3.0]);
        assert_eq!(c.get(1).unwrap(), Cell::Num(2.0));
        c.set(1, Cell::Num(9.5)).unwrap();
        assert_eq!(c.get(1).unwrap(), Cell::Num(9.5));
        assert_eq!(c.num(1), Some(9.5));
        assert_eq!(c.cat(1), None);
    }

    #[test]
    fn missing_via_mask_not_nan() {
        let mut c = Column::numeric("x", vec![1.0, 2.0]);
        c.set(0, Cell::Missing).unwrap();
        assert_eq!(c.get(0).unwrap(), Cell::Missing);
        assert_eq!(c.missing_count(), 1);
        // Restoring a value clears the missing bit.
        c.set(0, Cell::Num(7.0)).unwrap();
        assert_eq!(c.missing_count(), 0);
        assert_eq!(c.get(0).unwrap(), Cell::Num(7.0));
    }

    #[test]
    fn numeric_opt_builder() {
        let c = Column::numeric_opt("x", vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(c.missing_count(), 1);
        assert!(c.get(1).unwrap().is_missing());
    }

    #[test]
    fn categorical_roundtrip_and_dictionary_bounds() {
        let mut c = cat_col();
        assert_eq!(c.get(2).unwrap(), Cell::Cat(2));
        assert_eq!(c.cardinality(), 3);
        c.set(0, Cell::Cat(2)).unwrap();
        assert_eq!(c.cat(0), Some(2));
        let err = c.set(0, Cell::Cat(3)).unwrap_err();
        assert!(matches!(err, FrameError::UnknownCategory { code: 3, .. }));
    }

    #[test]
    fn invalid_code_in_constructor() {
        let err = Column::categorical("c", vec![5], vec!["only".into()]).unwrap_err();
        assert!(matches!(err, FrameError::UnknownCategory { code: 5, .. }));
        let err = Column::categorical_opt("c", vec![Some(9)], vec!["only".into()]).unwrap_err();
        assert!(matches!(err, FrameError::UnknownCategory { code: 9, .. }));
    }

    #[test]
    fn type_mismatch_on_set() {
        let mut c = Column::numeric("x", vec![1.0]);
        let err = c.set(0, Cell::Cat(0)).unwrap_err();
        assert!(matches!(err, FrameError::TypeMismatch { .. }));
    }

    #[test]
    fn out_of_bounds_get_set() {
        let mut c = Column::numeric("x", vec![1.0]);
        assert!(c.get(1).is_err());
        assert!(c.set(1, Cell::Num(0.0)).is_err());
    }

    #[test]
    fn take_reorders_and_duplicates() {
        let c = Column::numeric_opt("x", vec![Some(1.0), None, Some(3.0)]);
        let t = c.take(&[2, 0, 0, 1]).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(0).unwrap(), Cell::Num(3.0));
        assert_eq!(t.get(1).unwrap(), Cell::Num(1.0));
        assert_eq!(t.get(2).unwrap(), Cell::Num(1.0));
        assert!(t.get(3).unwrap().is_missing());
        assert!(c.take(&[99]).is_err());
    }

    #[test]
    fn take_preserves_dictionary() {
        let c = cat_col();
        let t = c.take(&[3, 2]).unwrap();
        assert_eq!(t.categories(), c.categories());
        assert_eq!(t.cat(0), Some(1));
    }

    #[test]
    fn display_formats() {
        let mut c = cat_col();
        assert_eq!(c.display(0).unwrap(), "red");
        c.set(0, Cell::Missing).unwrap();
        assert_eq!(c.display(0).unwrap(), "");
        let n = Column::numeric("x", vec![2.0, 2.5]);
        assert_eq!(n.display(0).unwrap(), "2.0");
        assert_eq!(n.display(1).unwrap(), "2.5");
    }

    #[test]
    fn iter_yields_all_cells() {
        let c = Column::numeric_opt("x", vec![Some(1.0), None]);
        let cells: Vec<Cell> = c.iter().collect();
        assert_eq!(cells, vec![Cell::Num(1.0), Cell::Missing]);
    }

    #[test]
    fn clone_is_shared_until_mutation() {
        let a = Column::numeric_opt("x", vec![Some(1.0), None, Some(3.0)]);
        let mut b = a.clone();
        assert!(a.shares_storage_with(&b));
        b.set(0, Cell::Num(9.0)).unwrap();
        assert!(!a.shares_storage_with(&b));
        // The original is untouched by writes through the clone.
        assert_eq!(a.get(0).unwrap(), Cell::Num(1.0));
        assert_eq!(b.get(0).unwrap(), Cell::Num(9.0));
        assert!(a.get(1).unwrap().is_missing() && b.get(1).unwrap().is_missing());
    }

    #[test]
    fn missing_write_unshares_only_the_mask() {
        let a = cat_col();
        let mut b = a.clone();
        b.set(2, Cell::Missing).unwrap();
        assert_eq!(a.missing_count(), 0);
        assert_eq!(b.missing_count(), 1);
        assert_eq!(a.cat(2), Some(2));
    }

    #[test]
    fn equality_ignores_sharing() {
        let a = Column::numeric("x", vec![1.0, 2.0]);
        let shared = a.clone();
        let rebuilt = Column::numeric("x", vec![1.0, 2.0]);
        assert!(a.shares_storage_with(&shared));
        assert!(!a.shares_storage_with(&rebuilt));
        assert_eq!(a, shared);
        assert_eq!(a, rebuilt);
    }

    #[test]
    fn cell_accessors() {
        assert!(Cell::Missing.is_missing());
        assert_eq!(Cell::Num(2.0).as_num(), Some(2.0));
        assert_eq!(Cell::Num(2.0).as_cat(), None);
        assert_eq!(Cell::Cat(1).as_cat(), Some(1));
        assert_eq!(Cell::Cat(1).as_num(), None);
        assert_eq!(Cell::Missing.kind_name(), "missing");
    }

    #[test]
    fn resegment_preserves_content_and_sharing_granularity() {
        let values: Vec<f64> = (0..100).map(|i| i as f64 * 0.5).collect();
        let base = Column::numeric("x", values.clone());
        let seg = base.resegment(16).unwrap();
        assert_eq!(seg.n_segments(), 7);
        assert_eq!(seg.segment_len(6), 4);
        assert_eq!(seg.segment_offset(3), 48);
        assert_eq!(base, seg);
        assert_eq!(base.fingerprint(), seg.fingerprint());
        // Whole-column sentinel.
        let whole = seg.resegment(0).unwrap();
        assert_eq!(whole.n_segments(), 1);
        assert_eq!(whole.fingerprint(), base.fingerprint());
    }

    #[test]
    fn segment_cow_touches_one_segment() {
        let base =
            Column::numeric("x", (0..100).map(|i| i as f64).collect()).resegment(16).unwrap();
        let mut poked = base.clone();
        poked.set(50, Cell::Num(-1.0)).unwrap();
        assert!(!poked.shares_storage_with(&base));
        // Only segment 3 (rows 48..64) diverged.
        for seg in 0..base.n_segments() {
            let same = Arc::ptr_eq(&base.segments[seg], &poked.segments[seg]);
            assert_eq!(same, seg != 3, "segment {seg}");
        }
        assert_eq!(base.get(50).unwrap(), Cell::Num(50.0));
        assert_eq!(poked.get(50).unwrap(), Cell::Num(-1.0));
    }

    #[test]
    fn segment_fingerprints_are_content_addressed() {
        let a = Column::numeric("a", (0..64).map(|i| i as f64).collect()).resegment(16).unwrap();
        let b = Column::numeric("b", (0..64).map(|i| i as f64).collect()).resegment(16).unwrap();
        // Same content, different names: segment fingerprints agree
        // (content-addressed), whole-column fingerprints differ (named).
        for seg in 0..a.n_segments() {
            assert_eq!(a.segment_fingerprint(seg).unwrap(), b.segment_fingerprint(seg).unwrap());
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = a.clone();
        c.set(17, Cell::Num(99.0)).unwrap();
        assert_ne!(
            a.segment_fingerprint(1).unwrap(),
            c.segment_fingerprint(1).unwrap(),
            "touched segment fingerprint changes"
        );
        assert_eq!(a.segment_fingerprint(0).unwrap(), c.segment_fingerprint(0).unwrap());
    }

    #[test]
    fn take_across_segments_preserves_segment_size() {
        let base = Column::numeric_opt(
            "x",
            (0..100).map(|i| if i % 7 == 0 { None } else { Some(i as f64) }).collect(),
        )
        .resegment(16)
        .unwrap();
        let rows: Vec<usize> = (0..100).step_by(3).collect();
        let t = base.take(&rows).unwrap();
        assert_eq!(t.segment_rows(), 16);
        assert_eq!(t.len(), rows.len());
        for (out_row, &src_row) in rows.iter().enumerate() {
            assert_eq!(t.get(out_row).unwrap(), base.get(src_row).unwrap());
        }
    }
}
