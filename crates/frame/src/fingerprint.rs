//! Cheap 64-bit content fingerprints for columns and frames.
//!
//! The evaluation cache in `comet-core` keys cached model scores by the
//! *content* of the (train, test) frame pair. These fingerprints use the
//! FxHash mixing function (rotate-xor-multiply) over the raw column
//! payloads — not cryptographic, but fast (one multiply per word) and
//! sensitive to any single-cell change: value bits, validity flips,
//! dictionary edits, column renames, and column order all alter the hash.

use crate::{Column, ColumnData, DataFrame};

/// FxHash multiply constant (64-bit golden-ratio derivative).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

fn mix_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    hash = mix(hash, bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        hash = mix(hash, u64::from_le_bytes(word));
    }
    hash
}

/// Pack the validity mask into 64-bit words and mix them in. Packing keeps
/// the per-row cost at one shift/or, far below hashing a bool per row.
fn mix_validity(mut hash: u64, valid: &[bool]) -> u64 {
    hash = mix(hash, valid.len() as u64);
    let mut word = 0u64;
    let mut bits = 0u32;
    for &v in valid {
        word = (word << 1) | v as u64;
        bits += 1;
        if bits == 64 {
            hash = mix(hash, word);
            word = 0;
            bits = 0;
        }
    }
    if bits > 0 {
        hash = mix(hash, word);
    }
    hash
}

impl Column {
    /// 64-bit content fingerprint covering name, kind, payload, validity
    /// mask, and (for categoricals) the dictionary. Memoized per column:
    /// the O(rows) scan runs once and the value rides along on clones until
    /// a mutation resets it, so re-fingerprinting a frame where a candidate
    /// touched one column only re-scans that column.
    pub fn fingerprint(&self) -> u64 {
        *self.fp_slot().get_or_init(|| self.fingerprint_uncached())
    }

    fn fingerprint_uncached(&self) -> u64 {
        let mut hash = mix_bytes(SEED, self.name().as_bytes());
        match self.data() {
            ColumnData::Numeric(values) => {
                hash = mix(hash, 1);
                for &v in values {
                    hash = mix(hash, v.to_bits());
                }
            }
            ColumnData::Categorical(codes) => {
                hash = mix(hash, 2);
                for &c in codes {
                    hash = mix(hash, c as u64);
                }
                for cat in self.categories() {
                    hash = mix_bytes(hash, cat.as_bytes());
                }
            }
        }
        mix_validity(hash, self.valid())
    }
}

impl DataFrame {
    /// 64-bit content fingerprint of the whole frame: every column's
    /// fingerprint folded in order, plus shape and label position.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = mix(SEED, self.nrows() as u64);
        hash = mix(hash, self.ncols() as u64);
        hash = mix(hash, self.schema().label_index().map_or(u64::MAX, |i| i as u64));
        for column in self.columns() {
            hash = mix(hash, column.fingerprint());
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use crate::{Cell, Column, DataFrame};

    fn frame() -> DataFrame {
        DataFrame::new(
            vec![
                Column::numeric("x", vec![1.0, 2.0, 3.0]),
                Column::numeric_opt("y", vec![Some(0.5), None, Some(1.5)]),
                Column::categorical("label", vec![0, 1, 0], vec!["no".into(), "yes".into()])
                    .unwrap(),
            ],
            Some("label"),
        )
        .unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic() {
        assert_eq!(frame().fingerprint(), frame().fingerprint());
    }

    #[test]
    fn single_cell_change_alters_fingerprint() {
        let base = frame().fingerprint();
        let mut f = frame();
        f.set(1, 0, Cell::Num(2.0000001)).unwrap();
        assert_ne!(f.fingerprint(), base);
    }

    #[test]
    fn validity_flip_alters_fingerprint() {
        let base = frame().fingerprint();
        let mut f = frame();
        // Same neutral filler value, only the mask changes.
        f.set(0, 1, Cell::Missing).unwrap();
        assert_ne!(f.fingerprint(), base);
    }

    #[test]
    fn column_name_and_order_matter() {
        let a = Column::numeric("a", vec![1.0, 2.0]);
        let b = Column::numeric("b", vec![1.0, 2.0]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let ab = DataFrame::new(vec![a.clone(), b.clone()], None).unwrap();
        let ba = DataFrame::new(vec![b, a], None).unwrap();
        assert_ne!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn negative_zero_distinct_from_positive_zero() {
        let pos = Column::numeric("x", vec![0.0]);
        let neg = Column::numeric("x", vec![-0.0]);
        assert_ne!(pos.fingerprint(), neg.fingerprint());
    }

    #[test]
    fn memoized_fingerprint_tracks_mutation_cycles() {
        let mut c = Column::numeric("x", vec![1.0, 2.0, 3.0]);
        let base = c.fingerprint();
        let clone = c.clone();
        // Clones share the memoized value and the content.
        assert_eq!(clone.fingerprint(), base);
        c.set(1, Cell::Num(9.0)).unwrap();
        let mutated = c.fingerprint();
        assert_ne!(mutated, base);
        // Restoring the original value restores the original fingerprint
        // (content-addressed, not identity-addressed).
        c.set(1, Cell::Num(2.0)).unwrap();
        assert_eq!(c.fingerprint(), base);
        assert_eq!(clone.fingerprint(), base);
    }

    #[test]
    fn dictionary_edit_alters_fingerprint() {
        let a = Column::categorical("c", vec![0], vec!["x".into(), "y".into()]).unwrap();
        let b = Column::categorical("c", vec![0], vec!["x".into(), "z".into()]).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
