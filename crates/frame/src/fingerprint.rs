//! Cheap 64-bit content fingerprints for columns, segments, and frames.
//!
//! The evaluation cache in `comet-core` keys cached model scores by the
//! *content* of the (train, test) frame pair. These fingerprints use the
//! FxHash mixing function (rotate-xor-multiply) over the raw column
//! payloads — not cryptographic, but fast (one multiply per word) and
//! sensitive to any single-cell change: value bits, validity flips,
//! dictionary edits, column renames, and column order all alter the hash.
//!
//! Two granularities coexist:
//!
//! * The **whole-column** fingerprint streams the payload in row order
//!   across segments, carrying the validity bit-packing word over segment
//!   boundaries, so the value is *segment-size-invariant*: a column split
//!   1Ki-wise, 64Ki-wise, or not at all hashes identically, which keeps
//!   eval-cache keys and traces bit-identical to the pre-segmentation
//!   layout.
//! * The **per-segment** content fingerprint ([`segment_content_fp`])
//!   covers one segment's kind + values + validity but *not* the column
//!   name, so identical content is shared across columns. It addresses
//!   spill files and keys per-segment feature-block caches.

use crate::segment::{SegData, SegPayload};
use crate::{Column, ColumnKind, DataFrame};

/// FxHash multiply constant (64-bit golden-ratio derivative).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

pub(crate) fn mix_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    hash = mix(hash, bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        hash = mix(hash, u64::from_le_bytes(word));
    }
    hash
}

/// Streaming validity packer: 64 mask bits per mixed word (MSB-first),
/// carried across [`push`](ValidityMixer::push) calls so segment boundaries
/// never flush a partial word. Packing keeps the per-row cost at one
/// shift/or, far below hashing a bool per row.
struct ValidityMixer {
    hash: u64,
    word: u64,
    bits: u32,
}

impl ValidityMixer {
    fn new(hash: u64, total_len: usize) -> Self {
        ValidityMixer { hash: mix(hash, total_len as u64), word: 0, bits: 0 }
    }

    fn push(&mut self, valid: &[bool]) {
        for &v in valid {
            self.word = (self.word << 1) | v as u64;
            self.bits += 1;
            if self.bits == 64 {
                self.hash = mix(self.hash, self.word);
                self.word = 0;
                self.bits = 0;
            }
        }
    }

    fn finish(self) -> u64 {
        if self.bits > 0 {
            mix(self.hash, self.word)
        } else {
            self.hash
        }
    }
}

fn mix_validity(hash: u64, valid: &[bool]) -> u64 {
    let mut mixer = ValidityMixer::new(hash, valid.len());
    mixer.push(valid);
    mixer.finish()
}

fn mix_values(mut hash: u64, data: &SegData) -> u64 {
    match data {
        SegData::Num(values) => {
            for &v in values {
                hash = mix(hash, v.to_bits());
            }
        }
        SegData::Cat(codes) => {
            for &c in codes {
                hash = mix(hash, c as u64);
            }
        }
    }
    hash
}

/// Content fingerprint of one segment payload: kind tag, raw values, and
/// validity. Excludes the column name and dictionary, so identical content
/// shares spill files and feature-block cache entries across columns (codes
/// round-trip bit-exactly regardless of the dictionary, which lives on the
/// column).
pub(crate) fn segment_content_fp(payload: &SegPayload, kind: ColumnKind) -> u64 {
    let tag = match kind {
        ColumnKind::Numeric => 1,
        ColumnKind::Categorical => 2,
    };
    let hash = mix_values(mix(SEED, tag), &payload.data);
    mix_validity(hash, &payload.valid)
}

impl Column {
    /// 64-bit content fingerprint covering name, kind, payload, validity
    /// mask, and (for categoricals) the dictionary. Memoized per column:
    /// the O(rows) scan runs once and the value rides along on clones until
    /// a mutation resets it, so re-fingerprinting a frame where a candidate
    /// touched one column only re-scans that column. Invariant under
    /// resegmentation (values stream in row order; validity packing carries
    /// across segment boundaries).
    pub fn fingerprint(&self) -> u64 {
        *self.fp_slot().get_or_init(|| self.fingerprint_uncached())
    }

    fn fingerprint_uncached(&self) -> u64 {
        let mut hash = mix_bytes(SEED, self.name().as_bytes());
        hash = mix(
            hash,
            match self.kind() {
                ColumnKind::Numeric => 1,
                ColumnKind::Categorical => 2,
            },
        );
        // Hold every view first so a reload failure degrades to hashing the
        // rows that are reachable rather than silently skipping mid-stream.
        let views: Vec<_> =
            (0..self.n_segments()).filter_map(|seg| self.segment_view(seg).ok()).collect();
        for view in &views {
            hash = mix_values(hash, &view.payload().data);
        }
        if self.kind() == ColumnKind::Categorical {
            for cat in self.categories() {
                hash = mix_bytes(hash, cat.as_bytes());
            }
        }
        let mut mixer = ValidityMixer::new(hash, self.len());
        for view in &views {
            mixer.push(&view.payload().valid);
        }
        mixer.finish()
    }
}

impl DataFrame {
    /// 64-bit content fingerprint of the whole frame: every column's
    /// fingerprint folded in order, plus shape and label position.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = mix(SEED, self.nrows() as u64);
        hash = mix(hash, self.ncols() as u64);
        hash = mix(hash, self.schema().label_index().map_or(u64::MAX, |i| i as u64));
        for column in self.columns() {
            hash = mix(hash, column.fingerprint());
        }
        hash
    }
}

/// Fingerprint arbitrary tagged bytes with the frame hash (used by
/// `comet-core` for config fingerprints so one mixing function covers every
/// cache key in the system).
pub fn fingerprint_bytes(tag: u64, bytes: &[u8]) -> u64 {
    mix_bytes(mix(SEED, tag), bytes)
}

#[cfg(test)]
mod tests {
    use crate::{Cell, Column, DataFrame};

    fn frame() -> DataFrame {
        DataFrame::new(
            vec![
                Column::numeric("x", vec![1.0, 2.0, 3.0]),
                Column::numeric_opt("y", vec![Some(0.5), None, Some(1.5)]),
                Column::categorical("label", vec![0, 1, 0], vec!["no".into(), "yes".into()])
                    .unwrap(),
            ],
            Some("label"),
        )
        .unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic() {
        assert_eq!(frame().fingerprint(), frame().fingerprint());
    }

    #[test]
    fn single_cell_change_alters_fingerprint() {
        let base = frame().fingerprint();
        let mut f = frame();
        f.set(1, 0, Cell::Num(2.0000001)).unwrap();
        assert_ne!(f.fingerprint(), base);
    }

    #[test]
    fn validity_flip_alters_fingerprint() {
        let base = frame().fingerprint();
        let mut f = frame();
        // Same neutral filler value, only the mask changes.
        f.set(0, 1, Cell::Missing).unwrap();
        assert_ne!(f.fingerprint(), base);
    }

    #[test]
    fn column_name_and_order_matter() {
        let a = Column::numeric("a", vec![1.0, 2.0]);
        let b = Column::numeric("b", vec![1.0, 2.0]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let ab = DataFrame::new(vec![a.clone(), b.clone()], None).unwrap();
        let ba = DataFrame::new(vec![b, a], None).unwrap();
        assert_ne!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn negative_zero_distinct_from_positive_zero() {
        let pos = Column::numeric("x", vec![0.0]);
        let neg = Column::numeric("x", vec![-0.0]);
        assert_ne!(pos.fingerprint(), neg.fingerprint());
    }

    #[test]
    fn memoized_fingerprint_tracks_mutation_cycles() {
        let mut c = Column::numeric("x", vec![1.0, 2.0, 3.0]);
        let base = c.fingerprint();
        let clone = c.clone();
        // Clones share the memoized value and the content.
        assert_eq!(clone.fingerprint(), base);
        c.set(1, Cell::Num(9.0)).unwrap();
        let mutated = c.fingerprint();
        assert_ne!(mutated, base);
        // Restoring the original value restores the original fingerprint
        // (content-addressed, not identity-addressed).
        c.set(1, Cell::Num(2.0)).unwrap();
        assert_eq!(c.fingerprint(), base);
        assert_eq!(clone.fingerprint(), base);
    }

    #[test]
    fn dictionary_edit_alters_fingerprint() {
        let a = Column::categorical("c", vec![0], vec!["x".into(), "y".into()]).unwrap();
        let b = Column::categorical("c", vec![0], vec!["x".into(), "z".into()]).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_is_segment_size_invariant() {
        // 131 rows with a mix of missing cells straddles segment boundaries
        // at every size below; the packed-validity carry must not flush at
        // the boundary.
        let vals: Vec<Option<f64>> =
            (0..131).map(|i| if i % 5 == 0 { None } else { Some(i as f64 * 1.25) }).collect();
        let whole = Column::numeric_opt("x", vals);
        let base = whole.fingerprint();
        for seg_rows in [1usize, 3, 16, 64, 100, 1024] {
            let seg = whole.resegment(seg_rows).unwrap();
            // Recompute from scratch (the memoized value carries over on
            // resegment, so poke a fresh clone via take to force a rescan).
            let fresh = seg.take(&(0..seg.len()).collect::<Vec<_>>()).unwrap();
            assert_eq!(fresh.fingerprint(), base, "seg_rows={seg_rows}");
        }
        let cat = Column::categorical_opt(
            "c",
            (0..131).map(|i| if i % 7 == 0 { None } else { Some(i % 3) }).collect(),
            vec!["a".into(), "b".into(), "c".into()],
        )
        .unwrap();
        let cat_base = cat.fingerprint();
        for seg_rows in [1usize, 8, 50] {
            let fresh =
                cat.resegment(seg_rows).unwrap().take(&(0..cat.len()).collect::<Vec<_>>()).unwrap();
            assert_eq!(fresh.fingerprint(), cat_base, "seg_rows={seg_rows}");
        }
    }
}
