//! Row-oriented, streaming frame construction.
//!
//! [`ColumnBuilder`] accumulates one column's cells and seals them into
//! fixed-size segments as it goes, so building a 10⁷-row column never holds
//! more than one unsealed segment of working buffer per column — and when
//! the spill pool is configured, sealed segments can already spill while
//! the rest of the data is still being generated or parsed.
//! [`DataFrameBuilder`] stacks one `ColumnBuilder` per schema field behind
//! a row-at-a-time API.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::column::Column;
use crate::segment::{SegData, SegPayload, SegmentCore, DEFAULT_SEGMENT_ROWS};
use crate::{Cell, ColumnKind, DataFrame, FieldMeta, FrameError, Result, Role, Schema};

/// Streaming builder for a single [`Column`]: cells are pushed one at a
/// time and sealed into segments of `seg_rows` rows incrementally.
///
/// Categorical builders come in two flavours: a *fixed* dictionary declared
/// up front ([`ColumnBuilder::categorical`], used by generators so codes
/// are stable across builds) and an *open* dictionary grown in
/// first-appearance order ([`ColumnBuilder::categorical_open`], used by the
/// CSV reader's inference).
#[derive(Debug, Clone)]
pub struct ColumnBuilder {
    name: String,
    kind: ColumnKind,
    seg_rows: usize,
    nums: Vec<f64>,
    cats: Vec<u32>,
    valid: Vec<bool>,
    segments: Vec<Arc<SegmentCore>>,
    len: usize,
    dict: Vec<String>,
    dict_index: BTreeMap<String, u32>,
    open_dict: bool,
}

impl ColumnBuilder {
    fn new(name: String, kind: ColumnKind, seg_rows: usize, dict: Vec<String>, open: bool) -> Self {
        let seg_rows = if seg_rows == 0 { DEFAULT_SEGMENT_ROWS } else { seg_rows };
        let dict_index =
            dict.iter().enumerate().map(|(i, s)| (s.clone(), i as u32)).collect::<BTreeMap<_, _>>();
        ColumnBuilder {
            name,
            kind,
            seg_rows,
            nums: Vec::new(),
            cats: Vec::new(),
            valid: Vec::new(),
            segments: Vec::new(),
            len: 0,
            dict,
            dict_index,
            open_dict: open,
        }
    }

    /// Start a numeric column. `seg_rows == 0` selects
    /// [`DEFAULT_SEGMENT_ROWS`].
    pub fn numeric(name: impl Into<String>, seg_rows: usize) -> Self {
        ColumnBuilder::new(name.into(), ColumnKind::Numeric, seg_rows, Vec::new(), false)
    }

    /// Start a categorical column with a fixed dictionary.
    pub fn categorical(name: impl Into<String>, dict: Vec<String>, seg_rows: usize) -> Self {
        ColumnBuilder::new(name.into(), ColumnKind::Categorical, seg_rows, dict, false)
    }

    /// Start a categorical column whose dictionary grows in first-appearance
    /// order as labels are pushed ([`ColumnBuilder::push_label`]).
    pub fn categorical_open(name: impl Into<String>, seg_rows: usize) -> Self {
        ColumnBuilder::new(name.into(), ColumnKind::Categorical, seg_rows, Vec::new(), true)
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mismatch(&self, got: &'static str) -> FrameError {
        FrameError::TypeMismatch { column: self.name.clone(), expected: self.kind.name(), got }
    }

    fn push_slot(&mut self, valid: bool) {
        self.valid.push(valid);
        self.len += 1;
        if self.valid.len() == self.seg_rows {
            self.seal();
        }
    }

    fn seal(&mut self) {
        let valid = std::mem::take(&mut self.valid);
        let data = match self.kind {
            ColumnKind::Numeric => SegData::Num(std::mem::take(&mut self.nums)),
            ColumnKind::Categorical => SegData::Cat(std::mem::take(&mut self.cats)),
        };
        self.segments.push(SegmentCore::new_resident(SegPayload { data, valid }, self.kind));
    }

    /// Push a numeric value (`None` = missing). Errors on categorical
    /// columns.
    pub fn push_num(&mut self, value: Option<f64>) -> Result<()> {
        if self.kind != ColumnKind::Numeric {
            return Err(self.mismatch("numeric"));
        }
        self.nums.push(value.unwrap_or(0.0));
        self.push_slot(value.is_some());
        Ok(())
    }

    /// Push a categorical code (`None` = missing), validated against the
    /// current dictionary. Errors on numeric columns.
    pub fn push_cat(&mut self, code: Option<u32>) -> Result<()> {
        if self.kind != ColumnKind::Categorical {
            return Err(self.mismatch("categorical"));
        }
        if let Some(code) = code {
            if code as usize >= self.dict.len() {
                return Err(FrameError::UnknownCategory { column: self.name.clone(), code });
            }
        }
        self.cats.push(code.unwrap_or(0));
        self.push_slot(code.is_some());
        Ok(())
    }

    /// Push a categorical value by label, interning it into the dictionary
    /// (open-dictionary builders only).
    pub fn push_label(&mut self, label: &str) -> Result<()> {
        if self.kind != ColumnKind::Categorical {
            return Err(self.mismatch("categorical"));
        }
        if !self.open_dict {
            return Err(FrameError::InvalidArgument(format!(
                "column {:?} has a fixed dictionary; push codes instead",
                self.name
            )));
        }
        let code = match self.dict_index.get(label) {
            Some(&code) => code,
            None => {
                let code = self.dict.len() as u32;
                self.dict.push(label.to_string());
                self.dict_index.insert(label.to_string(), code);
                code
            }
        };
        self.cats.push(code);
        self.push_slot(true);
        Ok(())
    }

    /// Push any cell, dispatching on the column kind.
    pub fn push_cell(&mut self, cell: Cell) -> Result<()> {
        match (self.kind, cell) {
            (ColumnKind::Numeric, Cell::Num(v)) => self.push_num(Some(v)),
            (ColumnKind::Numeric, Cell::Missing) => self.push_num(None),
            (ColumnKind::Categorical, Cell::Cat(c)) => self.push_cat(Some(c)),
            (ColumnKind::Categorical, Cell::Missing) => self.push_cat(None),
            (_, cell) => Err(self.mismatch(cell.kind_name())),
        }
    }

    /// Seal the trailing partial segment and produce the column.
    pub fn finish(mut self) -> Column {
        if !self.valid.is_empty() || self.segments.is_empty() {
            self.seal();
        }
        Column::from_segments(
            self.name.into(),
            self.kind,
            self.seg_rows,
            self.len,
            self.segments,
            Arc::new(self.dict),
        )
    }
}

/// Incrementally builds a [`DataFrame`] row by row against a fixed schema.
///
/// Used by dataset generators and the CSV reader: declare the schema first,
/// then push rows of [`Cell`]s. Categorical dictionaries must be declared up
/// front so codes are stable across builds with different row orders. Rows
/// stream into per-column segments as they arrive (see [`ColumnBuilder`]),
/// so peak memory stays bounded by the spill budget, not the frame size.
#[derive(Debug, Clone)]
pub struct DataFrameBuilder {
    schema: Schema,
    builders: Vec<ColumnBuilder>,
    /// Per-column dictionaries (empty for numeric columns), kept for
    /// row-level validation before any cell of the row is committed.
    dictionaries: Vec<Vec<String>>,
}

impl DataFrameBuilder {
    /// Start a builder for `schema`. `dictionaries[i]` must be non-empty for
    /// every categorical column `i` and empty for numeric columns.
    pub fn new(schema: Schema, dictionaries: Vec<Vec<String>>) -> Result<Self> {
        DataFrameBuilder::with_segment_rows(schema, dictionaries, DEFAULT_SEGMENT_ROWS)
    }

    /// Like [`DataFrameBuilder::new`] with an explicit segment size
    /// (`seg_rows == 0` selects [`DEFAULT_SEGMENT_ROWS`]).
    pub fn with_segment_rows(
        schema: Schema,
        dictionaries: Vec<Vec<String>>,
        seg_rows: usize,
    ) -> Result<Self> {
        if dictionaries.len() != schema.len() {
            return Err(FrameError::InvalidArgument(format!(
                "expected {} dictionaries, got {}",
                schema.len(),
                dictionaries.len()
            )));
        }
        let mut builders = Vec::with_capacity(schema.len());
        for (i, field) in schema.fields().iter().enumerate() {
            let dict_len = dictionaries[i].len();
            match field.kind {
                ColumnKind::Categorical if dict_len == 0 => {
                    return Err(FrameError::InvalidArgument(format!(
                        "categorical column {:?} needs a dictionary",
                        field.name
                    )))
                }
                ColumnKind::Numeric if dict_len != 0 => {
                    return Err(FrameError::InvalidArgument(format!(
                        "numeric column {:?} must not have a dictionary",
                        field.name
                    )))
                }
                _ => {}
            }
            builders.push(match field.kind {
                ColumnKind::Numeric => ColumnBuilder::numeric(field.name.clone(), seg_rows),
                ColumnKind::Categorical => ColumnBuilder::categorical(
                    field.name.clone(),
                    dictionaries[i].clone(),
                    seg_rows,
                ),
            });
        }
        Ok(DataFrameBuilder { schema, builders, dictionaries })
    }

    /// Append one row. The row length must match the schema and each cell's
    /// kind must match its column; the row is validated in full before any
    /// cell is committed.
    pub fn push_row(&mut self, row: &[Cell]) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(FrameError::InvalidArgument(format!(
                "row has {} cells, schema has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        for (i, &cell) in row.iter().enumerate() {
            let field = self.schema.field(i)?;
            let ok = match (field.kind, cell) {
                (_, Cell::Missing) => true,
                (ColumnKind::Numeric, Cell::Num(_)) => true,
                (ColumnKind::Categorical, Cell::Cat(code)) => {
                    (code as usize) < self.dictionaries[i].len()
                }
                _ => false,
            };
            if !ok {
                return Err(FrameError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.kind.name(),
                    got: cell.kind_name(),
                });
            }
        }
        for (i, &cell) in row.iter().enumerate() {
            self.builders[i].push_cell(cell)?;
        }
        Ok(())
    }

    /// Number of rows accumulated so far.
    pub fn nrows(&self) -> usize {
        self.builders.first().map_or(0, ColumnBuilder::len)
    }

    /// Finish, producing the frame. Fails on zero rows.
    pub fn finish(self) -> Result<DataFrame> {
        if self.nrows() == 0 {
            return Err(FrameError::Empty);
        }
        let label_name = self.schema.label_index().map(|i| self.schema.fields()[i].name.clone());
        let columns: Vec<Column> = self.builders.into_iter().map(ColumnBuilder::finish).collect();
        DataFrame::new(columns, label_name.as_deref())
    }

    /// The builder's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

/// Convenience: schema + dictionaries for the common "numeric features with a
/// categorical label" case. Errors if the names collide or a dictionary is
/// malformed, same as [`Schema::new`].
pub fn numeric_schema(
    features: &[&str],
    label: &str,
    classes: &[&str],
) -> Result<(Schema, Vec<Vec<String>>)> {
    let mut fields: Vec<FieldMeta> = features.iter().map(|f| FieldMeta::numeric(*f)).collect();
    fields.push(FieldMeta { name: label.into(), kind: ColumnKind::Categorical, role: Role::Label });
    let mut dicts: Vec<Vec<String>> = vec![Vec::new(); features.len()];
    dicts.push(classes.iter().map(|c| c.to_string()).collect());
    Ok((Schema::new(fields)?, dicts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> DataFrameBuilder {
        let schema = Schema::new(vec![
            FieldMeta::numeric("x"),
            FieldMeta::categorical("c"),
            FieldMeta::label("y"),
        ])
        .unwrap();
        let dicts = vec![vec![], vec!["a".into(), "b".into()], vec!["no".into(), "yes".into()]];
        DataFrameBuilder::new(schema, dicts).unwrap()
    }

    #[test]
    fn builds_frame_row_by_row() {
        let mut b = builder();
        b.push_row(&[Cell::Num(1.0), Cell::Cat(0), Cell::Cat(1)]).unwrap();
        b.push_row(&[Cell::Missing, Cell::Cat(1), Cell::Cat(0)]).unwrap();
        assert_eq!(b.nrows(), 2);
        let df = b.finish().unwrap();
        assert_eq!(df.nrows(), 2);
        assert_eq!(df.label_codes().unwrap(), vec![1, 0]);
        assert!(df.get(1, 0).unwrap().is_missing());
        assert_eq!(df.column_by_name("c").unwrap().cardinality(), 2);
    }

    #[test]
    fn wrong_row_length_rejected() {
        let mut b = builder();
        assert!(b.push_row(&[Cell::Num(1.0)]).is_err());
    }

    #[test]
    fn wrong_cell_kind_rejected() {
        let mut b = builder();
        let err = b.push_row(&[Cell::Cat(0), Cell::Cat(0), Cell::Cat(0)]).unwrap_err();
        assert!(matches!(err, FrameError::TypeMismatch { .. }));
    }

    #[test]
    fn out_of_dictionary_code_rejected() {
        let mut b = builder();
        let err = b.push_row(&[Cell::Num(1.0), Cell::Cat(5), Cell::Cat(0)]).unwrap_err();
        assert!(matches!(err, FrameError::TypeMismatch { .. }));
    }

    #[test]
    fn empty_finish_rejected() {
        assert_eq!(builder().finish().unwrap_err(), FrameError::Empty);
    }

    #[test]
    fn dictionary_arity_validated() {
        let schema = Schema::new(vec![FieldMeta::numeric("x")]).unwrap();
        assert!(DataFrameBuilder::new(schema.clone(), vec![]).is_err());
        assert!(DataFrameBuilder::new(schema, vec![vec!["oops".into()]]).is_err());
        let cat_schema = Schema::new(vec![FieldMeta::categorical("c")]).unwrap();
        assert!(DataFrameBuilder::new(cat_schema, vec![vec![]]).is_err());
    }

    #[test]
    fn numeric_schema_helper() {
        let (schema, dicts) = numeric_schema(&["f1", "f2"], "y", &["neg", "pos"]).unwrap();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.label_index(), Some(2));
        assert_eq!(schema.fields()[0].kind, ColumnKind::Numeric);
        assert_eq!(dicts[2], vec!["neg".to_string(), "pos".to_string()]);
    }

    #[test]
    fn column_builder_streams_into_segments() {
        let mut b = ColumnBuilder::numeric("x", 8);
        for i in 0..20 {
            b.push_num(if i % 3 == 0 { None } else { Some(i as f64) }).unwrap();
        }
        assert_eq!(b.len(), 20);
        let col = b.finish();
        assert_eq!(col.len(), 20);
        assert_eq!(col.n_segments(), 3);
        assert_eq!(col.segment_rows(), 8);
        assert!(col.get(0).unwrap().is_missing());
        assert_eq!(col.num(4), Some(4.0));
        // Identical content built whole-column must fingerprint identically.
        let whole = Column::numeric_opt(
            "x",
            (0..20).map(|i| if i % 3 == 0 { None } else { Some(i as f64) }).collect(),
        );
        assert_eq!(col.fingerprint(), whole.fingerprint());
    }

    #[test]
    fn column_builder_open_dictionary_first_appearance_order() {
        let mut b = ColumnBuilder::categorical_open("c", 4);
        for label in ["b", "a", "b", "c", "a", "b"] {
            b.push_label(label).unwrap();
        }
        b.push_cat(None).unwrap();
        let col = b.finish();
        assert_eq!(col.categories(), &["b".to_string(), "a".to_string(), "c".to_string()]);
        assert_eq!(col.cat(0), Some(0));
        assert_eq!(col.cat(3), Some(2));
        assert_eq!(col.missing_count(), 1);
        assert_eq!(col.n_segments(), 2);
    }

    #[test]
    fn column_builder_kind_and_bounds_checks() {
        let mut n = ColumnBuilder::numeric("x", 0);
        assert!(n.push_cat(Some(0)).is_err());
        assert!(n.push_label("a").is_err());
        let mut c = ColumnBuilder::categorical("c", vec!["only".into()], 0);
        assert!(c.push_num(Some(1.0)).is_err());
        assert!(c.push_cat(Some(1)).is_err());
        assert!(c.push_label("other").is_err(), "fixed dictionaries reject interning");
        c.push_cat(Some(0)).unwrap();
        assert_eq!(c.finish().cat(0), Some(0));
    }

    #[test]
    fn empty_column_builder_finishes_to_empty_column() {
        let col = ColumnBuilder::numeric("x", 4).finish();
        assert_eq!(col.len(), 0);
        assert!(col.is_empty());
        assert_eq!(col.n_segments(), 1);
    }
}
