//! Row-oriented frame construction.

use crate::{Cell, Column, DataFrame, FieldMeta, FrameError, Result, Role, Schema};

/// Incrementally builds a [`DataFrame`] row by row against a fixed schema.
///
/// Used by dataset generators and the CSV reader: declare the schema first,
/// then push rows of [`Cell`]s. Categorical dictionaries must be declared up
/// front so codes are stable across builds with different row orders.
#[derive(Debug, Clone)]
pub struct DataFrameBuilder {
    schema: Schema,
    /// Per-column accumulated cells.
    cells: Vec<Vec<Cell>>,
    /// Per-column dictionaries (empty for numeric columns).
    dictionaries: Vec<Vec<String>>,
}

impl DataFrameBuilder {
    /// Start a builder for `schema`. `dictionaries[i]` must be non-empty for
    /// every categorical column `i` and empty for numeric columns.
    pub fn new(schema: Schema, dictionaries: Vec<Vec<String>>) -> Result<Self> {
        if dictionaries.len() != schema.len() {
            return Err(FrameError::InvalidArgument(format!(
                "expected {} dictionaries, got {}",
                schema.len(),
                dictionaries.len()
            )));
        }
        for (i, field) in schema.fields().iter().enumerate() {
            let dict_len = dictionaries[i].len();
            match field.kind {
                crate::ColumnKind::Categorical if dict_len == 0 => {
                    return Err(FrameError::InvalidArgument(format!(
                        "categorical column {:?} needs a dictionary",
                        field.name
                    )))
                }
                crate::ColumnKind::Numeric if dict_len != 0 => {
                    return Err(FrameError::InvalidArgument(format!(
                        "numeric column {:?} must not have a dictionary",
                        field.name
                    )))
                }
                _ => {}
            }
        }
        let cells = vec![Vec::new(); schema.len()];
        Ok(DataFrameBuilder { schema, cells, dictionaries })
    }

    /// Append one row. The row length must match the schema and each cell's
    /// kind must match its column.
    pub fn push_row(&mut self, row: &[Cell]) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(FrameError::InvalidArgument(format!(
                "row has {} cells, schema has {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        for (i, &cell) in row.iter().enumerate() {
            let field = self.schema.field(i)?;
            let ok = match (field.kind, cell) {
                (_, Cell::Missing) => true,
                (crate::ColumnKind::Numeric, Cell::Num(_)) => true,
                (crate::ColumnKind::Categorical, Cell::Cat(code)) => {
                    (code as usize) < self.dictionaries[i].len()
                }
                _ => false,
            };
            if !ok {
                return Err(FrameError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.kind.name(),
                    got: cell.kind_name(),
                });
            }
        }
        for (i, &cell) in row.iter().enumerate() {
            self.cells[i].push(cell);
        }
        Ok(())
    }

    /// Number of rows accumulated so far.
    pub fn nrows(&self) -> usize {
        self.cells.first().map_or(0, Vec::len)
    }

    /// Finish, producing the frame. Fails on zero rows.
    pub fn finish(self) -> Result<DataFrame> {
        if self.nrows() == 0 {
            return Err(FrameError::Empty);
        }
        let mut columns = Vec::with_capacity(self.schema.len());
        let label_name = self.schema.label_index().map(|i| self.schema.fields()[i].name.clone());
        for (i, field) in self.schema.fields().iter().enumerate() {
            columns.push(build_column(field, &self.cells[i], &self.dictionaries[i])?);
        }
        DataFrame::new(columns, label_name.as_deref())
    }

    /// The builder's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }
}

fn build_column(field: &FieldMeta, cells: &[Cell], dict: &[String]) -> Result<Column> {
    match field.kind {
        crate::ColumnKind::Numeric => {
            let values: Vec<Option<f64>> = cells.iter().map(|c| c.as_num()).collect();
            Ok(Column::numeric_opt(field.name.clone(), values))
        }
        crate::ColumnKind::Categorical => {
            let codes: Vec<Option<u32>> = cells.iter().map(|c| c.as_cat()).collect();
            Column::categorical_opt(field.name.clone(), codes, dict.to_vec())
        }
    }
}

/// Convenience: schema + dictionaries for the common "numeric features with a
/// categorical label" case. Errors if the names collide or a dictionary is
/// malformed, same as [`Schema::new`].
pub fn numeric_schema(
    features: &[&str],
    label: &str,
    classes: &[&str],
) -> Result<(Schema, Vec<Vec<String>>)> {
    let mut fields: Vec<FieldMeta> = features.iter().map(|f| FieldMeta::numeric(*f)).collect();
    fields.push(FieldMeta {
        name: label.into(),
        kind: crate::ColumnKind::Categorical,
        role: Role::Label,
    });
    let mut dicts: Vec<Vec<String>> = vec![Vec::new(); features.len()];
    dicts.push(classes.iter().map(|c| c.to_string()).collect());
    Ok((Schema::new(fields)?, dicts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ColumnKind;

    fn builder() -> DataFrameBuilder {
        let schema = Schema::new(vec![
            FieldMeta::numeric("x"),
            FieldMeta::categorical("c"),
            FieldMeta::label("y"),
        ])
        .unwrap();
        let dicts = vec![vec![], vec!["a".into(), "b".into()], vec!["no".into(), "yes".into()]];
        DataFrameBuilder::new(schema, dicts).unwrap()
    }

    #[test]
    fn builds_frame_row_by_row() {
        let mut b = builder();
        b.push_row(&[Cell::Num(1.0), Cell::Cat(0), Cell::Cat(1)]).unwrap();
        b.push_row(&[Cell::Missing, Cell::Cat(1), Cell::Cat(0)]).unwrap();
        assert_eq!(b.nrows(), 2);
        let df = b.finish().unwrap();
        assert_eq!(df.nrows(), 2);
        assert_eq!(df.label_codes().unwrap(), vec![1, 0]);
        assert!(df.get(1, 0).unwrap().is_missing());
        assert_eq!(df.column_by_name("c").unwrap().cardinality(), 2);
    }

    #[test]
    fn wrong_row_length_rejected() {
        let mut b = builder();
        assert!(b.push_row(&[Cell::Num(1.0)]).is_err());
    }

    #[test]
    fn wrong_cell_kind_rejected() {
        let mut b = builder();
        let err = b.push_row(&[Cell::Cat(0), Cell::Cat(0), Cell::Cat(0)]).unwrap_err();
        assert!(matches!(err, FrameError::TypeMismatch { .. }));
    }

    #[test]
    fn out_of_dictionary_code_rejected() {
        let mut b = builder();
        let err = b.push_row(&[Cell::Num(1.0), Cell::Cat(5), Cell::Cat(0)]).unwrap_err();
        assert!(matches!(err, FrameError::TypeMismatch { .. }));
    }

    #[test]
    fn empty_finish_rejected() {
        assert_eq!(builder().finish().unwrap_err(), FrameError::Empty);
    }

    #[test]
    fn dictionary_arity_validated() {
        let schema = Schema::new(vec![FieldMeta::numeric("x")]).unwrap();
        assert!(DataFrameBuilder::new(schema.clone(), vec![]).is_err());
        assert!(DataFrameBuilder::new(schema, vec![vec!["oops".into()]]).is_err());
        let cat_schema = Schema::new(vec![FieldMeta::categorical("c")]).unwrap();
        assert!(DataFrameBuilder::new(cat_schema, vec![vec![]]).is_err());
    }

    #[test]
    fn numeric_schema_helper() {
        let (schema, dicts) = numeric_schema(&["f1", "f2"], "y", &["neg", "pos"]).unwrap();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.label_index(), Some(2));
        assert_eq!(schema.fields()[0].kind, ColumnKind::Numeric);
        assert_eq!(dicts[2], vec!["neg".to_string(), "pos".to_string()]);
    }
}
