//! Minimal CSV reader/writer with schema inference.
//!
//! Supports the subset of RFC 4180 the datasets need: comma separation,
//! double-quote quoting with `""` escapes, a header row, and empty fields as
//! missing values. Column kinds are inferred: a column whose every non-empty
//! field parses as `f64` is numeric, otherwise categorical (dictionary built
//! in first-appearance order so round-trips are stable).
//!
//! The reader makes two streaming passes — one to infer column kinds, one
//! to build — and feeds rows straight into segment-sealing
//! [`ColumnBuilder`]s. Peak memory is one record plus one unsealed segment
//! per column (and under a spill budget, sealed segments can already be
//! evicted mid-load), never a materialized copy of the whole file: loading
//! a million-row CSV no longer doubles the frame's footprint.

use crate::{ColumnBuilder, DataFrame, FrameError, Result};
use std::fs;
use std::io::Read;
use std::path::Path;

/// Read a CSV file into a frame. `label` names the label column, if any.
/// The file is scanned twice (infer, then build) so neither pass holds more
/// than one record in memory.
pub fn read_csv(path: impl AsRef<Path>, label: Option<&str>) -> Result<DataFrame> {
    let path = path.as_ref();
    let plan = infer_pass(CharReader::new(fs::File::open(path)?))?;
    build_pass(CharReader::new(fs::File::open(path)?), &plan, label)
}

/// Read CSV text into a frame.
pub fn read_csv_str(text: &str, label: Option<&str>) -> Result<DataFrame> {
    let plan = infer_pass(StrChars::new(text))?;
    build_pass(StrChars::new(text), &plan, label)
}

/// Write a frame to a CSV file.
pub fn write_csv(df: &DataFrame, path: impl AsRef<Path>) -> Result<()> {
    fs::write(path, write_csv_string(df)?)?;
    Ok(())
}

/// Render a frame as CSV text.
pub fn write_csv_string(df: &DataFrame) -> Result<String> {
    let mut out = String::new();
    let header: Vec<String> = df.columns().iter().map(|c| quote_field(c.name())).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in 0..df.nrows() {
        for (c, col) in df.columns().iter().enumerate() {
            if c > 0 {
                out.push(',');
            }
            out.push_str(&quote_field(&col.display(row)?));
        }
        out.push('\n');
    }
    Ok(out)
}

fn quote_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// A pull source of chars, so the record parser can run identically over
/// in-memory text and incrementally decoded files.
trait CharSource {
    fn next_char(&mut self) -> Result<Option<char>>;
    fn peek_char(&mut self) -> Result<Option<char>>;
}

struct StrChars<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> StrChars<'a> {
    fn new(text: &'a str) -> Self {
        StrChars { chars: text.chars().peekable() }
    }
}

impl CharSource for StrChars<'_> {
    fn next_char(&mut self) -> Result<Option<char>> {
        Ok(self.chars.next())
    }

    fn peek_char(&mut self) -> Result<Option<char>> {
        Ok(self.chars.peek().copied())
    }
}

/// Incremental UTF-8 decoder over any byte reader: pulls 64 KiB chunks,
/// carrying partial multi-byte sequences across chunk boundaries.
struct CharReader<R: Read> {
    inner: R,
    /// Undecoded suffix of the previous chunk (an incomplete UTF-8 char).
    tail: Vec<u8>,
    buf: Vec<char>,
    pos: usize,
    eof: bool,
}

impl<R: Read> CharReader<R> {
    fn new(inner: R) -> Self {
        CharReader { inner, tail: Vec::new(), buf: Vec::new(), pos: 0, eof: false }
    }

    fn refill(&mut self) -> Result<()> {
        while self.pos >= self.buf.len() && !self.eof {
            let mut chunk = [0u8; 65536];
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                self.eof = true;
                if !self.tail.is_empty() {
                    return Err(FrameError::Io("invalid UTF-8 at end of CSV input".into()));
                }
                break;
            }
            let mut bytes = std::mem::take(&mut self.tail);
            bytes.extend_from_slice(&chunk[..n]);
            let valid_len = match std::str::from_utf8(&bytes) {
                Ok(_) => bytes.len(),
                Err(e) if e.error_len().is_none() && bytes.len() - e.valid_up_to() < 4 => {
                    // Incomplete trailing char: carry it into the next chunk.
                    e.valid_up_to()
                }
                Err(_) => return Err(FrameError::Io("invalid UTF-8 in CSV input".into())),
            };
            self.tail = bytes.split_off(valid_len);
            match std::str::from_utf8(&bytes) {
                Ok(s) => {
                    self.buf = s.chars().collect();
                    self.pos = 0;
                }
                Err(_) => return Err(FrameError::Io("invalid UTF-8 in CSV input".into())),
            }
        }
        Ok(())
    }
}

impl<R: Read> CharSource for CharReader<R> {
    fn next_char(&mut self) -> Result<Option<char>> {
        self.refill()?;
        let ch = self.buf.get(self.pos).copied();
        if ch.is_some() {
            self.pos += 1;
        }
        Ok(ch)
    }

    fn peek_char(&mut self) -> Result<Option<char>> {
        self.refill()?;
        Ok(self.buf.get(self.pos).copied())
    }
}

/// Streaming RFC-4180-subset record parser: quotes, `""` escapes, CRLF
/// tolerance, and line-accurate errors. Yields one record at a time.
struct RecordStream<S: CharSource> {
    src: S,
    line: usize,
}

impl<S: CharSource> RecordStream<S> {
    fn new(src: S) -> Self {
        RecordStream { src, line: 1 }
    }

    fn next_record(&mut self) -> Result<Option<Vec<String>>> {
        let mut record: Vec<String> = Vec::new();
        let mut field = String::new();
        let mut in_quotes = false;
        while let Some(ch) = self.src.next_char()? {
            if in_quotes {
                match ch {
                    '"' => {
                        if self.src.peek_char()? == Some('"') {
                            self.src.next_char()?;
                            field.push('"');
                        } else {
                            in_quotes = false;
                        }
                    }
                    '\n' => {
                        self.line += 1;
                        field.push('\n');
                    }
                    _ => field.push(ch),
                }
            } else {
                match ch {
                    '"' => {
                        if !field.is_empty() {
                            return Err(FrameError::MalformedCell {
                                line: self.line,
                                column: record.len() + 1,
                                message: "quote inside unquoted field".into(),
                            });
                        }
                        in_quotes = true;
                    }
                    ',' => record.push(std::mem::take(&mut field)),
                    '\r' => {} // tolerate CRLF
                    '\n' => {
                        self.line += 1;
                        record.push(std::mem::take(&mut field));
                        return Ok(Some(record));
                    }
                    _ => field.push(ch),
                }
            }
        }
        if in_quotes {
            return Err(FrameError::Csv {
                line: self.line,
                message: "unterminated quoted field".into(),
            });
        }
        if !field.is_empty() || !record.is_empty() {
            record.push(field);
            return Ok(Some(record));
        }
        Ok(None)
    }
}

/// True when a raw CSV field denotes a missing value: empty (also after
/// trimming whitespace) or one of the common sentinels real datasets use.
/// Case-insensitive, so `NA`, `na`, `NULL`, `NaN` all normalize the same
/// way — a sentinel that survived inference as a categorical value would
/// blind every missing-value detector downstream.
pub fn is_missing_sentinel(field: &str) -> bool {
    let t = field.trim();
    if t.is_empty() {
        return true;
    }
    matches!(
        t.to_ascii_lowercase().as_str(),
        "na" | "n/a" | "null" | "nan" | "none" | "?" | "-" | "missing"
    )
}

/// Outcome of the first pass: header plus per-column kind decisions.
struct InferPlan {
    header: Vec<String>,
    /// Per column: true = numeric (every non-missing field parses as f64,
    /// or the column is entirely missing), false = categorical.
    numeric: Vec<bool>,
}

fn infer_pass<S: CharSource>(src: S) -> Result<InferPlan> {
    let mut records = RecordStream::new(src);
    let Some(header) = records.next_record()? else {
        return Err(FrameError::Empty);
    };
    let ncols = header.len();
    let mut all_numeric = vec![true; ncols];
    let mut any_value = vec![false; ncols];
    let mut nrows = 0usize;
    while let Some(record) = records.next_record()? {
        if record.len() != ncols {
            return Err(FrameError::RaggedRow {
                line: nrows + 2,
                expected: ncols,
                got: record.len(),
            });
        }
        for (c, f) in record.iter().enumerate() {
            if is_missing_sentinel(f) {
                continue;
            }
            any_value[c] = true;
            if all_numeric[c] && f.trim().parse::<f64>().is_err() {
                all_numeric[c] = false;
            }
        }
        nrows += 1;
    }
    if nrows == 0 {
        return Err(FrameError::Empty);
    }
    // An entirely missing column stays numeric & fully missing.
    let numeric = all_numeric.iter().zip(&any_value).map(|(&num, &any)| num || !any).collect();
    Ok(InferPlan { header, numeric })
}

fn build_pass<S: CharSource>(src: S, plan: &InferPlan, label: Option<&str>) -> Result<DataFrame> {
    let mut records = RecordStream::new(src);
    // Header already validated by the infer pass.
    records.next_record()?;
    let ncols = plan.header.len();
    let mut builders: Vec<ColumnBuilder> = plan
        .header
        .iter()
        .zip(&plan.numeric)
        .map(|(name, &numeric)| {
            if numeric {
                ColumnBuilder::numeric(name.clone(), 0)
            } else {
                ColumnBuilder::categorical_open(name.clone(), 0)
            }
        })
        .collect();
    let mut nrows = 0usize;
    while let Some(record) = records.next_record()? {
        if record.len() != ncols {
            return Err(FrameError::RaggedRow {
                line: nrows + 2,
                expected: ncols,
                got: record.len(),
            });
        }
        for (c, f) in record.iter().enumerate() {
            if plan.numeric[c] {
                let value =
                    if is_missing_sentinel(f) { None } else { f.trim().parse::<f64>().ok() };
                builders[c].push_num(value)?;
            } else if is_missing_sentinel(f) {
                builders[c].push_cat(None)?;
            } else {
                builders[c].push_label(f.trim())?;
            }
        }
        nrows += 1;
    }
    let columns = builders.into_iter().map(ColumnBuilder::finish).collect();
    DataFrame::new(columns, label)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "age,job,y\n25.0,tech,no\n40.0,admin,yes\n,tech,no\n";

    #[test]
    fn reads_with_inference() {
        let df = read_csv_str(SAMPLE, Some("y")).unwrap();
        assert_eq!(df.nrows(), 3);
        assert_eq!(df.ncols(), 3);
        assert_eq!(df.column_by_name("age").unwrap().kind(), crate::ColumnKind::Numeric);
        assert_eq!(df.column_by_name("job").unwrap().kind(), crate::ColumnKind::Categorical);
        assert!(df.get(2, 0).unwrap().is_missing());
        assert_eq!(df.label_codes().unwrap(), vec![0, 1, 0]);
    }

    #[test]
    fn roundtrip_preserves_frame() {
        let df = read_csv_str(SAMPLE, Some("y")).unwrap();
        let text = write_csv_string(&df).unwrap();
        let df2 = read_csv_str(&text, Some("y")).unwrap();
        assert_eq!(df, df2);
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let text = "name,y\n\"a,b\",x\n\"say \"\"hi\"\"\",x\n";
        let df = read_csv_str(text, None).unwrap();
        let col = df.column_by_name("name").unwrap();
        assert_eq!(col.display(0).unwrap(), "a,b");
        assert_eq!(col.display(1).unwrap(), "say \"hi\"");
        // Round-trip through the writer.
        let df2 = read_csv_str(&write_csv_string(&df).unwrap(), None).unwrap();
        assert_eq!(df, df2);
    }

    #[test]
    fn crlf_tolerated() {
        let df = read_csv_str("a,y\r\n1.0,x\r\n2.0,z\r\n", None).unwrap();
        assert_eq!(df.nrows(), 2);
        assert_eq!(df.column(0).unwrap().num(1), Some(2.0));
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = read_csv_str("a,b\n1.0\n", None).unwrap_err();
        assert_eq!(err, FrameError::RaggedRow { line: 2, expected: 2, got: 1 });
        assert!(err.to_string().contains("line 2"), "diagnostic must carry the line: {err}");
    }

    #[test]
    fn unterminated_quote_rejected() {
        let err = read_csv_str("a\n\"oops\n", None).unwrap_err();
        assert!(matches!(err, FrameError::Csv { .. }));
    }

    #[test]
    fn quote_inside_unquoted_field_rejected() {
        let err = read_csv_str("a\nab\"c\n", None).unwrap_err();
        assert_eq!(
            err,
            FrameError::MalformedCell {
                line: 2,
                column: 1,
                message: "quote inside unquoted field".into(),
            }
        );
    }

    #[test]
    fn malformed_cell_reports_field_index() {
        // The bad quote sits in the third field of the second data row.
        let err = read_csv_str("a,b,c\n1,2,3\n4,5,6\"7\n", None).unwrap_err();
        assert_eq!(
            err,
            FrameError::MalformedCell {
                line: 3,
                column: 3,
                message: "quote inside unquoted field".into(),
            }
        );
    }

    #[test]
    fn header_only_is_empty() {
        assert!(read_csv_str("a,b\n", None).is_err());
        assert!(read_csv_str("", None).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let df = read_csv_str(SAMPLE, Some("y")).unwrap();
        let dir = std::env::temp_dir().join("comet_frame_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        write_csv(&df, &path).unwrap();
        let df2 = read_csv(&path, Some("y")).unwrap();
        assert_eq!(df, df2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn all_empty_column_is_numeric_missing() {
        let df = read_csv_str("a,b\n,1.0\n,2.0\n", None).unwrap();
        let a = df.column_by_name("a").unwrap();
        assert_eq!(a.kind(), crate::ColumnKind::Numeric);
        assert_eq!(a.missing_count(), 2);
    }

    #[test]
    fn no_trailing_newline() {
        let df = read_csv_str("a\n1.0\n2.0", None).unwrap();
        assert_eq!(df.nrows(), 2);
    }

    #[test]
    fn mixed_column_becomes_categorical() {
        let df = read_csv_str("a\n1.0\nx\n", None).unwrap();
        assert_eq!(df.column(0).unwrap().kind(), crate::ColumnKind::Categorical);
    }

    #[test]
    fn missing_sentinel_matrix() {
        // Every sentinel spelling must normalize to Missing, in both numeric
        // and categorical columns, with or without whitespace padding.
        let missing = [
            "", " ", "\t", "NA", "na", " NA ", "N/A", "n/a", "null", "NULL", "NaN", "nan", "None",
            "?", "-", "missing", " null\t",
        ];
        for s in missing {
            assert!(is_missing_sentinel(s), "{s:?} must be a missing sentinel");
        }
        let values = ["0", "na0", "Nat", "n\\a", "nulls", "--", "x", "7.5", "-1.0"];
        for s in values {
            assert!(!is_missing_sentinel(s), "{s:?} must not be a missing sentinel");
        }
    }

    #[test]
    fn sentinels_parse_as_missing_in_numeric_columns() {
        // The sentinels must not demote the column to categorical, and NaN
        // must arrive as Missing, never as a numeric NaN cell.
        let df = read_csv_str("a,y\n1.5,p\nNA,p\n n/a ,q\nnull,q\nNaN,p\n 2.5 ,q\n", None).unwrap();
        let a = df.column_by_name("a").unwrap();
        assert_eq!(a.kind(), crate::ColumnKind::Numeric);
        assert_eq!(a.missing_count(), 4);
        assert_eq!(a.num(0), Some(1.5));
        assert_eq!(a.num(5), Some(2.5), "whitespace-padded numerics must parse");
        for row in 1..5 {
            assert!(df.get(row, 0).unwrap().is_missing(), "row {row}");
        }
    }

    #[test]
    fn sentinels_parse_as_missing_in_categorical_columns() {
        let df = read_csv_str("job,y\ntech,p\nN/A,p\n admin ,q\nnone,q\ntech,p\n", None).unwrap();
        let job = df.column_by_name("job").unwrap();
        assert_eq!(job.kind(), crate::ColumnKind::Categorical);
        assert_eq!(job.missing_count(), 2);
        // Whitespace-padded values are trimmed into the dictionary.
        assert_eq!(job.categories(), &["tech".to_string(), "admin".to_string()]);
        assert_eq!(job.display(2).unwrap(), "admin");
    }

    #[test]
    fn sentinel_only_column_is_numeric_missing() {
        let df = read_csv_str("a,b\nNA,1.0\nnull,2.0\n ? ,3.0\n", None).unwrap();
        let a = df.column_by_name("a").unwrap();
        assert_eq!(a.kind(), crate::ColumnKind::Numeric);
        assert_eq!(a.missing_count(), 3);
    }

    #[test]
    fn multibyte_utf8_across_chunk_boundaries() {
        // Force the CharReader path (file I/O) with multi-byte chars.
        let mut text = String::from("name,y\n");
        for i in 0..50 {
            text.push_str(&format!("héllo—{i}·ünïcødé,x\n"));
        }
        let dir = std::env::temp_dir().join("comet_frame_csv_utf8_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("utf8.csv");
        std::fs::write(&path, &text).unwrap();
        let from_file = read_csv(&path, None).unwrap();
        let from_str = read_csv_str(&text, None).unwrap();
        assert_eq!(from_file, from_str);
        assert_eq!(from_file.column(0).unwrap().display(0).unwrap(), "héllo—0·ünïcødé");
        std::fs::remove_file(path).ok();
    }
}
