//! Minimal CSV reader/writer with schema inference.
//!
//! Supports the subset of RFC 4180 the datasets need: comma separation,
//! double-quote quoting with `""` escapes, a header row, and empty fields as
//! missing values. Column kinds are inferred: a column whose every non-empty
//! field parses as `f64` is numeric, otherwise categorical (dictionary built
//! in first-appearance order so round-trips are stable).

use crate::{Column, DataFrame, FrameError, Result};
use std::fs;
use std::path::Path;

/// Read a CSV file into a frame. `label` names the label column, if any.
pub fn read_csv(path: impl AsRef<Path>, label: Option<&str>) -> Result<DataFrame> {
    let text = fs::read_to_string(path)?;
    read_csv_str(&text, label)
}

/// Read CSV text into a frame.
pub fn read_csv_str(text: &str, label: Option<&str>) -> Result<DataFrame> {
    let mut records = parse_records(text)?;
    if records.is_empty() {
        return Err(FrameError::Empty);
    }
    let header = records.remove(0);
    if records.is_empty() {
        return Err(FrameError::Empty);
    }
    let ncols = header.len();
    for (i, rec) in records.iter().enumerate() {
        if rec.len() != ncols {
            return Err(FrameError::RaggedRow { line: i + 2, expected: ncols, got: rec.len() });
        }
    }

    let mut columns = Vec::with_capacity(ncols);
    for (c, name) in header.iter().enumerate() {
        let fields: Vec<&str> = records.iter().map(|r| r[c].as_str()).collect();
        columns.push(infer_column(name, &fields)?);
    }
    DataFrame::new(columns, label)
}

/// Write a frame to a CSV file.
pub fn write_csv(df: &DataFrame, path: impl AsRef<Path>) -> Result<()> {
    fs::write(path, write_csv_string(df)?)?;
    Ok(())
}

/// Render a frame as CSV text.
pub fn write_csv_string(df: &DataFrame) -> Result<String> {
    let mut out = String::new();
    let header: Vec<String> = df.columns().iter().map(|c| quote_field(c.name())).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in 0..df.nrows() {
        for (c, col) in df.columns().iter().enumerate() {
            if c > 0 {
                out.push(',');
            }
            out.push_str(&quote_field(&col.display(row)?));
        }
        out.push('\n');
    }
    Ok(out)
}

fn quote_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Split CSV text into records of unquoted fields.
fn parse_records(text: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut chars = text.chars().peekable();

    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push('\n');
                }
                _ => field.push(ch),
            }
        } else {
            match ch {
                '"' => {
                    if !field.is_empty() {
                        return Err(FrameError::MalformedCell {
                            line,
                            column: record.len() + 1,
                            message: "quote inside unquoted field".into(),
                        });
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {} // tolerate CRLF
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(ch),
            }
        }
    }
    if in_quotes {
        return Err(FrameError::Csv { line, message: "unterminated quoted field".into() });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// True when a raw CSV field denotes a missing value: empty (also after
/// trimming whitespace) or one of the common sentinels real datasets use.
/// Case-insensitive, so `NA`, `na`, `NULL`, `NaN` all normalize the same
/// way — a sentinel that survived inference as a categorical value would
/// blind every missing-value detector downstream.
pub fn is_missing_sentinel(field: &str) -> bool {
    let t = field.trim();
    if t.is_empty() {
        return true;
    }
    matches!(
        t.to_ascii_lowercase().as_str(),
        "na" | "n/a" | "null" | "nan" | "none" | "?" | "-" | "missing"
    )
}

/// Infer a typed column from string fields. Fields are trimmed and
/// missing-value sentinels (see [`is_missing_sentinel`]) parse as Missing.
fn infer_column(name: &str, fields: &[&str]) -> Result<Column> {
    let all_numeric =
        fields.iter().filter(|f| !is_missing_sentinel(f)).all(|f| f.trim().parse::<f64>().is_ok());
    let any_value = fields.iter().any(|f| !is_missing_sentinel(f));

    if all_numeric && any_value {
        let values: Vec<Option<f64>> = fields
            .iter()
            .map(|f| if is_missing_sentinel(f) { None } else { f.trim().parse::<f64>().ok() })
            .collect();
        Ok(Column::numeric_opt(name, values))
    } else {
        let mut dict: Vec<String> = Vec::new();
        let mut codes: Vec<Option<u32>> = Vec::with_capacity(fields.len());
        for f in fields {
            if is_missing_sentinel(f) {
                codes.push(None);
                continue;
            }
            let f = f.trim();
            let code = match dict.iter().position(|d| d == f) {
                Some(i) => i as u32,
                None => {
                    dict.push(f.to_string());
                    (dict.len() - 1) as u32
                }
            };
            codes.push(Some(code));
        }
        if dict.is_empty() {
            // Entirely empty column: keep it numeric & fully missing.
            return Ok(Column::numeric_opt(name, vec![None; fields.len()]));
        }
        Column::categorical_opt(name, codes, dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "age,job,y\n25.0,tech,no\n40.0,admin,yes\n,tech,no\n";

    #[test]
    fn reads_with_inference() {
        let df = read_csv_str(SAMPLE, Some("y")).unwrap();
        assert_eq!(df.nrows(), 3);
        assert_eq!(df.ncols(), 3);
        assert_eq!(df.column_by_name("age").unwrap().kind(), crate::ColumnKind::Numeric);
        assert_eq!(df.column_by_name("job").unwrap().kind(), crate::ColumnKind::Categorical);
        assert!(df.get(2, 0).unwrap().is_missing());
        assert_eq!(df.label_codes().unwrap(), vec![0, 1, 0]);
    }

    #[test]
    fn roundtrip_preserves_frame() {
        let df = read_csv_str(SAMPLE, Some("y")).unwrap();
        let text = write_csv_string(&df).unwrap();
        let df2 = read_csv_str(&text, Some("y")).unwrap();
        assert_eq!(df, df2);
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let text = "name,y\n\"a,b\",x\n\"say \"\"hi\"\"\",x\n";
        let df = read_csv_str(text, None).unwrap();
        let col = df.column_by_name("name").unwrap();
        assert_eq!(col.display(0).unwrap(), "a,b");
        assert_eq!(col.display(1).unwrap(), "say \"hi\"");
        // Round-trip through the writer.
        let df2 = read_csv_str(&write_csv_string(&df).unwrap(), None).unwrap();
        assert_eq!(df, df2);
    }

    #[test]
    fn crlf_tolerated() {
        let df = read_csv_str("a,y\r\n1.0,x\r\n2.0,z\r\n", None).unwrap();
        assert_eq!(df.nrows(), 2);
        assert_eq!(df.column(0).unwrap().num(1), Some(2.0));
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = read_csv_str("a,b\n1.0\n", None).unwrap_err();
        assert_eq!(err, FrameError::RaggedRow { line: 2, expected: 2, got: 1 });
        assert!(err.to_string().contains("line 2"), "diagnostic must carry the line: {err}");
    }

    #[test]
    fn unterminated_quote_rejected() {
        let err = read_csv_str("a\n\"oops\n", None).unwrap_err();
        assert!(matches!(err, FrameError::Csv { .. }));
    }

    #[test]
    fn quote_inside_unquoted_field_rejected() {
        let err = read_csv_str("a\nab\"c\n", None).unwrap_err();
        assert_eq!(
            err,
            FrameError::MalformedCell {
                line: 2,
                column: 1,
                message: "quote inside unquoted field".into(),
            }
        );
    }

    #[test]
    fn malformed_cell_reports_field_index() {
        // The bad quote sits in the third field of the second data row.
        let err = read_csv_str("a,b,c\n1,2,3\n4,5,6\"7\n", None).unwrap_err();
        assert_eq!(
            err,
            FrameError::MalformedCell {
                line: 3,
                column: 3,
                message: "quote inside unquoted field".into(),
            }
        );
    }

    #[test]
    fn header_only_is_empty() {
        assert!(read_csv_str("a,b\n", None).is_err());
        assert!(read_csv_str("", None).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let df = read_csv_str(SAMPLE, Some("y")).unwrap();
        let dir = std::env::temp_dir().join("comet_frame_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        write_csv(&df, &path).unwrap();
        let df2 = read_csv(&path, Some("y")).unwrap();
        assert_eq!(df, df2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn all_empty_column_is_numeric_missing() {
        let df = read_csv_str("a,b\n,1.0\n,2.0\n", None).unwrap();
        let a = df.column_by_name("a").unwrap();
        assert_eq!(a.kind(), crate::ColumnKind::Numeric);
        assert_eq!(a.missing_count(), 2);
    }

    #[test]
    fn no_trailing_newline() {
        let df = read_csv_str("a\n1.0\n2.0", None).unwrap();
        assert_eq!(df.nrows(), 2);
    }

    #[test]
    fn mixed_column_becomes_categorical() {
        let df = read_csv_str("a\n1.0\nx\n", None).unwrap();
        assert_eq!(df.column(0).unwrap().kind(), crate::ColumnKind::Categorical);
    }

    #[test]
    fn missing_sentinel_matrix() {
        // Every sentinel spelling must normalize to Missing, in both numeric
        // and categorical columns, with or without whitespace padding.
        let missing = [
            "", " ", "\t", "NA", "na", " NA ", "N/A", "n/a", "null", "NULL", "NaN", "nan", "None",
            "?", "-", "missing", " null\t",
        ];
        for s in missing {
            assert!(is_missing_sentinel(s), "{s:?} must be a missing sentinel");
        }
        let values = ["0", "na0", "Nat", "n\\a", "nulls", "--", "x", "7.5", "-1.0"];
        for s in values {
            assert!(!is_missing_sentinel(s), "{s:?} must not be a missing sentinel");
        }
    }

    #[test]
    fn sentinels_parse_as_missing_in_numeric_columns() {
        // The sentinels must not demote the column to categorical, and NaN
        // must arrive as Missing, never as a numeric NaN cell.
        let df = read_csv_str("a,y\n1.5,p\nNA,p\n n/a ,q\nnull,q\nNaN,p\n 2.5 ,q\n", None).unwrap();
        let a = df.column_by_name("a").unwrap();
        assert_eq!(a.kind(), crate::ColumnKind::Numeric);
        assert_eq!(a.missing_count(), 4);
        assert_eq!(a.num(0), Some(1.5));
        assert_eq!(a.num(5), Some(2.5), "whitespace-padded numerics must parse");
        for row in 1..5 {
            assert!(df.get(row, 0).unwrap().is_missing(), "row {row}");
        }
    }

    #[test]
    fn sentinels_parse_as_missing_in_categorical_columns() {
        let df = read_csv_str("job,y\ntech,p\nN/A,p\n admin ,q\nnone,q\ntech,p\n", None).unwrap();
        let job = df.column_by_name("job").unwrap();
        assert_eq!(job.kind(), crate::ColumnKind::Categorical);
        assert_eq!(job.missing_count(), 2);
        // Whitespace-padded values are trimmed into the dictionary.
        assert_eq!(job.categories(), &["tech".to_string(), "admin".to_string()]);
        assert_eq!(job.display(2).unwrap(), "admin");
    }

    #[test]
    fn sentinel_only_column_is_numeric_missing() {
        let df = read_csv_str("a,b\nNA,1.0\nnull,2.0\n ? ,3.0\n", None).unwrap();
        let a = df.column_by_name("a").unwrap();
        assert_eq!(a.kind(), crate::ColumnKind::Numeric);
        assert_eq!(a.missing_count(), 3);
    }
}
