//! Relational-style frame operations: filter, project, stack, sample.

use crate::{Cell, Column, DataFrame, FrameError, Result};
use rand::Rng;

impl DataFrame {
    /// Keep only the rows for which `predicate(row)` is true.
    pub fn filter<P: FnMut(usize) -> bool>(&self, mut predicate: P) -> Result<DataFrame> {
        let rows: Vec<usize> = (0..self.nrows()).filter(|&r| predicate(r)).collect();
        if rows.is_empty() {
            return Err(FrameError::Empty);
        }
        self.take(&rows)
    }

    /// First `n` rows (clamped to the frame size).
    pub fn head(&self, n: usize) -> Result<DataFrame> {
        let rows: Vec<usize> = (0..n.min(self.nrows())).collect();
        if rows.is_empty() {
            return Err(FrameError::Empty);
        }
        self.take(&rows)
    }

    /// Uniform random sample of `n` distinct rows, in original order.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Result<DataFrame> {
        let total = self.nrows();
        let n = n.min(total);
        if n == 0 {
            return Err(FrameError::Empty);
        }
        let mut idx: Vec<usize> = (0..total).collect();
        for i in 0..n {
            let j = rng.gen_range(i..total);
            idx.swap(i, j);
        }
        idx.truncate(n);
        idx.sort_unstable();
        self.take(&idx)
    }

    /// Project to the named columns (the label column, if present in the
    /// frame but not in `names`, is dropped too — pass it explicitly to
    /// keep it).
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        if names.is_empty() {
            return Err(FrameError::Empty);
        }
        let mut columns = Vec::with_capacity(names.len());
        let mut label = None;
        for &name in names {
            let idx = self.schema().index_of(name)?;
            if self.label_index().ok() == Some(idx) {
                label = Some(name);
            }
            columns.push(self.column(idx)?.clone());
        }
        DataFrame::new(columns, label)
    }

    /// Vertically stack another frame with an identical schema (categorical
    /// dictionaries must match exactly so codes stay meaningful).
    pub fn vstack(&self, other: &DataFrame) -> Result<DataFrame> {
        if self.schema() != other.schema() {
            return Err(FrameError::InvalidArgument("schema mismatch in vstack".into()));
        }
        let mut columns = Vec::with_capacity(self.ncols());
        for (a, b) in self.columns().iter().zip(other.columns()) {
            if a.categories() != b.categories() {
                return Err(FrameError::InvalidArgument(format!(
                    "dictionary mismatch in column {:?}",
                    a.name()
                )));
            }
            columns.push(concat_columns(a, b)?);
        }
        let label_name = self.label_index().ok().map(|i| self.schema().fields()[i].name.clone());
        DataFrame::new(columns, label_name.as_deref())
    }

    /// Per-category counts of a categorical column, `(category name, count)`
    /// sorted by descending count (ties by dictionary order). Missing cells
    /// are not counted.
    pub fn value_counts(&self, name: &str) -> Result<Vec<(String, usize)>> {
        let col = self.column_by_name(name)?;
        match col.summary() {
            crate::ColumnSummary::Categorical { counts, .. } => {
                let mut out: Vec<(String, usize)> =
                    col.categories().iter().cloned().zip(counts).collect();
                out.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
                Ok(out)
            }
            _ => Err(FrameError::TypeMismatch {
                column: name.to_string(),
                expected: "categorical",
                got: "numeric",
            }),
        }
    }

    /// Apply a function to every valid numeric cell of a column, in place.
    pub fn map_numeric<F: FnMut(f64) -> f64>(&mut self, name: &str, mut f: F) -> Result<()> {
        let idx = self.schema().index_of(name)?;
        if self.label_index().ok() == Some(idx) {
            return Err(FrameError::InvalidArgument("cannot map the label column".into()));
        }
        let nrows = self.nrows();
        let col = self.column_mut(idx)?;
        for row in 0..nrows {
            if let Cell::Num(v) = col.get(row)? {
                col.set(row, Cell::Num(f(v)))?;
            }
        }
        Ok(())
    }
}

fn concat_columns(a: &Column, b: &Column) -> Result<Column> {
    let rows_a: Vec<usize> = (0..a.len()).collect();
    // Build via take + manual append using the cell API.
    let out = a.take(&rows_a)?;
    // Grow by taking b's cells one at a time (simple and type-safe).
    let b_cells: Vec<Cell> = (0..b.len()).map(|r| b.get(r)).collect::<Result<_>>()?;
    extend_column(out, &b_cells)
}

/// Append cells to a column by rebuilding its storage.
fn extend_column(col: Column, cells: &[Cell]) -> Result<Column> {
    use crate::ColumnKind;
    let name = col.name().to_string();
    match col.kind() {
        ColumnKind::Numeric => {
            let mut values: Vec<Option<f64>> = (0..col.len())
                .map(|r| match col.get(r) {
                    Ok(Cell::Num(v)) => Some(v),
                    _ => None,
                })
                .collect();
            for cell in cells {
                values.push(cell.as_num());
            }
            Ok(Column::numeric_opt(name, values))
        }
        ColumnKind::Categorical => {
            let mut codes: Vec<Option<u32>> =
                (0..col.len()).map(|r| col.get(r).ok().and_then(|c| c.as_cat())).collect();
            for cell in cells {
                codes.push(cell.as_cat());
            }
            Column::categorical_opt(name, codes, col.categories().to_vec())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame() -> DataFrame {
        let x = Column::numeric("x", (0..10).map(|i| i as f64).collect());
        let c = Column::categorical(
            "c",
            vec![0, 1, 0, 1, 2, 0, 1, 2, 0, 0],
            vec!["a".into(), "b".into(), "d".into()],
        )
        .unwrap();
        let y = Column::categorical(
            "y",
            (0..10).map(|i| (i % 2) as u32).collect(),
            vec!["n".into(), "p".into()],
        )
        .unwrap();
        DataFrame::new(vec![x, c, y], Some("y")).unwrap()
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let df = frame();
        let even = df.filter(|r| r % 2 == 0).unwrap();
        assert_eq!(even.nrows(), 5);
        assert_eq!(even.column(0).unwrap().num(1), Some(2.0));
        assert!(df.filter(|_| false).is_err());
    }

    #[test]
    fn head_and_sample() {
        let df = frame();
        assert_eq!(df.head(3).unwrap().nrows(), 3);
        assert_eq!(df.head(99).unwrap().nrows(), 10);
        let mut rng = StdRng::seed_from_u64(0);
        let s = df.sample(4, &mut rng).unwrap();
        assert_eq!(s.nrows(), 4);
        // Sampled rows preserve original relative order (sorted indices).
        let vals: Vec<f64> = (0..4).map(|r| s.column(0).unwrap().num(r).unwrap()).collect();
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, sorted);
    }

    #[test]
    fn select_projects_columns() {
        let df = frame();
        let proj = df.select(&["x", "y"]).unwrap();
        assert_eq!(proj.ncols(), 2);
        assert_eq!(proj.label_index().unwrap(), 1);
        let no_label = df.select(&["x"]).unwrap();
        assert!(no_label.label_index().is_err());
        assert!(df.select(&["nope"]).is_err());
        assert!(df.select(&[]).is_err());
    }

    #[test]
    fn vstack_concatenates() {
        let df = frame();
        let stacked = df.vstack(&df).unwrap();
        assert_eq!(stacked.nrows(), 20);
        assert_eq!(stacked.column(0).unwrap().num(10), Some(0.0));
        assert_eq!(stacked.label_codes().unwrap().len(), 20);
        // Missing values survive stacking.
        let mut with_missing = frame();
        with_missing.set(0, 0, Cell::Missing).unwrap();
        let stacked = with_missing.vstack(&df).unwrap();
        assert!(stacked.get(0, 0).unwrap().is_missing());
        assert_eq!(stacked.get(10, 0).unwrap(), Cell::Num(0.0));
    }

    #[test]
    fn vstack_rejects_schema_mismatch() {
        let df = frame();
        let other = df.select(&["x", "y"]).unwrap();
        assert!(df.vstack(&other).is_err());
    }

    #[test]
    fn value_counts_sorted() {
        let df = frame();
        let counts = df.value_counts("c").unwrap();
        assert_eq!(counts[0], ("a".to_string(), 5));
        assert_eq!(counts[1], ("b".to_string(), 3));
        assert_eq!(counts[2], ("d".to_string(), 2));
        assert!(df.value_counts("x").is_err());
    }

    #[test]
    fn map_numeric_transforms_valid_cells() {
        let mut df = frame();
        df.set(0, 0, Cell::Missing).unwrap();
        df.map_numeric("x", |v| v * 10.0).unwrap();
        assert!(df.get(0, 0).unwrap().is_missing(), "missing stays missing");
        assert_eq!(df.get(1, 0).unwrap(), Cell::Num(10.0));
        assert!(df.map_numeric("y", |v| v).is_err(), "label is protected");
        assert!(df.map_numeric("zz", |v| v).is_err());
    }
}
