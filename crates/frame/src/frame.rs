//! The column-major [`DataFrame`].

use crate::{Cell, Column, ColumnKind, FieldMeta, FrameError, Result, Role, Schema};

/// A typed, column-major data frame with at most one label column.
///
/// Every COMET mutation is column-local, so the frame hands out owned column
/// snapshots ([`DataFrame::column`] + [`DataFrame::replace_column`]) for the
/// Recommender's save/revert cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct DataFrame {
    schema: Schema,
    columns: Vec<Column>,
    nrows: usize,
}

impl DataFrame {
    /// Build a frame from columns. Roles/kinds are derived from the columns
    /// plus the `label` name (if provided).
    pub fn new(columns: Vec<Column>, label: Option<&str>) -> Result<Self> {
        if columns.is_empty() {
            return Err(FrameError::Empty);
        }
        let nrows = columns[0].len();
        let mut fields = Vec::with_capacity(columns.len());
        for col in &columns {
            if col.len() != nrows {
                return Err(FrameError::LengthMismatch {
                    expected: nrows,
                    got: col.len(),
                    column: col.name().to_string(),
                });
            }
            let role = match label {
                Some(l) if l == col.name() => Role::Label,
                _ => Role::Feature,
            };
            fields.push(FieldMeta { name: col.name().to_string(), kind: col.kind(), role });
        }
        if let Some(l) = label {
            if !fields.iter().any(|f| f.role == Role::Label) {
                return Err(FrameError::UnknownColumn(l.to_string()));
            }
        }
        let schema = Schema::new(fields)?;
        Ok(DataFrame { schema, columns, nrows })
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (features + label).
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> Result<&Column> {
        self.columns
            .get(idx)
            .ok_or(FrameError::ColumnOutOfBounds { col: idx, ncols: self.columns.len() })
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        self.column(idx)
    }

    /// Mutable column by index.
    pub fn column_mut(&mut self, idx: usize) -> Result<&mut Column> {
        let ncols = self.columns.len();
        self.columns.get_mut(idx).ok_or(FrameError::ColumnOutOfBounds { col: idx, ncols })
    }

    /// All columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Replace column `idx` wholesale (the revert operation). The new column
    /// must match name, kind, and length.
    pub fn replace_column(&mut self, idx: usize, column: Column) -> Result<()> {
        let current = self.column(idx)?;
        if current.name() != column.name() {
            return Err(FrameError::UnknownColumn(column.name().to_string()));
        }
        if current.kind() != column.kind() {
            return Err(FrameError::TypeMismatch {
                column: column.name().to_string(),
                expected: current.kind().name(),
                got: column.kind().name(),
            });
        }
        if column.len() != self.nrows {
            return Err(FrameError::LengthMismatch {
                expected: self.nrows,
                got: column.len(),
                column: column.name().to_string(),
            });
        }
        self.columns[idx] = column;
        Ok(())
    }

    /// Cell read.
    pub fn get(&self, row: usize, col: usize) -> Result<Cell> {
        self.column(col)?.get(row)
    }

    /// Cell write.
    pub fn set(&mut self, row: usize, col: usize, cell: Cell) -> Result<()> {
        self.column_mut(col)?.set(row, cell)
    }

    /// The label column.
    pub fn label(&self) -> Result<&Column> {
        let idx = self.schema.label_index().ok_or(FrameError::NoLabel)?;
        self.column(idx)
    }

    /// Index of the label column.
    pub fn label_index(&self) -> Result<usize> {
        self.schema.label_index().ok_or(FrameError::NoLabel)
    }

    /// Label codes for every row. Errors if any label is missing — the paper
    /// never pollutes labels, so missing labels indicate a bug upstream.
    pub fn label_codes(&self) -> Result<Vec<u32>> {
        let label = self.label()?;
        let mut out = Vec::with_capacity(self.nrows);
        for row in 0..self.nrows {
            match label.get(row)? {
                Cell::Cat(code) => out.push(code),
                Cell::Num(v) => out.push(v as u32),
                Cell::Missing => {
                    return Err(FrameError::InvalidArgument(format!("label missing in row {row}")))
                }
            }
        }
        Ok(out)
    }

    /// Number of label classes.
    pub fn n_classes(&self) -> Result<usize> {
        let label = self.label()?;
        match label.kind() {
            ColumnKind::Categorical => Ok(label.cardinality()),
            ColumnKind::Numeric => {
                let codes = self.label_codes()?;
                Ok(codes.iter().copied().max().map_or(0, |m| m as usize + 1))
            }
        }
    }

    /// Indices of feature columns.
    pub fn feature_indices(&self) -> Vec<usize> {
        self.schema.feature_indices()
    }

    /// New frame with only the given rows (order-preserving, duplicates OK).
    pub fn take(&self, rows: &[usize]) -> Result<DataFrame> {
        let mut columns = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            columns.push(col.take(rows)?);
        }
        Ok(DataFrame { schema: self.schema.clone(), columns, nrows: rows.len() })
    }

    /// Rebuild every column with segments of `seg_rows` rows (0 = one
    /// whole-column segment). Content, fingerprints, and traces are
    /// invariant under resegmentation; only memory locality and spill
    /// granularity change. O(1) per column whose size already matches.
    pub fn resegment(&self, seg_rows: usize) -> Result<DataFrame> {
        let mut columns = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            columns.push(col.resegment(seg_rows)?);
        }
        Ok(DataFrame { schema: self.schema.clone(), columns, nrows: self.nrows })
    }

    /// Total number of missing cells across feature columns.
    pub fn missing_cells(&self) -> usize {
        self.feature_indices().into_iter().map(|i| self.columns[i].missing_count()).sum()
    }

    /// Count cells in feature column `col` that differ from the same column
    /// in `reference` (used to measure residual dirt against ground truth).
    pub fn diff_count(&self, reference: &DataFrame, col: usize) -> Result<usize> {
        let a = self.column(col)?;
        let b = reference.column(col)?;
        if a.len() != b.len() {
            return Err(FrameError::LengthMismatch {
                expected: b.len(),
                got: a.len(),
                column: a.name().to_string(),
            });
        }
        let mut count = 0;
        for row in 0..a.len() {
            if !cells_equal(a.get(row)?, b.get(row)?) {
                count += 1;
            }
        }
        Ok(count)
    }
}

/// Float-tolerant cell equality (1e-12 relative tolerance), used to decide
/// whether a cell is "dirty" relative to ground truth.
pub(crate) fn cells_equal(a: Cell, b: Cell) -> bool {
    match (a, b) {
        (Cell::Missing, Cell::Missing) => true,
        (Cell::Num(x), Cell::Num(y)) => {
            // comet-lint: allow(D2) — tolerance scale over abs values; NaN cells compare unequal earlier
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-12 * scale
        }
        (Cell::Cat(x), Cell::Cat(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        let age = Column::numeric("age", vec![25.0, 40.0, 31.0, 58.0]);
        let job = Column::categorical("job", vec![0, 1, 0, 1], vec!["tech".into(), "admin".into()])
            .unwrap();
        let label =
            Column::categorical("y", vec![0, 1, 1, 0], vec!["no".into(), "yes".into()]).unwrap();
        DataFrame::new(vec![age, job, label], Some("y")).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let df = sample();
        assert_eq!(df.nrows(), 4);
        assert_eq!(df.ncols(), 3);
        assert_eq!(df.label_index().unwrap(), 2);
        assert_eq!(df.feature_indices(), vec![0, 1]);
        assert_eq!(df.n_classes().unwrap(), 2);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let a = Column::numeric("a", vec![1.0]);
        let b = Column::numeric("b", vec![1.0, 2.0]);
        assert!(matches!(
            DataFrame::new(vec![a, b], None).unwrap_err(),
            FrameError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn unknown_label_rejected() {
        let a = Column::numeric("a", vec![1.0]);
        assert!(DataFrame::new(vec![a], Some("nope")).is_err());
    }

    #[test]
    fn empty_frame_rejected() {
        assert_eq!(DataFrame::new(vec![], None).unwrap_err(), FrameError::Empty);
    }

    #[test]
    fn cell_read_write() {
        let mut df = sample();
        df.set(0, 0, Cell::Num(99.0)).unwrap();
        assert_eq!(df.get(0, 0).unwrap(), Cell::Num(99.0));
        assert!(df.get(0, 9).is_err());
    }

    #[test]
    fn replace_column_enforces_compatibility() {
        let mut df = sample();
        let snapshot = df.column(0).unwrap().clone();
        df.set(0, 0, Cell::Missing).unwrap();
        assert_eq!(df.missing_cells(), 1);
        df.replace_column(0, snapshot).unwrap();
        assert_eq!(df.missing_cells(), 0);
        assert_eq!(df.get(0, 0).unwrap(), Cell::Num(25.0));

        let wrong_name = Column::numeric("other", vec![0.0; 4]);
        assert!(df.replace_column(0, wrong_name).is_err());
        let wrong_len = Column::numeric("age", vec![0.0; 3]);
        assert!(df.replace_column(0, wrong_len).is_err());
        let wrong_kind = Column::categorical("age", vec![0; 4], vec!["x".into()]).unwrap();
        assert!(df.replace_column(0, wrong_kind).is_err());
    }

    #[test]
    fn label_codes_and_missing_label_error() {
        let mut df = sample();
        assert_eq!(df.label_codes().unwrap(), vec![0, 1, 1, 0]);
        df.set(2, 2, Cell::Missing).unwrap();
        assert!(df.label_codes().is_err());
    }

    #[test]
    fn take_subsets_rows() {
        let df = sample();
        let sub = df.take(&[3, 0]).unwrap();
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.get(0, 0).unwrap(), Cell::Num(58.0));
        assert_eq!(sub.label_codes().unwrap(), vec![0, 0]);
        assert_eq!(sub.schema(), df.schema());
    }

    #[test]
    fn diff_count_measures_dirt() {
        let clean = sample();
        let mut dirty = clean.clone();
        dirty.set(0, 0, Cell::Num(-1.0)).unwrap();
        dirty.set(1, 0, Cell::Missing).unwrap();
        assert_eq!(dirty.diff_count(&clean, 0).unwrap(), 2);
        assert_eq!(dirty.diff_count(&clean, 1).unwrap(), 0);
    }

    #[test]
    fn cells_equal_tolerance() {
        assert!(cells_equal(Cell::Num(1.0), Cell::Num(1.0 + 1e-15)));
        assert!(!cells_equal(Cell::Num(1.0), Cell::Num(1.1)));
        assert!(!cells_equal(Cell::Num(1.0), Cell::Missing));
        assert!(cells_equal(Cell::Missing, Cell::Missing));
        assert!(!cells_equal(Cell::Cat(0), Cell::Cat(1)));
    }

    #[test]
    fn numeric_label_codes() {
        let x = Column::numeric("x", vec![0.5, 1.5]);
        let y = Column::numeric("y", vec![0.0, 1.0]);
        let df = DataFrame::new(vec![x, y], Some("y")).unwrap();
        assert_eq!(df.label_codes().unwrap(), vec![0, 1]);
        assert_eq!(df.n_classes().unwrap(), 2);
    }
}
