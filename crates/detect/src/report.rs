//! Detection output: flagged cells and their derived candidate pairs.

use crate::config::DetectorKind;
use comet_jenga::ErrorType;
use std::collections::BTreeMap;

/// One flagged cell: a detector's claim that `(col, row)` is dirty,
/// attributed to an error family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Flag {
    /// Column index in the scanned frame.
    pub col: usize,
    /// Row index in the scanned frame.
    pub row: usize,
    /// Which detector raised the flag.
    pub detector: DetectorKind,
    /// The error family the detector attributes the dirt to (a hint, not
    /// ground truth — see the crate docs).
    pub family: ErrorType,
}

/// The full flag set of one detection pass over one frame.
///
/// Flags are kept sorted by `(col, row, detector, family)`; since
/// [`DetectorKind`]'s declaration order is the attribution priority order,
/// the first flag per cell is the winning attribution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DetectionReport {
    flags: Vec<Flag>,
}

impl DetectionReport {
    /// Build a report from raw flags (sorted and exact-deduplicated).
    pub fn new(mut flags: Vec<Flag>) -> Self {
        flags.sort_unstable();
        flags.dedup();
        DetectionReport { flags }
    }

    /// Every flag, sorted.
    pub fn flags(&self) -> &[Flag] {
        &self.flags
    }

    /// Number of flags (a cell flagged by two detectors counts twice).
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// True when nothing was flagged.
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Flagged cells with their winning family attribution
    /// (first detector in priority order wins).
    pub fn cells(&self) -> BTreeMap<(usize, usize), ErrorType> {
        let mut out = BTreeMap::new();
        for f in &self.flags {
            out.entry((f.col, f.row)).or_insert(f.family);
        }
        out
    }

    /// Distinct flagged cells regardless of attribution.
    pub fn flagged_cell_count(&self) -> usize {
        self.cells().len()
    }

    /// The `(column, family)` candidate pairs this report seeds a cleaning
    /// session with, sorted and deduplicated.
    pub fn candidate_pairs(&self) -> Vec<(usize, ErrorType)> {
        let mut pairs: Vec<(usize, ErrorType)> =
            self.cells().into_iter().map(|((col, _), family)| (col, family)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Rows of `col` whose winning attribution is `family`, sorted.
    pub fn flagged_rows(&self, col: usize, family: ErrorType) -> Vec<usize> {
        self.cells()
            .into_iter()
            .filter(|((c, _), fam)| *c == col && *fam == family)
            .map(|((_, row), _)| row)
            .collect()
    }

    /// Rows of `col` flagged with *any* attribution, sorted.
    pub fn flagged_rows_any(&self, col: usize) -> Vec<usize> {
        let mut rows: Vec<usize> =
            self.cells().into_keys().filter(|(c, _)| *c == col).map(|(_, row)| row).collect();
        rows.sort_unstable();
        rows.dedup();
        rows
    }

    /// Flags raised by one specific detector (for per-detector scoring).
    pub fn flags_by(&self, detector: DetectorKind) -> impl Iterator<Item = &Flag> {
        self.flags.iter().filter(move |f| f.detector == detector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flag(col: usize, row: usize, detector: DetectorKind, family: ErrorType) -> Flag {
        Flag { col, row, detector, family }
    }

    #[test]
    fn flags_sorted_and_deduped() {
        let report = DetectionReport::new(vec![
            flag(1, 5, DetectorKind::Iqr, ErrorType::Outliers),
            flag(0, 2, DetectorKind::RobustZ, ErrorType::Outliers),
            flag(1, 5, DetectorKind::Iqr, ErrorType::Outliers),
        ]);
        assert_eq!(report.len(), 2);
        assert_eq!(report.flags()[0].col, 0);
        assert!(!report.is_empty());
        assert!(DetectionReport::default().is_empty());
    }

    #[test]
    fn first_detector_in_priority_order_wins_attribution() {
        // Same cell flagged by Domain (Scaling) and RobustZ (Outliers):
        // Domain comes first in DetectorKind::ALL, so Scaling wins.
        let report = DetectionReport::new(vec![
            flag(0, 3, DetectorKind::RobustZ, ErrorType::Outliers),
            flag(0, 3, DetectorKind::Domain, ErrorType::Scaling),
        ]);
        let cells = report.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[&(0, 3)], ErrorType::Scaling);
        assert_eq!(report.flagged_cell_count(), 1);
        assert_eq!(report.len(), 2);
    }

    #[test]
    fn candidate_pairs_collapse_rows() {
        let report = DetectionReport::new(vec![
            flag(0, 1, DetectorKind::RobustZ, ErrorType::Outliers),
            flag(0, 7, DetectorKind::RobustZ, ErrorType::Outliers),
            flag(2, 4, DetectorKind::MissingSentinel, ErrorType::MissingValues),
        ]);
        assert_eq!(
            report.candidate_pairs(),
            vec![(0, ErrorType::Outliers), (2, ErrorType::MissingValues)]
        );
    }

    #[test]
    fn flagged_rows_filters_by_winning_family() {
        let report = DetectionReport::new(vec![
            flag(0, 1, DetectorKind::Domain, ErrorType::Scaling),
            flag(0, 1, DetectorKind::RobustZ, ErrorType::Outliers), // loses to Domain
            flag(0, 5, DetectorKind::RobustZ, ErrorType::Outliers),
        ]);
        assert_eq!(report.flagged_rows(0, ErrorType::Scaling), vec![1]);
        assert_eq!(report.flagged_rows(0, ErrorType::Outliers), vec![5]);
        assert_eq!(report.flagged_rows_any(0), vec![1, 5]);
        assert!(report.flagged_rows(1, ErrorType::Outliers).is_empty());
    }

    #[test]
    fn flags_by_detector() {
        let report = DetectionReport::new(vec![
            flag(0, 1, DetectorKind::Iqr, ErrorType::Outliers),
            flag(0, 2, DetectorKind::RobustZ, ErrorType::Outliers),
        ]);
        assert_eq!(report.flags_by(DetectorKind::Iqr).count(), 1);
        assert_eq!(report.flags_by(DetectorKind::NearDuplicate).count(), 0);
    }
}
