//! COMET error detection: cleaning sessions without a ground-truth oracle.
//!
//! JENGA plants pollution and hands the session a perfect per-cell error
//! map; real traffic arrives dirty with no such oracle. This crate is the
//! replacement candidate source: an ensemble of cheap, fully deterministic
//! detectors (BoostClean's recipe) scans the dirty frames and produces a
//! [`DetectionReport`] — a flagged cell set with a best-effort error-family
//! attribution — that seeds the Polluter's candidate pairs instead of the
//! JENGA tracker.
//!
//! Determinism contract: detection consumes no randomness, no wall clock,
//! and no hash-seeded iteration order (`BTreeMap`/sorted `Vec`s only), so
//! the flag set is bit-identical across re-runs and thread counts — a
//! detection-seeded session stays as replayable as an oracle-seeded one.
//!
//! The detectors, in attribution priority order:
//!
//! | detector | signal | family attributed |
//! |---|---|---|
//! | missing-sentinel | explicitly missing cells | `MissingValues` |
//! | domain | pow-10 ratio to the column median | `Scaling` |
//! | domain | value inside a *sibling* column's bulk range | `SwappedFields` |
//! | robust-z | median/MAD z-score beyond `z_threshold` | `Outliers` |
//! | iqr | outside `k·IQR` fences | `Outliers` |
//! | near-duplicate | banded row fingerprints + verification | `NearDuplicateRows` |
//! | label-disagreement | kNN label-majority disagreement | `LabelNoise` |
//!
//! Attribution is *noisy by design* — a swapped field can land inside the
//! robust-z fence, a scaled value trips the IQR fence first when the median
//! is near zero. Downstream consumers must treat the family as a hint, not
//! an oracle; `comet-core`'s detect-mode Cleaner does exactly that.
//! Against planted ground truth (a JENGA [`Provenance`]), [`score_detectors`]
//! reports per-detector precision/recall through the NaN-guarded metrics in
//! `comet-ml`.
//!
//! [`Provenance`]: comet_jenga::Provenance

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod config;
mod detectors;
mod report;
mod score;

pub use config::{DetectorConfig, DetectorKind, DetectorSet};
pub use detectors::detect;
pub use report::{DetectionReport, Flag};
pub use score::{false_positive_cells, score_detectors, DetectorScore};
