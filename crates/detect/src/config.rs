//! Detector ensemble configuration.
//!
//! [`DetectorConfig`] is `Copy` and `Debug`-stable on purpose: it embeds in
//! `CometConfig`, rides the session's config fingerprint, and is separately
//! fingerprinted in checkpoint headers (a resume under a different detector
//! configuration is refused — the flag set is part of the session identity).

use comet_jenga::ErrorType;
use std::fmt;

/// One member of the detection ensemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DetectorKind {
    /// Explicitly missing cells (CSV sentinels normalize to these).
    MissingSentinel,
    /// Domain violations against the column's inferred value domain:
    /// power-of-ten ratios to the median (unit errors) and values that sit
    /// inside a sibling column's bulk range (misaligned fields).
    Domain,
    /// Quantitative outliers by median/MAD robust z-score.
    RobustZ,
    /// Quantitative outliers outside Tukey fences at `k · IQR`.
    Iqr,
    /// Near-duplicate rows via banded row fingerprints plus verification.
    NearDuplicate,
    /// Rows whose label disagrees with the majority of their k nearest
    /// neighbours in standardized numeric feature space.
    LabelDisagreement,
}

impl DetectorKind {
    /// Every detector, in attribution priority order: when two detectors
    /// flag the same cell, the earlier one's family attribution wins.
    pub const ALL: [DetectorKind; 6] = [
        DetectorKind::MissingSentinel,
        DetectorKind::Domain,
        DetectorKind::RobustZ,
        DetectorKind::Iqr,
        DetectorKind::NearDuplicate,
        DetectorKind::LabelDisagreement,
    ];

    /// Stable kebab-case name (CLI `--detectors` values).
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::MissingSentinel => "missing-sentinel",
            DetectorKind::Domain => "domain",
            DetectorKind::RobustZ => "robust-z",
            DetectorKind::Iqr => "iqr",
            DetectorKind::NearDuplicate => "near-duplicate",
            DetectorKind::LabelDisagreement => "label-disagreement",
        }
    }

    /// Parse a detector name (case-insensitive; `_` and `-` interchangeable).
    pub fn parse(s: &str) -> Option<DetectorKind> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "missing-sentinel" | "missing" | "ms" => Some(DetectorKind::MissingSentinel),
            "domain" => Some(DetectorKind::Domain),
            "robust-z" | "robustz" | "zscore" => Some(DetectorKind::RobustZ),
            "iqr" => Some(DetectorKind::Iqr),
            "near-duplicate" | "near-duplicates" | "dup" | "duplicates" => {
                Some(DetectorKind::NearDuplicate)
            }
            "label-disagreement" | "label" => Some(DetectorKind::LabelDisagreement),
            _ => None,
        }
    }

    /// The error families this detector is built to find — the ground-truth
    /// side of its recall score. Broader than the single family a flag
    /// *attributes* (robust-z fences catch Gaussian noise and unit errors
    /// just as well as planted outliers).
    pub fn target_families(self) -> &'static [ErrorType] {
        match self {
            DetectorKind::MissingSentinel => &[ErrorType::MissingValues],
            DetectorKind::Domain => &[ErrorType::Scaling, ErrorType::SwappedFields],
            DetectorKind::RobustZ | DetectorKind::Iqr => {
                &[ErrorType::Outliers, ErrorType::GaussianNoise, ErrorType::Scaling]
            }
            DetectorKind::NearDuplicate => &[ErrorType::NearDuplicateRows],
            DetectorKind::LabelDisagreement => &[ErrorType::LabelNoise],
        }
    }

    fn bit(self) -> u8 {
        match self {
            DetectorKind::MissingSentinel => 1 << 0,
            DetectorKind::Domain => 1 << 1,
            DetectorKind::RobustZ => 1 << 2,
            DetectorKind::Iqr => 1 << 3,
            DetectorKind::NearDuplicate => 1 << 4,
            DetectorKind::LabelDisagreement => 1 << 5,
        }
    }
}

impl fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of enabled detectors (`Copy`-friendly bitset).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct DetectorSet(u8);

impl DetectorSet {
    /// Every detector enabled.
    pub fn all() -> DetectorSet {
        DetectorKind::ALL.into_iter().fold(DetectorSet::none(), DetectorSet::with)
    }

    /// No detector enabled.
    pub fn none() -> DetectorSet {
        DetectorSet(0)
    }

    /// This set plus one detector.
    pub fn with(self, kind: DetectorKind) -> DetectorSet {
        DetectorSet(self.0 | kind.bit())
    }

    /// Whether the detector is enabled.
    pub fn contains(self, kind: DetectorKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// Enabled detectors in priority order.
    pub fn iter(self) -> impl Iterator<Item = DetectorKind> {
        DetectorKind::ALL.into_iter().filter(move |k| self.contains(*k))
    }

    /// True when no detector is enabled.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Parse a comma-separated detector list (e.g. `"robust-z,iqr"`);
    /// `"all"` enables everything. `None` on any unknown name.
    pub fn parse(s: &str) -> Option<DetectorSet> {
        if s.trim().eq_ignore_ascii_case("all") {
            return Some(DetectorSet::all());
        }
        let mut set = DetectorSet::none();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            set = set.with(DetectorKind::parse(part)?);
        }
        Some(set)
    }
}

impl fmt::Debug for DetectorSet {
    /// Stable, name-based rendering — this string reaches the session's
    /// config fingerprint via `CometConfig`'s derived `Debug`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.iter().map(DetectorKind::name).collect();
        write!(f, "DetectorSet[{}]", names.join(","))
    }
}

/// Ensemble configuration: which detectors run and their thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Enabled detectors.
    pub enabled: DetectorSet,
    /// Robust z-score threshold (median/MAD units). 4.0 keeps the fence
    /// outside Gaussian bulk while catching planted 6–12 σ outliers.
    pub z_threshold: f64,
    /// Tukey fence multiplier on the interquartile range.
    pub iqr_k: f64,
    /// Fraction of feature columns that must match for a banded row pair to
    /// be verified as near-duplicates.
    pub dup_match_frac: f64,
    /// Relative tolerance when comparing numeric cells of a candidate
    /// near-duplicate pair (planted jitter is ±1 %).
    pub dup_rel_tol: f64,
    /// Neighbour count for the label-disagreement detector.
    pub knn_k: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            enabled: DetectorSet::all(),
            z_threshold: 4.0,
            iqr_k: 3.0,
            dup_match_frac: 0.8,
            dup_rel_tol: 0.025,
            knn_k: 5,
        }
    }
}

impl DetectorConfig {
    /// Validate threshold fields.
    pub fn validate(&self) -> Result<(), String> {
        // NaN thresholds must be rejected, so every check spells the NaN
        // case out instead of relying on `!(x > 0.0)`-style negations.
        if self.z_threshold.is_nan() || self.z_threshold <= 0.0 {
            return Err(format!("z_threshold must be positive, got {}", self.z_threshold));
        }
        if self.iqr_k.is_nan() || self.iqr_k <= 0.0 {
            return Err(format!("iqr_k must be positive, got {}", self.iqr_k));
        }
        if !(self.dup_match_frac > 0.0 && self.dup_match_frac <= 1.0) {
            return Err(format!("dup_match_frac must be in (0,1], got {}", self.dup_match_frac));
        }
        if self.dup_rel_tol.is_nan() || self.dup_rel_tol < 0.0 {
            return Err(format!("dup_rel_tol must be non-negative, got {}", self.dup_rel_tol));
        }
        if self.knn_k == 0 {
            return Err("knn_k must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for k in DetectorKind::ALL {
            assert_eq!(DetectorKind::parse(k.name()), Some(k), "{k}");
        }
        assert_eq!(DetectorKind::parse("robustz"), Some(DetectorKind::RobustZ));
        assert_eq!(
            DetectorKind::parse("label_disagreement"),
            Some(DetectorKind::LabelDisagreement)
        );
        assert_eq!(DetectorKind::parse("nonsense"), None);
    }

    #[test]
    fn set_operations() {
        let all = DetectorSet::all();
        for k in DetectorKind::ALL {
            assert!(all.contains(k));
        }
        let one = DetectorSet::none().with(DetectorKind::Iqr);
        assert!(one.contains(DetectorKind::Iqr));
        assert!(!one.contains(DetectorKind::RobustZ));
        assert!(!one.is_empty());
        assert!(DetectorSet::none().is_empty());
        assert_eq!(one.iter().collect::<Vec<_>>(), vec![DetectorKind::Iqr]);
    }

    #[test]
    fn set_parses_lists() {
        assert_eq!(DetectorSet::parse("all"), Some(DetectorSet::all()));
        let s = DetectorSet::parse("robust-z, iqr").unwrap();
        assert!(s.contains(DetectorKind::RobustZ) && s.contains(DetectorKind::Iqr));
        assert!(!s.contains(DetectorKind::Domain));
        assert_eq!(DetectorSet::parse("robust-z,bogus"), None);
    }

    #[test]
    fn set_debug_is_name_based_and_stable() {
        // This rendering feeds the session config fingerprint; it must name
        // the detectors, not expose raw bits that could silently re-map.
        let s = DetectorSet::none().with(DetectorKind::Iqr).with(DetectorKind::MissingSentinel);
        assert_eq!(format!("{s:?}"), "DetectorSet[missing-sentinel,iqr]");
        assert_eq!(
            format!("{:?}", DetectorSet::all()),
            "DetectorSet[missing-sentinel,domain,robust-z,iqr,near-duplicate,label-disagreement]"
        );
    }

    #[test]
    fn default_config_is_valid() {
        let c = DetectorConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.enabled, DetectorSet::all());
    }

    #[test]
    fn validation_catches_bad_fields() {
        let bad = [
            DetectorConfig { z_threshold: 0.0, ..DetectorConfig::default() },
            DetectorConfig { z_threshold: f64::NAN, ..DetectorConfig::default() },
            DetectorConfig { iqr_k: -1.0, ..DetectorConfig::default() },
            DetectorConfig { dup_match_frac: 0.0, ..DetectorConfig::default() },
            DetectorConfig { dup_match_frac: 1.5, ..DetectorConfig::default() },
            DetectorConfig { dup_rel_tol: -0.1, ..DetectorConfig::default() },
            DetectorConfig { knn_k: 0, ..DetectorConfig::default() },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        }
    }

    #[test]
    fn target_families_cover_every_extended_family() {
        let covered: std::collections::BTreeSet<ErrorType> =
            DetectorKind::ALL.iter().flat_map(|k| k.target_families().iter().copied()).collect();
        for e in [
            ErrorType::MissingValues,
            ErrorType::Outliers,
            ErrorType::Scaling,
            ErrorType::SwappedFields,
            ErrorType::NearDuplicateRows,
            ErrorType::LabelNoise,
        ] {
            assert!(covered.contains(&e), "no detector targets {e}");
        }
    }
}
