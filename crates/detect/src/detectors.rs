//! The detection ensemble.
//!
//! Every detector is a pure function of the frame and the configuration:
//! no RNG, no clocks, no hash-seeded iteration (groups live in `BTreeMap`s,
//! float sorts use `total_cmp`). Running twice — on any thread count —
//! yields the same flags in the same order.

use crate::config::{DetectorConfig, DetectorKind};
use crate::report::{DetectionReport, Flag};
use comet_frame::{ColumnKind, DataFrame, FrameError};
use std::collections::BTreeMap;

/// Rows beyond this, the O(n²) label-disagreement detector bows out.
const KNN_ROW_CAP: usize = 20_000;

/// Robust-sigma factor: for a normal distribution, `1.4826 · MAD ≈ σ`.
const MAD_TO_SIGMA: f64 = 1.4826;

/// How close (in decades) a value/median ratio must sit to an exact power
/// of ten for the domain detector to call it a unit error.
const DECADE_TOL: f64 = 0.15;

/// Robust per-column statistics shared by the domain, robust-z, and IQR
/// detectors. `None` when the column has no valid values.
struct NumStats {
    median: f64,
    q1: f64,
    q3: f64,
    iqr: f64,
    /// `1.4826 · MAD`; 0 when the column is degenerate.
    mad_scale: f64,
}

/// Linear-interpolation quantile of an ascending-sorted, non-empty slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

fn num_stats(values: &[f64]) -> Option<NumStats> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    let median = quantile(&sorted, 0.5);
    let q1 = quantile(&sorted, 0.25);
    let q3 = quantile(&sorted, 0.75);
    let mut dev: Vec<f64> = sorted.iter().map(|v| (v - median).abs()).collect();
    dev.sort_unstable_by(f64::total_cmp);
    let mad = quantile(&dev, 0.5);
    Some(NumStats { median, q1, q3, iqr: q3 - q1, mad_scale: MAD_TO_SIGMA * mad })
}

impl NumStats {
    /// Tukey fence at `k · IQR` beyond the quartiles.
    fn outside_fence(&self, v: f64, k: f64) -> bool {
        v < self.q1 - k * self.iqr || v > self.q3 + k * self.iqr
    }
}

/// Valid numeric values of a column, paired with their row indices.
fn numeric_values(df: &DataFrame, col: usize) -> Result<Vec<(usize, f64)>, FrameError> {
    let c = df.column(col)?;
    Ok((0..c.len()).filter_map(|row| c.num(row).map(|v| (row, v))).collect())
}

/// Run the enabled detectors over `df` and collect the flag set.
///
/// Only feature columns are scanned, except the label-disagreement
/// detector, which flags cells of the label column. The report is sorted
/// and deterministic (see the crate docs for the full contract).
pub fn detect(df: &DataFrame, config: &DetectorConfig) -> Result<DetectionReport, FrameError> {
    config.validate().map_err(FrameError::InvalidArgument)?;
    let features = df.feature_indices();
    let numeric_features: Vec<usize> = features
        .iter()
        .copied()
        .filter(|&c| df.column(c).map(|col| col.kind() == ColumnKind::Numeric).unwrap_or(false))
        .collect();

    // Shared robust stats for every numeric feature column.
    let mut stats: BTreeMap<usize, NumStats> = BTreeMap::new();
    for &c in &numeric_features {
        let vals: Vec<f64> = numeric_values(df, c)?.into_iter().map(|(_, v)| v).collect();
        if let Some(s) = num_stats(&vals) {
            stats.insert(c, s);
        }
    }

    let mut flags: Vec<Flag> = Vec::new();
    for kind in config.enabled.iter() {
        match kind {
            DetectorKind::MissingSentinel => missing_sentinel(df, &features, &mut flags)?,
            DetectorKind::Domain => domain(df, &numeric_features, &stats, &mut flags)?,
            DetectorKind::RobustZ => robust_z(df, &numeric_features, &stats, config, &mut flags)?,
            DetectorKind::Iqr => iqr(df, &numeric_features, &stats, config, &mut flags)?,
            DetectorKind::NearDuplicate => near_duplicate(df, &features, config, &mut flags)?,
            DetectorKind::LabelDisagreement => {
                label_disagreement(df, &numeric_features, config, &mut flags)?
            }
        }
    }
    Ok(DetectionReport::new(flags))
}

/// Explicitly missing cells → `MissingValues`.
fn missing_sentinel(
    df: &DataFrame,
    features: &[usize],
    flags: &mut Vec<Flag>,
) -> Result<(), FrameError> {
    for &col in features {
        let c = df.column(col)?;
        for seg in 0..c.n_segments() {
            let offset = c.segment_offset(seg);
            let view = c.segment_view(seg)?;
            for local in 0..view.len() {
                if !view.is_valid(local) {
                    flags.push(Flag {
                        col,
                        row: offset + local,
                        detector: DetectorKind::MissingSentinel,
                        family: comet_jenga::ErrorType::MissingValues,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Domain violations. Two signals, checked in order for each value that
/// sits outside its own column's 1.5·IQR fence:
///
/// 1. `|v| / |median|` lands within [`DECADE_TOL`] of an exact power of ten
///    (1–6 decades, either direction) → `Scaling` (a unit error).
/// 2. the value falls inside a *sibling* numeric column's quartile bulk
///    → `SwappedFields` (the value belongs to another field's domain).
fn domain(
    df: &DataFrame,
    numeric_features: &[usize],
    stats: &BTreeMap<usize, NumStats>,
    flags: &mut Vec<Flag>,
) -> Result<(), FrameError> {
    for &col in numeric_features {
        let Some(s) = stats.get(&col) else { continue };
        for (row, v) in numeric_values(df, col)? {
            if !s.outside_fence(v, 1.5) {
                continue;
            }
            if is_decade_ratio(v, s.median) {
                flags.push(Flag {
                    col,
                    row,
                    detector: DetectorKind::Domain,
                    family: comet_jenga::ErrorType::Scaling,
                });
                continue;
            }
            let in_sibling_bulk = numeric_features.iter().any(|&other| {
                other != col
                    && stats.get(&other).is_some_and(|o| o.iqr > 0.0 && v >= o.q1 && v <= o.q3)
            });
            if in_sibling_bulk {
                flags.push(Flag {
                    col,
                    row,
                    detector: DetectorKind::Domain,
                    family: comet_jenga::ErrorType::SwappedFields,
                });
            }
        }
    }
    Ok(())
}

/// True when `|v| / |median|` is within [`DECADE_TOL`] of 10^±k, k = 1..=6.
fn is_decade_ratio(v: f64, median: f64) -> bool {
    if median == 0.0 || v == 0.0 || (v < 0.0) != (median < 0.0) {
        return false;
    }
    let decades = (v.abs() / median.abs()).log10();
    let nearest = decades.round();
    nearest != 0.0 && nearest.abs() <= 6.0 && (decades - nearest).abs() <= DECADE_TOL
}

/// Median/MAD robust z-score beyond `z_threshold` → `Outliers`.
fn robust_z(
    df: &DataFrame,
    numeric_features: &[usize],
    stats: &BTreeMap<usize, NumStats>,
    config: &DetectorConfig,
    flags: &mut Vec<Flag>,
) -> Result<(), FrameError> {
    for &col in numeric_features {
        let Some(s) = stats.get(&col) else { continue };
        if s.mad_scale <= 0.0 {
            continue; // degenerate column: over half the values identical
        }
        for (row, v) in numeric_values(df, col)? {
            if (v - s.median).abs() / s.mad_scale > config.z_threshold {
                flags.push(Flag {
                    col,
                    row,
                    detector: DetectorKind::RobustZ,
                    family: comet_jenga::ErrorType::Outliers,
                });
            }
        }
    }
    Ok(())
}

/// Outside the `iqr_k · IQR` Tukey fences → `Outliers`.
fn iqr(
    df: &DataFrame,
    numeric_features: &[usize],
    stats: &BTreeMap<usize, NumStats>,
    config: &DetectorConfig,
    flags: &mut Vec<Flag>,
) -> Result<(), FrameError> {
    for &col in numeric_features {
        let Some(s) = stats.get(&col) else { continue };
        if s.iqr <= 0.0 {
            continue;
        }
        for (row, v) in numeric_values(df, col)? {
            if s.outside_fence(v, config.iqr_k) {
                flags.push(Flag {
                    col,
                    row,
                    detector: DetectorKind::Iqr,
                    family: comet_jenga::ErrorType::Outliers,
                });
            }
        }
    }
    Ok(())
}

/// FNV-1a-style fold of one word into a running row signature.
fn fold(h: u64, w: u64) -> u64 {
    (h ^ w).wrapping_mul(0x0000_0100_0000_01b3).rotate_left(17)
}

/// Near-duplicate rows via banded fingerprints.
///
/// Numeric cells quantize to buckets of half a standard deviation; two
/// bands at offsets 0 and ½ keep a jittered pair from being split by a
/// single bucket boundary. Rows sharing a band signature are *candidates*;
/// a candidate pair is verified cell-by-cell (numeric within
/// `dup_rel_tol`, categorical equal, missing matches missing) and must
/// agree on at least `dup_match_frac` of the feature columns. *Every*
/// member of a verified pair has its feature cells flagged
/// `NearDuplicateRows`: without ground truth a detector cannot tell which
/// row is the original and which the copy (upstream shuffles destroy
/// insertion order), so it surfaces the whole cluster and leaves the
/// resolution to the cleaner.
fn near_duplicate(
    df: &DataFrame,
    features: &[usize],
    config: &DetectorConfig,
    flags: &mut Vec<Flag>,
) -> Result<(), FrameError> {
    let n = df.nrows();
    if n < 2 || features.is_empty() {
        return Ok(());
    }
    // Bucket widths per feature column (numeric only).
    let mut widths: BTreeMap<usize, f64> = BTreeMap::new();
    for &c in features {
        let col = df.column(c)?;
        if col.kind() == ColumnKind::Numeric {
            let std = col.std().unwrap_or(0.0);
            widths.insert(c, if std > 0.0 { 0.5 * std } else { 1.0 });
        }
    }

    let mut dup_rows: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
    for band in 0..2u64 {
        let offset = 0.5 * band as f64;
        let mut groups: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for row in 0..n {
            let mut sig = 0xcbf2_9ce4_8422_2325u64 ^ band;
            for &c in features {
                let col = df.column(c)?;
                let word = match (col.num(row), col.cat(row)) {
                    (Some(v), _) => {
                        let width = widths.get(&c).copied().unwrap_or(1.0);
                        let bucket = (v / width + offset).floor();
                        // Buckets beyond i64 range all collapse to the same
                        // word; verification sorts out the collisions.
                        1 ^ (bucket as i64 as u64).rotate_left(1)
                    }
                    (_, Some(code)) => 2 ^ (u64::from(code) << 2),
                    _ => 3, // missing
                };
                sig = fold(sig, word);
            }
            groups.entry(sig).or_default().push(row);
        }
        for rows in groups.values() {
            for j in 1..rows.len() {
                if dup_rows.contains(&rows[j]) {
                    continue;
                }
                // Verify against every earlier row in the group (bounded
                // lookback keeps a degenerate all-one-bucket frame linear).
                for i in j.saturating_sub(128)..j {
                    if rows_match(df, features, rows[i], rows[j], config)? {
                        dup_rows.insert(rows[i]);
                        dup_rows.insert(rows[j]);
                        break;
                    }
                }
            }
        }
    }
    for row in dup_rows {
        for &col in features {
            flags.push(Flag {
                col,
                row,
                detector: DetectorKind::NearDuplicate,
                family: comet_jenga::ErrorType::NearDuplicateRows,
            });
        }
    }
    Ok(())
}

/// Cell-by-cell verification of a candidate near-duplicate pair.
fn rows_match(
    df: &DataFrame,
    features: &[usize],
    a: usize,
    b: usize,
    config: &DetectorConfig,
) -> Result<bool, FrameError> {
    let mut matches = 0usize;
    for &c in features {
        let col = df.column(c)?;
        let cell_match = match (col.get(a)?, col.get(b)?) {
            (comet_frame::Cell::Missing, comet_frame::Cell::Missing) => true,
            (comet_frame::Cell::Num(x), comet_frame::Cell::Num(y)) => {
                let ax = x.abs();
                let ay = y.abs();
                let mut scale = if ax > ay { ax } else { ay };
                if scale < 1.0 {
                    scale = 1.0;
                }
                (x - y).abs() <= config.dup_rel_tol * scale
            }
            (comet_frame::Cell::Cat(x), comet_frame::Cell::Cat(y)) => x == y,
            _ => false,
        };
        if cell_match {
            matches += 1;
        }
    }
    Ok(matches as f64 >= config.dup_match_frac * features.len() as f64)
}

/// Rows whose label disagrees with the strict majority of their `knn_k`
/// nearest neighbours (standardized numeric feature space, Euclidean).
/// Flags land on the *label* column with family `LabelNoise`.
///
/// O(n²); skipped entirely above [`KNN_ROW_CAP`] rows or when the frame has
/// no label / no numeric features.
fn label_disagreement(
    df: &DataFrame,
    numeric_features: &[usize],
    config: &DetectorConfig,
    flags: &mut Vec<Flag>,
) -> Result<(), FrameError> {
    let n = df.nrows();
    let Ok(label_col) = df.label_index() else {
        return Ok(());
    };
    if !(3..=KNN_ROW_CAP).contains(&n) || numeric_features.is_empty() {
        return Ok(());
    }
    let labels = df.column(label_col)?;
    if labels.kind() != ColumnKind::Categorical {
        return Ok(());
    }

    // Standardized numeric feature matrix, row-major; missing → 0 (the mean).
    let d = numeric_features.len();
    let mut matrix = vec![0.0f64; n * d];
    for (j, &c) in numeric_features.iter().enumerate() {
        let col = df.column(c)?;
        let mean = col.mean().unwrap_or(0.0);
        let std = col.std().unwrap_or(0.0);
        let inv = if std > 0.0 { 1.0 / std } else { 0.0 };
        for row in 0..n {
            if let Some(v) = col.num(row) {
                matrix[row * d + j] = (v - mean) * inv;
            }
        }
    }

    let k = config.knn_k;
    for row in 0..n {
        let Some(own) = labels.cat(row) else { continue };
        // Distances to every other labelled row; ties break on row index.
        let mut dists: Vec<(f64, usize)> = Vec::with_capacity(n - 1);
        for other in 0..n {
            if other == row || labels.cat(other).is_none() {
                continue;
            }
            let mut d2 = 0.0;
            for j in 0..d {
                let diff = matrix[row * d + j] - matrix[other * d + j];
                d2 += diff * diff;
            }
            dists.push((d2, other));
        }
        if dists.len() < k {
            continue;
        }
        dists.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut votes: BTreeMap<u32, usize> = BTreeMap::new();
        for &(_, other) in dists.iter().take(k) {
            if let Some(code) = labels.cat(other) {
                *votes.entry(code).or_insert(0) += 1;
            }
        }
        // Strict majority; BTreeMap iteration makes ties resolve to the
        // smallest code deterministically (and a tie is never a strict
        // majority anyway).
        let Some((&majority, &count)) = votes.iter().max_by_key(|(_, &c)| c) else {
            continue;
        };
        if 2 * count > k && majority != own {
            flags.push(Flag {
                col: label_col,
                row,
                detector: DetectorKind::LabelDisagreement,
                family: comet_jenga::ErrorType::LabelNoise,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorSet;
    use comet_frame::{Cell, Column};
    use comet_jenga::ErrorType;

    /// 40 rows: x in a tight band around 11, y ramping from 1000 with a
    /// +600 jump at the halfway mark — the label follows the y cluster.
    fn base_frame() -> DataFrame {
        let x: Vec<f64> = (0..40).map(|i| 10.0 + (i % 5) as f64 * 0.5).collect();
        let y: Vec<f64> =
            (0..40).map(|i| 1000.0 + 13.0 * i as f64 + if i >= 20 { 600.0 } else { 0.0 }).collect();
        let labels: Vec<u32> = (0..40).map(|i| u32::from(i >= 20)).collect();
        DataFrame::new(
            vec![
                Column::numeric("x", x),
                Column::numeric("y", y),
                Column::categorical("label", labels, vec!["n".into(), "p".into()]).unwrap(),
            ],
            Some("label"),
        )
        .unwrap()
    }

    fn only(kind: DetectorKind) -> DetectorConfig {
        DetectorConfig { enabled: DetectorSet::none().with(kind), ..DetectorConfig::default() }
    }

    #[test]
    fn clean_frame_is_mostly_quiet() {
        let df = base_frame();
        let report = detect(&df, &DetectorConfig::default()).unwrap();
        // The clean frame has no missing cells, no decade ratios, no
        // near-duplicates; allow a handful of borderline outlier flags.
        assert!(report.flagged_cell_count() <= 2, "{:?}", report.flags());
    }

    #[test]
    fn missing_cells_are_flagged() {
        let mut df = base_frame();
        df.set(3, 0, Cell::Missing).unwrap();
        df.set(8, 1, Cell::Missing).unwrap();
        let report = detect(&df, &only(DetectorKind::MissingSentinel)).unwrap();
        assert_eq!(report.flagged_rows(0, ErrorType::MissingValues), vec![3]);
        assert_eq!(report.flagged_rows(1, ErrorType::MissingValues), vec![8]);
        assert_eq!(report.len(), 2);
    }

    #[test]
    fn decade_ratio_attributes_scaling_not_outliers() {
        let mut df = base_frame();
        // x ~ 10–12.5; a ×100 unit error is far outside the fence AND an
        // exact decade ratio → Domain wins the attribution over robust-z.
        let v = df.column(0).unwrap().num(5).unwrap();
        df.set(5, 0, Cell::Num(v * 100.0)).unwrap();
        let report = detect(&df, &DetectorConfig::default()).unwrap();
        assert_eq!(report.cells()[&(0, 5)], ErrorType::Scaling);
    }

    #[test]
    fn sibling_bulk_value_attributes_swapped_fields() {
        let mut df = base_frame();
        // Plant a mid-range y value into x: far outside x's fence, inside
        // y's quartile bulk, and not a power-of-ten ratio to x's median.
        df.set(7, 0, Cell::Num(1750.0)).unwrap();
        let report = detect(&df, &DetectorConfig::default()).unwrap();
        assert_eq!(report.cells()[&(0, 7)], ErrorType::SwappedFields);
    }

    #[test]
    fn robust_z_and_iqr_flag_far_outliers() {
        let mut df = base_frame();
        df.set(11, 1, Cell::Num(5000.0)).unwrap(); // y tops out near 2100
        for kind in [DetectorKind::RobustZ, DetectorKind::Iqr] {
            let report = detect(&df, &only(kind)).unwrap();
            assert_eq!(
                report.flagged_rows(1, ErrorType::Outliers),
                vec![11],
                "{kind} missed the planted outlier"
            );
        }
    }

    #[test]
    fn degenerate_constant_column_never_divides_by_zero() {
        let df = DataFrame::new(
            vec![
                Column::numeric("c", vec![5.0; 20]),
                Column::categorical("label", vec![0; 20], vec!["n".into()]).unwrap(),
            ],
            Some("label"),
        )
        .unwrap();
        let report = detect(&df, &DetectorConfig::default()).unwrap();
        // Zero IQR / zero MAD must not divide by zero or flag outliers.
        assert!(report.flagged_rows(0, ErrorType::Outliers).is_empty());
        assert!(report.flagged_rows(0, ErrorType::Scaling).is_empty());
        // Every row IS an exact copy of every other — the duplicate
        // detector is *supposed* to flag the whole cluster.
        assert_eq!(report.flagged_rows(0, ErrorType::NearDuplicateRows).len(), 20);
    }

    #[test]
    fn near_duplicates_flag_every_cluster_member() {
        let mut df = base_frame();
        // Make row 25 a jittered copy of row 4 across all features.
        for c in [0usize, 1] {
            let v = df.column(c).unwrap().num(4).unwrap();
            df.set(25, c, Cell::Num(v * 1.005)).unwrap();
        }
        let report = detect(&df, &only(DetectorKind::NearDuplicate)).unwrap();
        let flagged = report.flagged_rows(0, ErrorType::NearDuplicateRows);
        // A detector cannot know which member of the pair is the copy, so
        // both rows are surfaced for the cleaner to resolve.
        assert!(flagged.contains(&25), "copy not flagged: {flagged:?}");
        assert!(flagged.contains(&4), "source not flagged: {flagged:?}");
        assert_eq!(flagged.len(), 2, "unrelated rows must stay unflagged");
    }

    #[test]
    fn label_disagreement_flags_flipped_labels() {
        let mut df = base_frame();
        // Row 2 sits deep in the label-0 cluster; flip its label to 1.
        df.set(2, 2, Cell::Cat(1)).unwrap();
        let report = detect(&df, &only(DetectorKind::LabelDisagreement)).unwrap();
        let label_col = df.label_index().unwrap();
        let flagged = report.flagged_rows(label_col, ErrorType::LabelNoise);
        assert!(flagged.contains(&2), "flipped label not flagged: {flagged:?}");
        // Flags must land on the label column only.
        for f in report.flags() {
            assert_eq!(f.col, label_col);
        }
    }

    #[test]
    fn empty_detector_set_yields_empty_report() {
        let df = base_frame();
        let cfg = DetectorConfig { enabled: DetectorSet::none(), ..DetectorConfig::default() };
        assert!(detect(&df, &cfg).unwrap().is_empty());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let df = base_frame();
        let cfg = DetectorConfig { knn_k: 0, ..DetectorConfig::default() };
        assert!(detect(&df, &cfg).is_err());
    }

    #[test]
    fn detection_is_deterministic_across_reruns() {
        let mut df = base_frame();
        df.set(3, 0, Cell::Missing).unwrap();
        df.set(5, 1, Cell::Num(9999.0)).unwrap();
        df.set(2, 2, Cell::Cat(1)).unwrap();
        let a = detect(&df, &DetectorConfig::default()).unwrap();
        let b = detect(&df, &DetectorConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
