//! Detector scoring against planted ground truth.
//!
//! The simulation harness knows exactly which cells JENGA polluted and with
//! which family ([`Provenance`]). Each detector is scored as a binary
//! classifier over the frame's cells: a cell is *positive truth* when its
//! provenance family is one the detector targets
//! ([`DetectorKind::target_families`]), and *predicted positive* when that
//! detector flagged it. Precision and recall run through `comet-ml`'s
//! NaN-guarded metrics, so degenerate cases (nothing flagged, nothing
//! planted) come back as 0.0, never NaN or a panic.

use crate::config::DetectorKind;
use crate::report::DetectionReport;
use comet_frame::DataFrame;
use comet_jenga::Provenance;
use std::collections::BTreeSet;

/// Precision/recall of one detector against planted ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorScore {
    /// Which detector.
    pub detector: DetectorKind,
    /// Cells this detector flagged.
    pub flagged: usize,
    /// Cells whose planted family is in the detector's target set.
    pub true_dirty: usize,
    /// Flagged ∧ target-dirty / flagged (0.0 when nothing was flagged).
    pub precision: f64,
    /// Flagged ∧ target-dirty / target-dirty (0.0 when nothing was planted).
    pub recall: f64,
}

/// Score every detector in [`DetectorKind::ALL`] against `prov`.
///
/// The cell universe is every cell of `df` in `(col, row)` order —
/// deterministic, so the emitted numbers are replayable. Detectors that
/// were disabled (or flagged nothing) score `flagged: 0, precision: 0.0`.
pub fn score_detectors(
    report: &DetectionReport,
    prov: &Provenance,
    df: &DataFrame,
) -> Vec<DetectorScore> {
    let ncols = df.ncols();
    let nrows = df.nrows();
    DetectorKind::ALL
        .into_iter()
        .map(|detector| {
            let targets = detector.target_families();
            let flagged: BTreeSet<(usize, usize)> =
                report.flags_by(detector).map(|f| (f.col, f.row)).collect();
            let mut y_true = Vec::with_capacity(ncols * nrows);
            let mut y_pred = Vec::with_capacity(ncols * nrows);
            for col in 0..ncols {
                for row in 0..nrows {
                    let dirty = prov.get(col, row).is_some_and(|fam| targets.contains(&fam));
                    y_true.push(u32::from(dirty));
                    y_pred.push(u32::from(flagged.contains(&(col, row))));
                }
            }
            let true_dirty = y_true.iter().filter(|&&t| t == 1).count();
            DetectorScore {
                detector,
                flagged: flagged.len(),
                true_dirty,
                precision: comet_ml::metrics::precision(&y_true, &y_pred, 1),
                recall: comet_ml::metrics::recall(&y_true, &y_pred, 1),
            }
        })
        .collect()
}

/// Flagged cells (any detector, any attribution) that carry *no* planted
/// dirt of any family — the ensemble's raw false positives, fed to the
/// `detect.false_positives` observability counter.
pub fn false_positive_cells(report: &DetectionReport, prov: &Provenance) -> usize {
    report.cells().keys().filter(|&&(col, row)| prov.get(col, row).is_none()).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use crate::detect;
    use comet_frame::{Cell, Column};
    use comet_jenga::ErrorType;

    fn frame_with_planted_outliers() -> (DataFrame, Provenance) {
        // Strictly increasing ramp: no two rows are near-duplicates.
        let x: Vec<f64> = (0..30).map(|i| 10.0 + 1.5 * i as f64).collect();
        let mut df = DataFrame::new(
            vec![
                Column::numeric("x", x),
                Column::categorical("label", vec![0; 30], vec!["n".into()]).unwrap(),
            ],
            Some("label"),
        )
        .unwrap();
        let mut prov = Provenance::for_frame(&df);
        for (row, v) in [(4usize, 500.0), (17, -400.0)] {
            df.set(row, 0, Cell::Num(v)).unwrap();
            prov.record(0, row, ErrorType::Outliers);
        }
        (df, prov)
    }

    #[test]
    fn perfect_detection_scores_perfect_precision_and_recall() {
        let (df, prov) = frame_with_planted_outliers();
        let report = detect(&df, &DetectorConfig::default()).unwrap();
        let scores = score_detectors(&report, &prov, &df);
        assert_eq!(scores.len(), DetectorKind::ALL.len());
        let z = scores.iter().find(|s| s.detector == DetectorKind::RobustZ).unwrap();
        assert_eq!(z.true_dirty, 2);
        assert_eq!(z.flagged, 2);
        assert!((z.precision - 1.0).abs() < 1e-12, "precision {}", z.precision);
        assert!((z.recall - 1.0).abs() < 1e-12, "recall {}", z.recall);
    }

    #[test]
    fn idle_detectors_score_zero_without_nan() {
        let (df, prov) = frame_with_planted_outliers();
        let report = detect(&df, &DetectorConfig::default()).unwrap();
        let scores = score_detectors(&report, &prov, &df);
        let dup = scores.iter().find(|s| s.detector == DetectorKind::NearDuplicate).unwrap();
        assert_eq!(dup.flagged, 0);
        assert_eq!(dup.true_dirty, 0);
        assert_eq!(dup.precision, 0.0);
        assert_eq!(dup.recall, 0.0);
        for s in &scores {
            assert!(s.precision.is_finite() && s.recall.is_finite(), "{s:?}");
        }
    }

    #[test]
    fn false_positive_cells_counts_unplanted_flags() {
        let (df, prov) = frame_with_planted_outliers();
        let report = detect(&df, &DetectorConfig::default()).unwrap();
        // Everything flagged on this frame is planted dirt.
        assert_eq!(false_positive_cells(&report, &prov), 0);
        // Wipe the provenance: now every flag is a false positive.
        let empty = Provenance::for_frame(&df);
        assert_eq!(false_positive_cells(&report, &empty), report.flagged_cell_count());
    }

    #[test]
    fn recall_penalizes_missed_dirt() {
        let (mut df, mut prov) = frame_with_planted_outliers();
        // Plant a third outlier too mild for the default thresholds (and
        // off the ramp's grid, so it is no near-duplicate either).
        df.set(9, 0, Cell::Num(11.05)).unwrap();
        prov.record(0, 9, ErrorType::Outliers);
        let report = detect(&df, &DetectorConfig::default()).unwrap();
        let scores = score_detectors(&report, &prov, &df);
        let z = scores.iter().find(|s| s.detector == DetectorKind::RobustZ).unwrap();
        assert_eq!(z.true_dirty, 3);
        assert!(z.recall > 0.6 && z.recall < 0.7, "recall {}", z.recall);
    }
}
