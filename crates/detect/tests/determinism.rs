//! Detection determinism: the ensemble is pure — same frame, same config,
//! same report — and stays bit-identical when runs are fanned out across
//! worker threads (1/2/8), because nothing in it consults thread identity,
//! hash-seeded iteration order, clocks, or RNGs.

use comet_detect::{detect, DetectionReport, DetectorConfig};
use comet_frame::{Cell, Column, DataFrame};
use proptest::prelude::*;

/// A frame whose content is entirely decided by the proptest inputs:
/// two numeric features (one offset into a different scale), a derived
/// categorical label, plus planted missing cells and spikes.
fn build_frame(values: &[f64], missing: &[usize], spikes: &[(usize, f64)]) -> DataFrame {
    let n = values.len();
    let x: Vec<f64> = values.to_vec();
    let y: Vec<f64> = values.iter().map(|v| 100.0 + 7.0 * v).collect();
    let labels: Vec<u32> = values.iter().map(|v| u32::from(*v > 0.0)).collect();
    let mut df = DataFrame::new(
        vec![
            Column::numeric("x", x),
            Column::numeric("y", y),
            Column::categorical("label", labels, vec!["neg".into(), "pos".into()]).unwrap(),
        ],
        Some("label"),
    )
    .unwrap();
    for &row in missing {
        df.set(row % n, 0, Cell::Missing).unwrap();
    }
    for &(row, magnitude) in spikes {
        df.set(row % n, 1, Cell::Num(magnitude)).unwrap();
    }
    df
}

fn assert_report_invariants(report: &DetectionReport) {
    // Flags are sorted and deduplicated — the report's own ordering
    // contract, which everything downstream (attribution, candidate
    // pairs, fingerprints) relies on.
    let flags = report.flags();
    for pair in flags.windows(2) {
        assert!(pair[0] < pair[1], "flags must be strictly sorted: {pair:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn detection_is_pure_and_thread_count_independent(
        values in prop::collection::vec(-50.0f64..50.0, 20..60),
        missing in prop::collection::vec(0usize..60, 0..6),
        spikes in prop::collection::vec((0usize..60, 5_000.0f64..50_000.0), 0..4),
    ) {
        let df = build_frame(&values, &missing, &spikes);
        let config = DetectorConfig::default();
        let baseline = detect(&df, &config).unwrap();
        assert_report_invariants(&baseline);

        // Rerun on the same thread: bit-identical.
        prop_assert_eq!(&baseline, &detect(&df, &config).unwrap());

        // Fan the same detection out across 1, 2, and 8 worker threads;
        // every copy must come back identical to the sequential baseline.
        for threads in [1usize, 2, 8] {
            let reports = comet_par::with_threads(threads, || {
                comet_par::par_map(vec![df.clone(); 8], |frame| {
                    detect(&frame, &DetectorConfig::default()).unwrap()
                })
            });
            for report in &reports {
                prop_assert_eq!(&baseline, report, "divergence at {} threads", threads);
            }
        }
    }

    #[test]
    fn tighter_thresholds_never_flag_less(
        values in prop::collection::vec(-50.0f64..50.0, 20..60),
        spikes in prop::collection::vec((0usize..60, 5_000.0f64..50_000.0), 1..4),
    ) {
        // Monotonicity: loosening z/IQR thresholds can only remove flags.
        let df = build_frame(&values, &[], &spikes);
        let tight = detect(&df, &DetectorConfig::default()).unwrap();
        let loose = detect(
            &df,
            &DetectorConfig { z_threshold: 12.0, iqr_k: 9.0, ..DetectorConfig::default() },
        )
        .unwrap();
        prop_assert!(loose.flagged_cell_count() <= tight.flagged_cell_count());
    }
}
