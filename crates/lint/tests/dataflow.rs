//! Workspace-level dataflow tests: the D7 mutation drill (delete any single
//! fingerprint ingredient from the *real* checkpoint code → the lint must
//! fail), D8 taint properties of the real workspace against the crate list
//! the rules used to hard-code, fixture-driven root detection, and the
//! machine-readable JSON rendering.

use comet_lint::graph::compute_taint;
use comet_lint::rules::{Rule, ScannedFile};
use comet_lint::{file_context, lint_files, load_allowlist, render_json, workspace_sources};
use std::path::Path;

/// The trace-affecting crate list that was hard-coded in the rules module
/// before D8 computed it from the use graph. The computed set must stay a
/// superset: taint can only be discovered, never silently lost.
const OLD_HARDCODED_LIST: [&str; 7] =
    ["core", "ml", "bayes", "jenga", "baselines", "frame", "detect"];

/// Every session-identity ingredient the checkpoint header writes. The
/// mutation drill deletes each one's builder line in turn.
const HEADER_KEYS: [&str; 8] = [
    "session_seed",
    "config_fp",
    "budget_total",
    "kernel_tier",
    "lane_count",
    "f32_probes",
    "detect_fp",
    "segment_rows",
];

const CHECKPOINT: &str = "crates/core/src/checkpoint.rs";

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

/// Scan the real workspace, applying `mutate` to the file at `target`
/// (repo-relative). `mutate` is the identity check when `target` is empty.
fn scanned_workspace(target: &str, mutate: impl Fn(&str) -> String) -> Vec<ScannedFile> {
    let root = repo_root();
    let sources = workspace_sources(&root).unwrap();
    sources
        .iter()
        .map(|rel| {
            let ctx = file_context(rel);
            let src = std::fs::read_to_string(root.join(rel)).unwrap();
            let src = if ctx.path == target { mutate(&src) } else { src };
            ScannedFile::new(ctx, src.as_bytes())
        })
        .collect()
}

fn real_allowlist() -> comet_lint::config::Allowlist {
    load_allowlist(&repo_root().join("lint.toml")).unwrap()
}

/// Delete the first line containing both `field_` and the quoted key —
/// exactly the builder's write of that header field (the loader reads the
/// key through `get*`, never `field_*`).
fn without_builder_line(src: &str, key: &str) -> String {
    let needle = format!("\"{key}\"");
    let mut removed = false;
    let kept: Vec<&str> = src
        .lines()
        .filter(|l| {
            if !removed && l.contains("field_") && l.contains(&needle) {
                removed = true;
                return false;
            }
            true
        })
        .collect();
    assert!(removed, "no builder line found for header key `{key}` — did the builder move?");
    kept.join("\n")
}

// --- the mutation drill: the lint is only trustworthy if it actually
// --- fails when a fingerprint ingredient disappears ---

#[test]
fn deleting_any_single_header_ingredient_fails_the_lint() {
    let allow = real_allowlist();
    for key in HEADER_KEYS {
        let files = scanned_workspace(CHECKPOINT, |src| without_builder_line(src, key));
        let report = lint_files(&files, &allow);
        assert!(
            !report.is_clean(),
            "deleting the `{key}` builder line must fail the lint, but it stayed clean"
        );
        assert!(
            report.findings.iter().any(|f| f.rule == Rule::D7 && f.message.contains(key)),
            "no D7 finding names `{key}`: {:#?}",
            report.findings
        );
    }
}

#[test]
fn dropping_the_config_debug_capture_fails_the_lint() {
    let allow = real_allowlist();
    let files = scanned_workspace(CHECKPOINT, |src| {
        let mutated = src.replace("{config:?}|", "");
        assert_ne!(mutated, src, "config_fingerprint no longer captures `{{config:?}}`");
        mutated
    });
    let report = lint_files(&files, &allow);
    assert!(!report.is_clean(), "dropping the config capture must fail the lint");
    let uncovered = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::D7 && f.file == "crates/core/src/config.rs")
        .count();
    // Every CometConfig field loses coverage at once.
    assert!(uncovered >= 5, "expected many uncovered fields, got {uncovered}");
}

#[test]
fn the_unmutated_workspace_is_clean() {
    let files = scanned_workspace("", |s| s.to_string());
    let report = lint_files(&files, &real_allowlist());
    assert!(report.is_clean(), "errors: {:#?}", report.evaluation.errors);
}

// --- D8 on the real workspace ---

#[test]
fn computed_taint_is_a_superset_of_the_old_hardcoded_list() {
    let files = scanned_workspace("", |s| s.to_string());
    let report = lint_files(&files, &real_allowlist());
    for name in OLD_HARDCODED_LIST {
        assert!(
            report.taint.reachable.contains(name),
            "`{name}` was in the old hard-coded trace-affecting list but is not \
             reachable from the computed roots: {:?}",
            report.taint.reachable
        );
    }
    assert!(report.taint.roots.contains("core"), "roots: {:?}", report.taint.roots);
    // The observability layer is reachable but audited out via [[exempt]].
    assert!(report.taint.reachable.contains("obs"));
    assert!(!report.taint.trace_affecting.contains("obs"));
}

#[test]
fn the_hardcoded_trace_list_stays_deleted() {
    let src = std::fs::read_to_string(repo_root().join("crates/lint/src/rules.rs")).unwrap();
    assert!(
        !src.contains(concat!("TRACE_", "AFFECTING")),
        "the hard-coded trace-affecting crate list must stay deleted from the \
         rules module; D8 computes the set from the use graph"
    );
}

// --- D8 fixtures: root detection TP/TN ---

fn fixture(name: &str) -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn scan_fixture_as(name: &str, path: &str) -> ScannedFile {
    ScannedFile::new(file_context(Path::new(path)), &fixture(name))
}

#[test]
fn step_record_construction_marks_a_root_crate() {
    let files = vec![scan_fixture_as("tp_d8.rs", "crates/baselines/src/fixture.rs")];
    let taint = compute_taint(&files, &[]);
    assert!(taint.roots.contains("baselines"), "roots: {:?}", taint.roots);
}

#[test]
fn step_record_construction_in_tests_is_not_a_root() {
    let files = vec![scan_fixture_as("tn_d8.rs", "crates/baselines/src/fixture.rs")];
    let taint = compute_taint(&files, &[]);
    assert!(taint.roots.is_empty(), "roots: {:?}", taint.roots);
    // An empty workspace with no roots is a self-check error, not silence.
    assert!(taint.errors.iter().any(|e| e.contains("no trace-writing roots")));
}

// --- machine-readable output ---

#[test]
fn json_rendering_of_the_real_workspace_is_clean_and_complete() {
    let files = scanned_workspace("", |s| s.to_string());
    let report = lint_files(&files, &real_allowlist());
    let json = render_json(&report);
    assert!(json.contains("\"clean\": true"), "{json}");
    assert!(json.contains("\"errors\": [\n  ]") || json.contains("\"errors\": []"), "{json}");
    assert!(json.contains("\"trace_affecting\": ["));
    // Allowlisted debt is reported, flagged allowed — not hidden.
    assert!(json.contains("\"allowed\": true"), "{json}");
    assert!(!json.contains("\"allowed\": false"), "unallowed finding in a clean run: {json}");
}

#[test]
fn json_rendering_of_a_mutated_workspace_reports_the_break() {
    let files = scanned_workspace(CHECKPOINT, |src| without_builder_line(src, "session_seed"));
    let report = lint_files(&files, &real_allowlist());
    let json = render_json(&report);
    assert!(json.contains("\"clean\": false"), "{json}");
    assert!(json.contains("session_seed"), "{json}");
    assert!(json.contains("\"allowed\": false"), "{json}");
}
