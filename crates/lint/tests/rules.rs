//! Fixture-driven true-positive / true-negative coverage for every rule,
//! pragma and allowlist handling, and the workspace burn-down ratchet.

use comet_lint::config::{evaluate, parse_allowlist};
use comet_lint::rules::{scan_file, FileContext, Finding, Rule, Scope};
use std::path::Path;

/// The checked-in `lint.toml` burn-down total. Lowering it (migrating debt
/// to `CometError`) means updating this constant in the same change; CI
/// fails if the allowlist grows OR silently shrinks without review.
const EXPECTED_BURN_DOWN: usize = 16;

fn fixture(name: &str) -> Vec<u8> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The production pipeline computes the trace-affecting set from the use
/// graph (D8); fixture scans pin an explicit scope so each rule's gating
/// is tested in isolation.
fn fixture_scope() -> Scope {
    Scope::of(["core", "ml", "bayes", "jenga", "baselines", "frame", "detect", "par"])
}

/// Scan a fixture as if it lived at `crates/<crate_name>/src/fixture.rs`.
fn scan(name: &str, crate_name: &str) -> Vec<Finding> {
    let ctx = FileContext {
        path: format!("crates/{crate_name}/src/fixture.rs"),
        crate_name: crate_name.to_string(),
    };
    scan_file(&ctx, &fixture(name), &fixture_scope())
}

fn rules_of(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

// --- true positives: each rule fires on its dedicated fixture ---

#[test]
fn d1_fires_on_hash_collections_in_trace_affecting_crate() {
    let found = scan("tp_d1.rs", "core");
    assert!(rules_of(&found).contains(&Rule::D1), "{found:?}");
    // Both the HashMap and the HashSet body mentions fire; uses are exempt.
    assert!(found.iter().filter(|f| f.rule == Rule::D1).count() >= 2, "{found:?}");
}

#[test]
fn d2_fires_on_partial_cmp_and_f64_max() {
    let found = scan("tp_d2.rs", "ml");
    assert!(found.iter().filter(|f| f.rule == Rule::D2).count() >= 2, "{found:?}");
}

#[test]
fn d3_fires_on_instant_and_thread_rng() {
    let found = scan("tp_d3.rs", "core");
    assert!(found.iter().filter(|f| f.rule == Rule::D3).count() >= 2, "{found:?}");
}

#[test]
fn d4_fires_on_unwrap_expect_and_panic() {
    let found = scan("tp_d4.rs", "core");
    assert!(found.iter().filter(|f| f.rule == Rule::D4).count() >= 3, "{found:?}");
}

#[test]
fn d5_fires_on_unjustified_unsafe() {
    let found = scan("tp_d5.rs", "ml");
    assert!(rules_of(&found).contains(&Rule::D5), "{found:?}");
}

#[test]
fn d6_fires_on_raw_float_reductions_in_hot_path() {
    let found = scan("tp_d6.rs", "ml");
    assert!(found.iter().filter(|f| f.rule == Rule::D6).count() >= 2, "{found:?}");
}

#[test]
fn d9_fires_on_nested_locks_relaxed_and_live_view_make_mut() {
    let found = scan("tp_d9.rs", "par");
    // One nested-lock chain, one Relaxed, one make_mut under a live view.
    assert!(found.iter().filter(|f| f.rule == Rule::D9).count() >= 3, "{found:?}");
}

// --- true negatives: the clean twin of each fixture stays clean ---

#[test]
fn clean_fixtures_produce_no_findings() {
    for name in ["tn_d1.rs", "tn_d2.rs", "tn_d3.rs", "tn_d5.rs", "tn_d6.rs"] {
        let found = scan(name, "ml");
        assert!(found.is_empty(), "{name}: {found:?}");
    }
    // tn_d4.rs keeps an unwrap inside #[cfg(test)], which is exempt.
    let found = scan("tn_d4.rs", "core");
    assert!(found.is_empty(), "tn_d4.rs: {found:?}");
    // tn_d9.rs: scoped sequential locks, SeqCst, drop-before-make_mut.
    let found = scan("tn_d9.rs", "par");
    assert!(found.is_empty(), "tn_d9.rs: {found:?}");
}

// --- scoping: the same source is clean outside a rule's scope ---

#[test]
fn d1_ignores_hash_collections_outside_trace_affecting_crates() {
    let found = scan("tp_d1.rs", "obs");
    assert!(!rules_of(&found).contains(&Rule::D1), "{found:?}");
}

#[test]
fn d3_allows_timing_in_obs() {
    let found = scan("tp_d3.rs", "obs");
    assert!(!rules_of(&found).contains(&Rule::D3), "{found:?}");
}

#[test]
fn d9b_allows_relaxed_in_obs_only() {
    let found = scan("tp_d9.rs", "obs");
    assert!(
        !found.iter().any(|f| f.rule == Rule::D9 && f.message.contains("Relaxed")),
        "{found:?}"
    );
}

#[test]
fn d4_skips_test_and_bench_files() {
    let ctx = FileContext {
        path: "crates/core/tests/fixture.rs".to_string(),
        crate_name: "core".to_string(),
    };
    let found = scan_file(&ctx, &fixture("tp_d4.rs"), &fixture_scope());
    assert!(!rules_of(&found).contains(&Rule::D4), "{found:?}");
}

#[test]
fn d6_only_applies_to_hot_path_crates() {
    let found = scan("tp_d6.rs", "core");
    assert!(!rules_of(&found).contains(&Rule::D6), "{found:?}");
}

// --- pragmas ---

#[test]
fn pragma_suppresses_next_line_for_named_rule() {
    let src = b"pub fn f(xs: &[u32]) -> u32 {\n    // comet-lint: allow(D4) \xe2\x80\x94 reason\n    *xs.first().unwrap()\n}\n";
    let ctx = FileContext { path: "crates/core/src/x.rs".into(), crate_name: "core".into() };
    assert!(scan_file(&ctx, src, &fixture_scope()).is_empty());
}

#[test]
fn pragma_for_other_rule_does_not_suppress() {
    let src = b"pub fn f(xs: &[u32]) -> u32 {\n    // comet-lint: allow(D2) \xe2\x80\x94 wrong rule\n    *xs.first().unwrap()\n}\n";
    let ctx = FileContext { path: "crates/core/src/x.rs".into(), crate_name: "core".into() };
    let found = scan_file(&ctx, src, &fixture_scope());
    assert!(rules_of(&found).contains(&Rule::D4), "{found:?}");
}

#[test]
fn pragma_does_not_leak_past_the_next_line() {
    let src = b"pub fn f(xs: &[u32]) -> u32 {\n    // comet-lint: allow(D4) \xe2\x80\x94 only the next line\n    let a = *xs.first().unwrap();\n    a + *xs.get(1).unwrap()\n}\n";
    let ctx = FileContext { path: "crates/core/src/x.rs".into(), crate_name: "core".into() };
    let found = scan_file(&ctx, src, &fixture_scope());
    assert_eq!(found.iter().filter(|f| f.rule == Rule::D4).count(), 1, "{found:?}");
}

// --- allowlist reconciliation ---

#[test]
fn allowlist_absorbs_exact_count_and_flags_growth() {
    let findings = scan("tp_d5.rs", "ml");
    let n = findings.len();
    let exact = parse_allowlist(&format!(
        "[[allow]]\nrule = \"D5\"\nfile = \"crates/ml/src/fixture.rs\"\ncount = {n}\nreason = \"debt\"\n"
    ))
    .unwrap();
    let eval = evaluate(&findings, &exact);
    assert!(eval.errors.is_empty(), "{:?}", eval.errors);
    assert_eq!(eval.allowed, n);

    let tight = parse_allowlist(
        "[[allow]]\nrule = \"D5\"\nfile = \"crates/ml/src/fixture.rs\"\ncount = 0\nreason = \"debt\"\n",
    )
    .unwrap();
    assert!(!evaluate(&findings, &tight).errors.is_empty());
}

#[test]
fn stale_allowlist_entries_force_a_ratchet_down() {
    let findings = scan("tp_d5.rs", "ml");
    let n = findings.len();
    let slack = parse_allowlist(&format!(
        "[[allow]]\nrule = \"D5\"\nfile = \"crates/ml/src/fixture.rs\"\ncount = {}\nreason = \"debt\"\n",
        n + 3
    ))
    .unwrap();
    let eval = evaluate(&findings, &slack);
    assert!(
        eval.errors.iter().any(|e| e.contains("stale")),
        "expected a stale-entry error: {:?}",
        eval.errors
    );
}

// --- the repository itself ---

fn repo_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

#[test]
fn workspace_is_clean_under_checked_in_allowlist() {
    let root = repo_root();
    let allow = comet_lint::load_allowlist(&root.join("lint.toml")).unwrap();
    let report = comet_lint::lint_workspace(&root, &allow).unwrap();
    assert!(report.is_clean(), "workspace lint errors: {:#?}", report.evaluation.errors);
    assert!(report.files > 50, "suspiciously few files scanned: {}", report.files);
}

#[test]
fn burn_down_total_is_ratcheted() {
    let root = repo_root();
    let allow = comet_lint::load_allowlist(&root.join("lint.toml")).unwrap();
    assert_eq!(
        allow.burn_down_total(),
        EXPECTED_BURN_DOWN,
        "lint.toml burn-down changed; if it went DOWN, update EXPECTED_BURN_DOWN \
         (good!), if it went UP, fix the new violation instead of allowlisting it"
    );
    for entry in &allow.entries {
        assert!(
            !entry.reason.trim().is_empty(),
            "allowlist entry for {} has no reason",
            entry.file
        );
    }
    for entry in &allow.exempt {
        assert!(
            !entry.reason.trim().is_empty(),
            "exempt entry for crate `{}` has no reason",
            entry.name
        );
    }
}
