//! The lexer, the item parser, and the full lint pipeline must be total:
//! arbitrary byte soup (including invalid UTF-8, unterminated literals, and
//! stray quotes) must never panic, and token/item positions must stay in
//! bounds.

use comet_lint::config::Allowlist;
use comet_lint::lexer::lex;
use comet_lint::parse::parse;
use comet_lint::rules::{scan_file, FileContext, ScannedFile, Scope};

fn soup_scope() -> Scope {
    Scope::of(["ml", "core"])
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(bytes in proptest::prop::collection::vec(0u8..=255u8, 0..512)) {
        let lexed = lex(&bytes);
        let nlines = bytes.iter().filter(|&&b| b == b'\n').count() as u32 + 1;
        for t in &lexed.tokens {
            proptest::prop_assert!(t.line >= 1 && t.line <= nlines, "token line {} of {nlines}", t.line);
            proptest::prop_assert!(t.col >= 1);
        }
        for c in &lexed.comments {
            proptest::prop_assert!(c.line >= 1 && c.end_line <= nlines);
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in proptest::prop::collection::vec(0u8..=255u8, 0..512)) {
        let lexed = lex(&bytes);
        let parsed = parse(&lexed, &|_| false);
        for item in &parsed.items {
            proptest::prop_assert!(item.line >= 1);
            if let comet_lint::parse::ItemKind::Fn { body: Some((open, close)), .. } = &item.kind {
                proptest::prop_assert!(open <= close);
                proptest::prop_assert!(*close < lexed.tokens.len());
            }
        }
    }

    #[test]
    fn scan_never_panics_on_arbitrary_bytes(bytes in proptest::prop::collection::vec(0u8..=255u8, 0..512)) {
        let ctx = FileContext {
            path: "crates/ml/src/soup.rs".to_string(),
            crate_name: "ml".to_string(),
        };
        let findings = scan_file(&ctx, &bytes, &soup_scope());
        for f in &findings {
            proptest::prop_assert!(f.line >= 1);
        }
    }

    #[test]
    fn full_pipeline_never_panics_on_arbitrary_bytes(bytes in proptest::prop::collection::vec(0u8..=255u8, 0..512)) {
        // Mount the soup where the D7 fingerprint-coverage pass looks for the
        // checkpoint builder so the graph analyses run on it too.
        let ctx = FileContext {
            path: "crates/core/src/checkpoint.rs".to_string(),
            crate_name: "core".to_string(),
        };
        let file = ScannedFile::new(ctx, &bytes);
        let report = comet_lint::lint_files(&[file], &Allowlist::default());
        let _ = comet_lint::render_json(&report);
    }

    #[test]
    fn lexer_never_panics_on_quote_heavy_soup(
        bytes in proptest::prop::collection::vec(0u8..=8u8, 0..256),
    ) {
        // Map a narrow byte range onto the trickiest characters so raw
        // strings, chars, lifetimes and comments collide constantly.
        let tricky: &[u8] = b"\"'r#b/*\n\\";
        let src: Vec<u8> = bytes.iter().map(|&b| tricky[b as usize % tricky.len()]).collect();
        let _ = lex(&src);
    }
}
