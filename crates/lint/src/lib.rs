//! `comet-lint`: a workspace static-analysis pass enforcing COMET's
//! determinism, NaN-safety, error-handling, and concurrency invariants at
//! the source level (DESIGN.md §11 catalogues the invariants and which
//! rule guards each one; §16 covers the dataflow analyses).
//!
//! The pipeline: walk every workspace crate's sources → lex each file
//! with the hand-rolled comment/string-aware [`lexer`] → [`parse`] items
//! and cross-crate references → compute the trace-taint crate set from
//! the use graph ([`graph`], D8) → match the [`rules`] catalogue over the
//! token stream under that scope → run the workspace-level fingerprint
//! coverage analysis (D7) → drop findings suppressed by pragmas or inside
//! test regions, failing any pragma that suppressed nothing → reconcile
//! what remains against the checked-in `lint.toml` burn-down allowlist
//! ([`config`]). Anything left is a violation and the binary exits
//! nonzero.
//!
//! Dependency-free by design: no `syn`, no proc macros, no crates.io.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod config;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;

use config::{evaluate, Allowlist, Evaluation};
use rules::{scan_with_usage, FileContext, Finding, PragmaKind, ScannedFile, Scope};
use std::fs;
use std::path::{Path, PathBuf};

/// The result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Pragma- and test-region-filtered findings, in path order.
    pub findings: Vec<Finding>,
    /// Allowlist reconciliation (errors + allowed counts), extended with
    /// taint self-check errors and stale-pragma errors.
    pub evaluation: Evaluation,
    /// Number of files scanned.
    pub files: usize,
    /// The D8 trace-taint computation (roots, closure, exemptions).
    pub taint: graph::Taint,
}

impl Report {
    /// Clean means zero errors after allowlist reconciliation.
    pub fn is_clean(&self) -> bool {
        self.evaluation.errors.is_empty()
    }
}

/// Collect the workspace's Rust sources under `root`, repo-relative and
/// sorted: each crate's `src/`, `tests/`, and `benches/`, plus the root
/// crate's `src/`, `tests/`, and `examples/`. Fixture trees (anything
/// outside those directories, e.g. `crates/lint/fixtures/`) are not
/// workspace sources and are skipped.
pub fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let crate_dirs = list_dir(&crates_dir)?.into_iter().filter(|p| p.is_dir());
    for crate_dir in crate_dirs {
        for sub in ["src", "tests", "benches"] {
            collect_rs(&crate_dir.join(sub), &mut files);
        }
    }
    for sub in ["src", "tests", "examples"] {
        collect_rs(&root.join(sub), &mut files);
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .map(|p| p.strip_prefix(root).map(Path::to_path_buf).unwrap_or(p))
        .collect();
    rel.sort();
    Ok(rel)
}

fn list_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Build the [`FileContext`] for a repo-relative path.
pub fn file_context(rel: &Path) -> FileContext {
    let path =
        rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/");
    let crate_name = path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("comet")
        .to_string();
    FileContext { path, crate_name }
}

/// Lint an already-scanned file set against `allow`. This is the whole
/// pipeline minus I/O: taint computation, scoped per-file rules, the D7
/// coverage analysis, pragma-staleness enforcement, and allowlist
/// reconciliation.
pub fn lint_files(files: &[ScannedFile], allow: &Allowlist) -> Report {
    let taint = graph::compute_taint(files, &allow.exempt);
    let scope = Scope { trace_affecting: taint.trace_affecting.clone() };
    let mut findings = Vec::new();
    let mut used_per_file: Vec<Vec<bool>> = Vec::with_capacity(files.len());
    for file in files {
        let mut used = Vec::new();
        findings.extend(scan_with_usage(file, &scope, &mut used));
        used_per_file.push(used);
    }
    let coverage = graph::fingerprint_coverage(files);
    findings.extend(coverage.findings);
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    let mut evaluation = evaluate(&findings, allow);
    evaluation.errors.extend(taint.errors.iter().cloned());
    // Every pragma must earn its keep: an `allow` that suppressed nothing
    // and a `nofp` that excused no uncovered field are dead weight that
    // would silently mask a future regression at their line.
    for (file, used) in files.iter().zip(&used_per_file) {
        for (pragma, &was_used) in file.pragmas.iter().zip(used) {
            match &pragma.kind {
                PragmaKind::Allow { .. } => {
                    if !was_used {
                        evaluation.errors.push(format!(
                            "{}:{}: stale pragma — this `allow` suppresses no findings; \
                             remove it (or the rule regressed and the pragma is masking \
                             nothing)",
                            file.ctx.path, pragma.first_line
                        ));
                    }
                }
                PragmaKind::NoFp => {
                    let key = (file.ctx.path.clone(), pragma.first_line);
                    if !coverage.credited_nofp.contains(&key) {
                        evaluation.errors.push(format!(
                            "{}:{}: stale pragma — this `nofp` excuses no uncovered \
                             fingerprint field; remove it",
                            file.ctx.path, pragma.first_line
                        ));
                    }
                }
            }
        }
    }
    Report { findings, evaluation, files: files.len(), taint }
}

/// Lint the workspace at `root` against `allow`.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> Result<Report, String> {
    let sources = workspace_sources(root)?;
    let mut files = Vec::with_capacity(sources.len());
    for rel in &sources {
        let ctx = file_context(rel);
        let abs = root.join(rel);
        let src = fs::read(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
        files.push(ScannedFile::new(ctx, &src));
    }
    Ok(lint_files(&files, allow))
}

/// Load and parse the allowlist at `path`; a missing file is an empty
/// allowlist (useful for fixture-driven tests).
pub fn load_allowlist(path: &Path) -> Result<Allowlist, String> {
    if !path.exists() {
        return Ok(Allowlist::default());
    }
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    config::parse_allowlist(&text)
}

/// Render a report as a single JSON object (findings, errors, taint) for
/// machine consumers — the CI diff-annotation step parses this. Escaping
/// is hand-rolled like everything else in this crate.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        let allowed = report
            .evaluation
            .allowed_groups
            .iter()
            .any(|(r, file)| *r == f.rule && file == &f.file);
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \
             \"allowed\": {}, \"message\": {}}}",
            json_str(&f.file),
            f.line,
            f.col,
            json_str(f.rule.as_str()),
            allowed,
            json_str(&f.message)
        ));
    }
    out.push_str("\n  ],\n  \"errors\": [");
    for (i, e) in report.evaluation.errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {}", json_str(e)));
    }
    out.push_str("\n  ],\n  \"taint\": {");
    let sets = [
        ("roots", &report.taint.roots),
        ("reachable", &report.taint.reachable),
        ("trace_affecting", &report.taint.trace_affecting),
    ];
    for (i, (name, set)) in sets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let items: Vec<String> = set.iter().map(|s| json_str(s)).collect();
        out.push_str(&format!("\n    \"{name}\": [{}]", items.join(", ")));
    }
    out.push_str(&format!(
        "\n  }},\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
        report.files,
        report.is_clean()
    ));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scanned(path: &str, src: &str) -> ScannedFile {
        ScannedFile::new(file_context(Path::new(path)), src.as_bytes())
    }

    /// A minimal workspace with a trace-writing root so the D8 self-check
    /// passes; D7's targets are absent, so its self-check findings are
    /// present unless a test allowlists them.
    fn base_files() -> Vec<ScannedFile> {
        vec![scanned("crates/core/src/trace.rs", "pub struct CleaningTrace { pub n: usize }")]
    }

    #[test]
    fn lint_files_reports_taint_and_d7_self_checks() {
        let report = lint_files(&base_files(), &Allowlist::default());
        assert_eq!(report.taint.roots, ["core".to_string()].into());
        // The D7 targets (config structs, checkpoint builder) are missing
        // from this tiny workspace: self-check findings, not silence.
        assert!(report.findings.iter().any(|f| f.rule == rules::Rule::D7));
        assert!(!report.is_clean());
    }

    #[test]
    fn stale_allow_pragma_is_an_error() {
        let mut files = base_files();
        files.push(scanned(
            "crates/core/src/x.rs",
            "fn f() {\n    // comet-lint: allow(D4)\n    let y = 1;\n}",
        ));
        let report = lint_files(&files, &Allowlist::default());
        assert!(
            report
                .evaluation
                .errors
                .iter()
                .any(|e| e.contains("stale pragma") && e.contains("crates/core/src/x.rs:2")),
            "{:?}",
            report.evaluation.errors
        );
    }

    #[test]
    fn used_allow_pragma_is_not_stale() {
        let mut files = base_files();
        files.push(scanned(
            "crates/core/src/x.rs",
            "fn f() {\n    // comet-lint: allow(D4)\n    x.unwrap();\n}",
        ));
        let report = lint_files(&files, &Allowlist::default());
        assert!(
            !report.evaluation.errors.iter().any(|e| e.contains("crates/core/src/x.rs")),
            "{:?}",
            report.evaluation.errors
        );
    }

    #[test]
    fn stale_nofp_pragma_is_an_error() {
        let mut files = base_files();
        // No fingerprint analysis credits this nofp (the D7 targets are
        // missing entirely), so it must fail as stale.
        files.push(scanned(
            "crates/core/src/y.rs",
            "pub struct Other {\n    // comet-lint: nofp — not a fingerprinted struct\n    pub a: u8,\n}",
        ));
        let report = lint_files(&files, &Allowlist::default());
        assert!(
            report.evaluation.errors.iter().any(|e| e.contains("stale pragma")
                && e.contains("crates/core/src/y.rs:2")
                && e.contains("nofp")),
            "{:?}",
            report.evaluation.errors
        );
    }

    #[test]
    fn render_json_is_well_formed_enough_to_round_trip_quotes() {
        let report = lint_files(&base_files(), &Allowlist::default());
        let json = render_json(&report);
        assert!(json.contains("\"findings\": ["));
        assert!(json.contains("\"taint\": {"));
        assert!(json.contains("\"roots\": [\"core\"]"));
        assert!(json.contains("\"clean\": false"));
        // Message text with quotes/backslashes must be escaped.
        assert!(!json.contains("\\`"));
        let quoted = json_str("a \"b\" \\ c\nd");
        assert_eq!(quoted, "\"a \\\"b\\\" \\\\ c\\nd\"");
    }
}
