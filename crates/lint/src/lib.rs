//! `comet-lint`: a workspace static-analysis pass enforcing COMET's
//! determinism, NaN-safety, and error-handling invariants at the source
//! level (DESIGN.md §11 catalogues the invariants and which rule guards
//! each one).
//!
//! The pipeline: walk every workspace crate's sources → lex each file
//! with the hand-rolled comment/string-aware [`lexer`] → match the
//! [`rules`] catalogue (D1–D6) over the token stream → drop findings
//! suppressed by `// comet-lint: allow(..)` pragmas or inside test
//! regions → reconcile what remains against the checked-in `lint.toml`
//! burn-down allowlist ([`config`]). Anything left is a violation and
//! the binary exits nonzero.
//!
//! Dependency-free by design: no `syn`, no proc macros, no crates.io.

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod config;
pub mod lexer;
pub mod rules;

use config::{evaluate, Allowlist, Evaluation};
use rules::{scan_file, FileContext, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// The result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Pragma- and test-region-filtered findings, in path order.
    pub findings: Vec<Finding>,
    /// Allowlist reconciliation (errors + allowed counts).
    pub evaluation: Evaluation,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    /// Clean means zero errors after allowlist reconciliation.
    pub fn is_clean(&self) -> bool {
        self.evaluation.errors.is_empty()
    }
}

/// Collect the workspace's Rust sources under `root`, repo-relative and
/// sorted: each crate's `src/`, `tests/`, and `benches/`, plus the root
/// crate's `src/`, `tests/`, and `examples/`. Fixture trees (anything
/// outside those directories, e.g. `crates/lint/fixtures/`) are not
/// workspace sources and are skipped.
pub fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let crate_dirs = list_dir(&crates_dir)?.into_iter().filter(|p| p.is_dir());
    for crate_dir in crate_dirs {
        for sub in ["src", "tests", "benches"] {
            collect_rs(&crate_dir.join(sub), &mut files);
        }
    }
    for sub in ["src", "tests", "examples"] {
        collect_rs(&root.join(sub), &mut files);
    }
    let mut rel: Vec<PathBuf> = files
        .into_iter()
        .map(|p| p.strip_prefix(root).map(Path::to_path_buf).unwrap_or(p))
        .collect();
    rel.sort();
    Ok(rel)
}

fn list_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Build the [`FileContext`] for a repo-relative path.
pub fn file_context(rel: &Path) -> FileContext {
    let path =
        rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/");
    let crate_name = path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("comet")
        .to_string();
    FileContext { path, crate_name }
}

/// Lint the workspace at `root` against `allow`.
pub fn lint_workspace(root: &Path, allow: &Allowlist) -> Result<Report, String> {
    let sources = workspace_sources(root)?;
    let mut findings = Vec::new();
    let mut files = 0usize;
    for rel in &sources {
        let ctx = file_context(rel);
        let abs = root.join(rel);
        let src = fs::read(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
        findings.extend(scan_file(&ctx, &src));
        files += 1;
    }
    let evaluation = evaluate(&findings, allow);
    Ok(Report { findings, evaluation, files })
}

/// Load and parse the allowlist at `path`; a missing file is an empty
/// allowlist (useful for fixture-driven tests).
pub fn load_allowlist(path: &Path) -> Result<Allowlist, String> {
    if !path.exists() {
        return Ok(Allowlist::default());
    }
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    config::parse_allowlist(&text)
}
