//! The COMET rule catalogue (D1–D6) and the per-file scan driver.
//!
//! Rules operate on the token stream from [`crate::lexer`], so nothing in
//! a comment or string literal can trigger them, plus two side tables:
//! `// comet-lint: allow(..)` pragmas harvested from comments, and
//! test-region token ranges (`#[cfg(test)]` modules, `#[test]` functions)
//! where determinism and error-handling rules do not apply.

use crate::lexer::{lex, Comment, Tok, Token};
use std::fmt;

/// The six COMET invariant rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in trace-affecting crates: iteration order
    /// is seeded per-process, so any iteration (now or added later) can
    /// silently reorder trace-affecting work. Use `BTreeMap`/`BTreeSet`,
    /// or sort before iterating and carry a pragma.
    D1,
    /// No `partial_cmp` sorts or `f64::max`/`f64::min` on score-like
    /// values: NaN either panics the comparator or silently drops out of
    /// the reduction. Use `total_cmp` or the NaN-sanitized helpers.
    D2,
    /// No entropy or wall-clock sources outside `comet-obs` and bench
    /// binaries: all randomness must derive from the session seed.
    D3,
    /// No `.unwrap()`/`.expect()`/`panic!` in non-test library code: use
    /// the `CometError` taxonomy.
    D4,
    /// Every `unsafe` must carry a `// SAFETY:` comment.
    D5,
    /// No raw `sum::<f64>()`/`sum::<f32>()`/`.fold(0.0, ..)` float
    /// reductions in the `comet-ml`/`comet-bayes` hot paths: accumulation
    /// order is part of the trace contract, so route through the
    /// fixed-order `kernels` primitives. Only the lane-ordered tier
    /// modules (`kernels/{scalar,lanes8,x86}.rs`) are exempt.
    D6,
}

pub const ALL_RULES: [Rule; 6] = [Rule::D1, Rule::D2, Rule::D3, Rule::D4, Rule::D5, Rule::D6];

impl Rule {
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
        }
    }

    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "D1" | "d1" => Some(Rule::D1),
            "D2" | "d2" => Some(Rule::D2),
            "D3" | "d3" => Some(Rule::D3),
            "D4" | "d4" => Some(Rule::D4),
            "D5" | "d5" => Some(Rule::D5),
            "D6" | "d6" => Some(Rule::D6),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic: `file:line:col: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}: {}", self.file, self.line, self.col, self.rule, self.message)
    }
}

/// What the scanner needs to know about a file beyond its bytes.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Repo-relative path with forward slashes (diagnostic + allowlist key).
    pub path: String,
    /// Workspace crate directory name (`core`, `ml`, …; `comet` for the
    /// root crate).
    pub crate_name: String,
}

/// Crates whose source participates in producing the cleaning trace: any
/// order-of-iteration or NaN-comparison slip here changes recommendations.
const TRACE_AFFECTING: [&str; 7] = ["core", "ml", "bayes", "jenga", "baselines", "frame", "detect"];

/// Crates allowed to read wall clocks / entropy: the observability layer,
/// the timing shim, and bench binaries measure time *by design*. The serve
/// daemon is the *service* layer — deadlines, backoff, and endpoint
/// latency are wall-clock concepts there; the sessions it hosts still
/// never read clocks (a deadline reaches comet-core as an externally
/// raised flag, DESIGN.md §14).
const TIMING_EXEMPT: [&str; 4] = ["obs", "criterion", "bench", "serve"];

/// Crates whose float reductions sit on the evaluation hot path and must
/// use the fixed-order `kernels` primitives.
const HOT_PATH: [&str; 2] = ["ml", "bayes"];

impl FileContext {
    fn trace_affecting(&self) -> bool {
        TRACE_AFFECTING.contains(&self.crate_name.as_str())
    }

    fn timing_exempt(&self) -> bool {
        TIMING_EXEMPT.contains(&self.crate_name.as_str())
    }

    fn hot_path(&self) -> bool {
        // Only the lane-ordered primitive modules may spell raw reductions;
        // the dispatcher (`kernels/mod.rs`) and everything above it must
        // route through them, so D6 scans those too.
        const LANE_ORDERED: [&str; 3] =
            ["kernels/scalar.rs", "kernels/lanes8.rs", "kernels/x86.rs"];
        HOT_PATH.contains(&self.crate_name.as_str())
            && !LANE_ORDERED.iter().any(|m| self.path.ends_with(m))
    }

    /// Test-ish files: integration tests, benches, examples.
    fn is_test_file(&self) -> bool {
        self.path.split('/').any(|c| c == "tests" || c == "benches" || c == "examples")
    }

    /// Binary targets (`src/bin/*`, `main.rs`).
    fn is_bin(&self) -> bool {
        self.path.contains("/src/bin/") || self.path.ends_with("main.rs")
    }

    /// Non-test library code: where D4 (typed errors) applies.
    fn is_library(&self) -> bool {
        !self.is_test_file() && !self.is_bin()
    }
}

/// Scan one file's source and return its (pragma- and test-region-
/// filtered) findings.
pub fn scan_file(ctx: &FileContext, src: &[u8]) -> Vec<Finding> {
    let lexed = lex(src);
    let pragmas = collect_pragmas(&lexed.comments);
    let (whole_file_test, test_ranges) = test_regions(&lexed.tokens);
    let matcher = Matcher { ctx, ts: &lexed.tokens, comments: &lexed.comments };
    let mut findings = Vec::new();
    for (k, raw) in matcher.scan() {
        let in_test = whole_file_test
            || ctx.is_test_file()
            || test_ranges.iter().any(|&(a, b)| k >= a && k <= b);
        // D5 (`SAFETY:` comments) holds even in test code — unsafe is
        // unsafe wherever it compiles. Every other rule guards the
        // production trace and stands down inside tests.
        if in_test && raw.rule != Rule::D5 {
            continue;
        }
        if pragmas.iter().any(|p| p.suppresses(raw.rule, raw.line)) {
            continue;
        }
        findings.push(raw);
    }
    findings
}

/// A `// comet-lint: allow(D1, D4)` pragma: suppresses those rules on the
/// comment's own lines and on the first line after it.
#[derive(Debug)]
struct Pragma {
    rules: Vec<Rule>,
    all: bool,
    first_line: u32,
    last_line: u32,
}

impl Pragma {
    fn suppresses(&self, rule: Rule, line: u32) -> bool {
        (self.all || self.rules.contains(&rule))
            && line >= self.first_line
            && line <= self.last_line + 1
    }
}

fn collect_pragmas(comments: &[Comment]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("comet-lint:") else { continue };
        let rest = &c.text[at + "comet-lint:".len()..];
        let Some(open) = rest.find("allow(") else { continue };
        let args = &rest[open + "allow(".len()..];
        let Some(close) = args.find(')') else { continue };
        let mut rules = Vec::new();
        let mut all = false;
        for part in args[..close].split(',') {
            let part = part.trim();
            if part.eq_ignore_ascii_case("all") {
                all = true;
            } else if let Some(r) = Rule::parse(part) {
                rules.push(r);
            }
        }
        if all || !rules.is_empty() {
            out.push(Pragma { rules, all, first_line: c.line, last_line: c.end_line });
        }
    }
    out
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` / `#[bench]`
/// items, plus whether a `#![cfg(test)]` inner attribute marks the whole
/// file as test code.
fn test_regions(ts: &[Token]) -> (bool, Vec<(usize, usize)>) {
    let mut ranges = Vec::new();
    let mut whole_file = false;
    let mut k = 0;
    while k < ts.len() {
        if !is_punct(ts, k, b'#') {
            k += 1;
            continue;
        }
        let inner = is_punct(ts, k + 1, b'!');
        let open = if inner { k + 2 } else { k + 1 };
        if !is_punct(ts, open, b'[') {
            k += 1;
            continue;
        }
        let Some(close) = matching(ts, open, b'[', b']') else {
            k += 1;
            continue;
        };
        if !attr_is_test(&ts[open..=close]) {
            k = close + 1;
            continue;
        }
        if inner {
            whole_file = true;
            k = close + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut at = close + 1;
        while is_punct(ts, at, b'#') && is_punct(ts, at + 1, b'[') {
            match matching(ts, at + 1, b'[', b']') {
                Some(c) => at = c + 1,
                None => break,
            }
        }
        // The item body is the first brace block before a `;` (a `;`
        // first means a body-less item like `mod tests;` — nothing to
        // mark in this file).
        let mut body_open = None;
        let mut j = at;
        while j < ts.len() {
            match ts[j].tok {
                Tok::Punct(b'{') => {
                    body_open = Some(j);
                    break;
                }
                Tok::Punct(b';') => break,
                _ => j += 1,
            }
        }
        if let Some(bo) = body_open {
            if let Some(bc) = matching(ts, bo, b'{', b'}') {
                ranges.push((k, bc));
                k = bc + 1;
                continue;
            }
            // Unterminated body: conservatively treat the rest of the
            // file as part of the test item.
            ranges.push((k, ts.len().saturating_sub(1)));
            break;
        }
        k = close + 1;
    }
    (whole_file, ranges)
}

/// Does an attribute token slice (`[` .. `]`) gate on `test`?
/// `#[test]`, `#[bench]`, `#[cfg(test)]`, `#[cfg(all(test, ..))]` do;
/// `#[cfg(not(test))]` does not (it is the *non*-test configuration).
fn attr_is_test(attr: &[Token]) -> bool {
    let mut saw_test = false;
    for t in attr {
        if let Tok::Ident(id) = &t.tok {
            match id.as_str() {
                "not" => return false,
                "test" | "bench" => saw_test = true,
                _ => {}
            }
        }
    }
    saw_test
}

fn is_punct(ts: &[Token], k: usize, b: u8) -> bool {
    matches!(ts.get(k), Some(t) if t.tok == Tok::Punct(b))
}

fn ident_at(ts: &[Token], k: usize) -> Option<&str> {
    match ts.get(k) {
        Some(Token { tok: Tok::Ident(s), .. }) => Some(s.as_str()),
        _ => None,
    }
}

fn is_float_at(ts: &[Token], k: usize) -> bool {
    matches!(ts.get(k), Some(Token { tok: Tok::Number { is_float: true }, .. }))
}

/// Find the index of the token closing the bracket opened at `open`.
fn matching(ts: &[Token], open: usize, ob: u8, cb: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in ts.iter().enumerate().skip(open) {
        if t.tok == Tok::Punct(ob) {
            depth += 1;
        } else if t.tok == Tok::Punct(cb) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

struct Matcher<'a> {
    ctx: &'a FileContext,
    ts: &'a [Token],
    comments: &'a [Comment],
}

impl Matcher<'_> {
    /// Run every applicable rule; returns `(token index, finding)` pairs
    /// *before* pragma/test-region filtering.
    fn scan(&self) -> Vec<(usize, Finding)> {
        let mut out = Vec::new();
        let mut in_use = false; // inside a `use …;` declaration
        for k in 0..self.ts.len() {
            if ident_at(self.ts, k) == Some("use") {
                in_use = true;
            } else if is_punct(self.ts, k, b';') {
                in_use = false;
            }
            self.d1(k, in_use, &mut out);
            self.d2(k, &mut out);
            self.d3(k, &mut out);
            self.d4(k, &mut out);
            self.d5(k, &mut out);
            self.d6(k, &mut out);
        }
        out
    }

    fn emit(&self, out: &mut Vec<(usize, Finding)>, k: usize, rule: Rule, message: String) {
        let t = &self.ts[k];
        out.push((
            k,
            Finding { rule, file: self.ctx.path.clone(), line: t.line, col: t.col, message },
        ));
    }

    fn d1(&self, k: usize, in_use: bool, out: &mut Vec<(usize, Finding)>) {
        if !self.ctx.trace_affecting() || in_use {
            return;
        }
        if let Some(id @ ("HashMap" | "HashSet")) = ident_at(self.ts, k) {
            self.emit(
                out,
                k,
                Rule::D1,
                format!(
                    "`{id}` in a trace-affecting crate: iteration order is seeded \
                     per-process; use `BTree{}` or sort before iterating",
                    &id[4..]
                ),
            );
        }
    }

    fn d2(&self, k: usize, out: &mut Vec<(usize, Finding)>) {
        if !self.ctx.trace_affecting() {
            return;
        }
        let ts = self.ts;
        if ident_at(ts, k) == Some("partial_cmp") {
            self.emit(
                out,
                k,
                Rule::D2,
                "`partial_cmp` on floats panics or mis-sorts on NaN; use `total_cmp` \
                 over a NaN-sanitized key"
                    .into(),
            );
            return;
        }
        if ident_at(ts, k) == Some("f64") && is_punct(ts, k + 1, b':') && is_punct(ts, k + 2, b':')
        {
            if let Some(m @ ("max" | "min")) = ident_at(ts, k + 3) {
                self.emit(
                    out,
                    k,
                    Rule::D2,
                    format!(
                        "`f64::{m}` silently drops NaN out of reductions; use a \
                         `total_cmp` fold or the NaN-sanitized helpers"
                    ),
                );
                return;
            }
        }
        if is_punct(ts, k, b'.') && is_punct(ts, k + 2, b'(') {
            if let Some(m @ ("max" | "min")) = ident_at(ts, k + 1) {
                if is_float_at(ts, k + 3) || ident_at(ts, k + 3) == Some("f64") {
                    self.emit(
                        out,
                        k + 1,
                        Rule::D2,
                        format!(
                            "float `.{m}(..)` ignores a NaN receiver; use `total_cmp` \
                             or the NaN-sanitized helpers"
                        ),
                    );
                }
            }
        }
    }

    fn d3(&self, k: usize, out: &mut Vec<(usize, Finding)>) {
        if self.ctx.timing_exempt() {
            return;
        }
        let ts = self.ts;
        if let Some(id @ ("thread_rng" | "from_entropy" | "OsRng" | "getrandom" | "SystemTime")) =
            ident_at(ts, k)
        {
            self.emit(
                out,
                k,
                Rule::D3,
                format!(
                    "`{id}` is an entropy/wall-clock source; all randomness must \
                     derive from the session seed (comet-obs and bench binaries only)"
                ),
            );
            return;
        }
        if ident_at(ts, k) == Some("Instant")
            && is_punct(ts, k + 1, b':')
            && is_punct(ts, k + 2, b':')
            && ident_at(ts, k + 3) == Some("now")
        {
            self.emit(
                out,
                k,
                Rule::D3,
                "`Instant::now` reads the wall clock; timing belongs to comet-obs \
                 and bench binaries (pragma observability spans that never feed \
                 trace decisions)"
                    .into(),
            );
        }
    }

    fn d4(&self, k: usize, out: &mut Vec<(usize, Finding)>) {
        if !self.ctx.is_library() {
            return;
        }
        let ts = self.ts;
        if is_punct(ts, k, b'.') && is_punct(ts, k + 2, b'(') {
            if let Some(m @ ("unwrap" | "expect")) = ident_at(ts, k + 1) {
                self.emit(
                    out,
                    k + 1,
                    Rule::D4,
                    format!("`.{m}(..)` in library code panics the session; return a `CometError`"),
                );
                return;
            }
        }
        if let Some(id @ ("panic" | "unreachable" | "todo" | "unimplemented")) = ident_at(ts, k) {
            if is_punct(ts, k + 1, b'!') {
                self.emit(
                    out,
                    k,
                    Rule::D4,
                    format!("`{id}!` in library code aborts the session; return a `CometError`"),
                );
            }
        }
    }

    fn d5(&self, k: usize, out: &mut Vec<(usize, Finding)>) {
        if ident_at(self.ts, k) != Some("unsafe") {
            return;
        }
        let line = self.ts[k].line;
        let documented = self
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.end_line <= line && c.end_line + 3 >= line);
        if !documented {
            self.emit(
                out,
                k,
                Rule::D5,
                "`unsafe` without a `// SAFETY:` comment on the preceding lines".into(),
            );
        }
    }

    fn d6(&self, k: usize, out: &mut Vec<(usize, Finding)>) {
        if !self.ctx.hot_path() {
            return;
        }
        let ts = self.ts;
        if ident_at(ts, k) == Some("sum")
            && is_punct(ts, k + 1, b':')
            && is_punct(ts, k + 2, b':')
            && is_punct(ts, k + 3, b'<')
            && matches!(ident_at(ts, k + 4), Some("f64") | Some("f32"))
        {
            self.emit(
                out,
                k,
                Rule::D6,
                "raw `sum::<f64>()`/`sum::<f32>()` reduction in a hot-path crate; \
                 accumulation order is part of the trace contract — use the \
                 fixed-order `kernels` primitives"
                    .into(),
            );
            return;
        }
        if is_punct(ts, k, b'.')
            && ident_at(ts, k + 1) == Some("fold")
            && is_punct(ts, k + 2, b'(')
            && (is_float_at(ts, k + 3) || matches!(ident_at(ts, k + 3), Some("f64") | Some("f32")))
        {
            self.emit(
                out,
                k + 1,
                Rule::D6,
                "raw float `.fold(..)` reduction in a hot-path crate; use the \
                 fixed-order `kernels` primitives"
                    .into(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str) -> FileContext {
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next())
            .unwrap_or("comet")
            .to_string();
        FileContext { path: path.to_string(), crate_name }
    }

    fn rules_found(path: &str, src: &str) -> Vec<Rule> {
        scan_file(&ctx(path), src.as_bytes()).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn use_declarations_are_not_d1_findings() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        let found = rules_found("crates/core/src/x.rs", src);
        assert_eq!(found, vec![Rule::D1, Rule::D1]);
    }

    #[test]
    fn non_trace_crates_skip_d1_d2_d6() {
        let src = "fn f() { let m = HashMap::new(); a.partial_cmp(b); x.iter().sum::<f64>(); }";
        assert!(rules_found("crates/obs/src/x.rs", src).is_empty());
        assert_eq!(rules_found("crates/core/src/x.rs", src).len(), 2); // D1 + D2; D6 is ml/bayes only
    }

    #[test]
    fn d6_covers_f32_reductions() {
        let src = "fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }";
        assert_eq!(rules_found("crates/ml/src/x.rs", src), vec![Rule::D6]);
        let fold = "fn f(xs: &[f32]) -> f32 { xs.iter().fold(0.0f32, |a, b| a + b) }";
        assert_eq!(rules_found("crates/ml/src/x.rs", fold), vec![Rule::D6]);
    }

    #[test]
    fn only_lane_ordered_tier_modules_are_d6_exempt() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert!(rules_found("crates/ml/src/kernels/scalar.rs", src).is_empty());
        assert!(rules_found("crates/ml/src/kernels/lanes8.rs", src).is_empty());
        assert!(rules_found("crates/ml/src/kernels/x86.rs", src).is_empty());
        // The dispatcher must route through the tier primitives, so it IS scanned.
        assert_eq!(rules_found("crates/ml/src/kernels/mod.rs", src), vec![Rule::D6]);
    }

    #[test]
    fn test_regions_stand_down_except_d5() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); unsafe { y(); } }\n}";
        let found = rules_found("crates/core/src/x.rs", src);
        assert_eq!(found, vec![Rule::D5]);
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }";
        assert_eq!(rules_found("crates/core/src/x.rs", src), vec![Rule::D4]);
    }

    #[test]
    fn pragmas_suppress_next_line_only() {
        let src = "fn f() {\n    // comet-lint: allow(D4)\n    x.unwrap();\n    y.unwrap();\n}";
        let found = scan_file(&ctx("crates/core/src/x.rs"), src.as_bytes());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn safety_comment_satisfies_d5() {
        let ok = "// SAFETY: the slice is checked above.\nunsafe { f(); }";
        assert!(rules_found("crates/ml/src/x.rs", ok).is_empty());
        let bad = "unsafe { f(); }";
        assert_eq!(rules_found("crates/ml/src/x.rs", bad), vec![Rule::D5]);
    }

    #[test]
    fn unwrap_or_variants_are_not_d4() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 0); x.unwrap_or_default(); }";
        assert!(rules_found("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_path_segments_are_not_d4() {
        let src = "fn f() { std::panic::catch_unwind(|| 1); }";
        assert!(rules_found("crates/core/src/x.rs", src).is_empty());
    }
}
