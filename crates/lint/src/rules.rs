//! The COMET rule catalogue (D1–D9) and the per-file scan driver.
//!
//! Rules operate on the token stream from [`crate::lexer`], so nothing in
//! a comment or string literal can trigger them, plus two side tables:
//! `comet-lint` pragmas harvested from comments, and test-region token
//! ranges (`#[cfg(test)]` modules, `#[test]` functions) where determinism
//! and error-handling rules do not apply.
//!
//! D1–D6 are token-local. D7 (fingerprint coverage) and D8 (trace-taint
//! reachability) are workspace-level dataflow analyses in [`crate::graph`];
//! the `Rule` variants exist here so findings, pragmas, and the allowlist
//! treat all nine rules uniformly. D9 is per-file but flow-sensitive: its
//! third check walks parsed `fn` bodies from [`crate::parse`].

use crate::lexer::{lex, Comment, Lexed, Tok, Token};
use crate::parse::{ident_at, is_float_at, is_punct, matching, parse, Parsed};
use std::collections::BTreeSet;
use std::fmt;

/// The nine COMET invariant rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in trace-affecting crates: iteration order
    /// is seeded per-process, so any iteration (now or added later) can
    /// silently reorder trace-affecting work. Use `BTreeMap`/`BTreeSet`,
    /// or sort before iterating and carry a pragma.
    D1,
    /// No `partial_cmp` sorts or `f64::max`/`f64::min` on score-like
    /// values: NaN either panics the comparator or silently drops out of
    /// the reduction. Use `total_cmp` or the NaN-sanitized helpers.
    D2,
    /// No entropy or wall-clock sources outside `comet-obs` and bench
    /// binaries: all randomness must derive from the session seed.
    D3,
    /// No `.unwrap()`/`.expect()`/`panic!` in non-test library code: use
    /// the `CometError` taxonomy.
    D4,
    /// Every `unsafe` must carry a `// SAFETY:` comment.
    D5,
    /// No raw `sum::<f64>()`/`sum::<f32>()`/`.fold(0.0, ..)` float
    /// reductions in the `comet-ml`/`comet-bayes` hot paths: accumulation
    /// order is part of the trace contract, so route through the
    /// fixed-order `kernels` primitives. Only the lane-ordered tier
    /// modules (`kernels/{scalar,lanes8,x86}.rs`) are exempt.
    D6,
    /// Fingerprint coverage: every `CometConfig`/`DetectorConfig` field
    /// must flow into its checkpoint fingerprint (or carry a `nofp`
    /// pragma), every checkpoint header builder parameter must flow into
    /// a written header field, and the header keys the builder writes
    /// must round-trip through the loader. A newly added trace-affecting
    /// knob fails CI by default instead of silently breaking resume.
    D7,
    /// Trace-taint reachability: the set of trace-affecting crates is
    /// *computed* from the use/call graph (crates reachable from the
    /// trace-writing roots), not hard-coded. D1–D3 gate on the computed
    /// set; `[[exempt]]` entries in `lint.toml` carve out audited leaves
    /// (the observability layer) and go stale when unreachable.
    D8,
    /// Concurrency rules: no two `.lock()` acquisitions in one statement
    /// chain (lock-ordering hazard), no `Ordering::Relaxed` outside the
    /// audited counter paths, and no `Arc::make_mut`/`Arc::get_mut`
    /// while a borrowing view obtained from `self` may still be live
    /// (the `with_payload_mut` bug class).
    D9,
}

pub const ALL_RULES: [Rule; 9] =
    [Rule::D1, Rule::D2, Rule::D3, Rule::D4, Rule::D5, Rule::D6, Rule::D7, Rule::D8, Rule::D9];

impl Rule {
    pub fn as_str(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::D7 => "D7",
            Rule::D8 => "D8",
            Rule::D9 => "D9",
        }
    }

    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "D1" | "d1" => Some(Rule::D1),
            "D2" | "d2" => Some(Rule::D2),
            "D3" | "d3" => Some(Rule::D3),
            "D4" | "d4" => Some(Rule::D4),
            "D5" | "d5" => Some(Rule::D5),
            "D6" | "d6" => Some(Rule::D6),
            "D7" | "d7" => Some(Rule::D7),
            "D8" | "d8" => Some(Rule::D8),
            "D9" | "d9" => Some(Rule::D9),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One diagnostic: `file:line:col: rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub rule: Rule,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: {}: {}", self.file, self.line, self.col, self.rule, self.message)
    }
}

/// What the scanner needs to know about a file beyond its bytes.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Repo-relative path with forward slashes (diagnostic + allowlist key).
    pub path: String,
    /// Workspace crate directory name (`core`, `ml`, …; `comet` for the
    /// root crate).
    pub crate_name: String,
}

/// The workspace-level facts a per-file scan depends on — today, the
/// computed set of trace-affecting crates from [`crate::graph`]. The
/// production pipeline always computes it; tests construct explicit
/// scopes.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Crates whose source participates in producing the cleaning trace:
    /// any order-of-iteration or NaN-comparison slip here changes
    /// recommendations. Computed as the use-graph closure of the
    /// trace-writing roots (D8), minus audited `[[exempt]]` leaves.
    pub trace_affecting: BTreeSet<String>,
}

impl Scope {
    pub fn of<I, S>(names: I) -> Scope
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Scope { trace_affecting: names.into_iter().map(Into::into).collect() }
    }
}

/// Crates allowed to read wall clocks / entropy: the observability layer,
/// the timing shim, and bench binaries measure time *by design*. The serve
/// daemon is the *service* layer — deadlines, backoff, and endpoint
/// latency are wall-clock concepts there; the sessions it hosts still
/// never read clocks (a deadline reaches comet-core as an externally
/// raised flag, DESIGN.md §14). A crate the taint computation marks
/// trace-affecting is scanned by D3 regardless.
const TIMING_EXEMPT: [&str; 4] = ["obs", "criterion", "bench", "serve"];

/// Crates whose float reductions sit on the evaluation hot path and must
/// use the fixed-order `kernels` primitives.
const HOT_PATH: [&str; 2] = ["ml", "bayes"];

/// The audited lock-free counter layer where `Ordering::Relaxed` is the
/// point (metric counters tolerate reordering; nothing reads them for
/// trace decisions). Everywhere else a Relaxed atomic needs a reviewed
/// `allow(D9)` pragma stating why the ordering is safe.
const RELAXED_AUDITED: [&str; 1] = ["obs"];

impl FileContext {
    fn trace_affecting(&self, scope: &Scope) -> bool {
        scope.trace_affecting.contains(&self.crate_name)
    }

    fn timing_exempt(&self, scope: &Scope) -> bool {
        TIMING_EXEMPT.contains(&self.crate_name.as_str()) && !self.trace_affecting(scope)
    }

    fn hot_path(&self) -> bool {
        // Only the lane-ordered primitive modules may spell raw reductions;
        // the dispatcher (`kernels/mod.rs`) and everything above it must
        // route through them, so D6 scans those too.
        const LANE_ORDERED: [&str; 3] =
            ["kernels/scalar.rs", "kernels/lanes8.rs", "kernels/x86.rs"];
        HOT_PATH.contains(&self.crate_name.as_str())
            && !LANE_ORDERED.iter().any(|m| self.path.ends_with(m))
    }

    /// Test-ish files: integration tests, benches, examples.
    pub fn is_test_file(&self) -> bool {
        self.path.split('/').any(|c| c == "tests" || c == "benches" || c == "examples")
    }

    /// Binary targets (`src/bin/*`, `main.rs`).
    pub fn is_bin(&self) -> bool {
        self.path.contains("/src/bin/") || self.path.ends_with("main.rs")
    }

    /// Non-test library code: where D4 (typed errors) applies.
    pub fn is_library(&self) -> bool {
        !self.is_test_file() && !self.is_bin()
    }
}

/// What a pragma comment does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PragmaKind {
    /// Suppresses the named rules (or all of them) on the comment's own
    /// lines and the first line after it.
    Allow { rules: Vec<Rule>, all: bool },
    /// Declares a config field intentionally absent from its fingerprint
    /// (consumed by the D7 coverage analysis).
    NoFp,
}

/// One harvested pragma comment with its line range. Every pragma must
/// earn its keep: one that suppresses nothing (`Allow`) or covers a field
/// the fingerprint already includes (`NoFp`) fails the gate as stale.
#[derive(Debug, Clone)]
pub struct Pragma {
    pub kind: PragmaKind,
    pub first_line: u32,
    pub last_line: u32,
}

impl Pragma {
    /// Does this pragma suppress `rule` at `line`?
    pub fn suppresses(&self, rule: Rule, line: u32) -> bool {
        match &self.kind {
            PragmaKind::Allow { rules, all } => {
                (*all || rules.contains(&rule)) && self.covers_line(line)
            }
            PragmaKind::NoFp => false,
        }
    }

    /// The lines a pragma applies to: its own plus the first line after.
    pub fn covers_line(&self, line: u32) -> bool {
        line >= self.first_line && line <= self.last_line + 1
    }
}

pub fn collect_pragmas(comments: &[Comment]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for c in comments {
        let Some(at) = c.text.find("comet-lint:") else { continue };
        let rest = &c.text[at + "comet-lint:".len()..];
        if rest.trim_start().starts_with("nofp") {
            out.push(Pragma { kind: PragmaKind::NoFp, first_line: c.line, last_line: c.end_line });
            continue;
        }
        let Some(open) = rest.find("allow(") else { continue };
        let args = &rest[open + "allow(".len()..];
        let Some(close) = args.find(')') else { continue };
        let mut rules = Vec::new();
        let mut all = false;
        for part in args[..close].split(',') {
            let part = part.trim();
            if part.eq_ignore_ascii_case("all") {
                all = true;
            } else if let Some(r) = Rule::parse(part) {
                rules.push(r);
            }
        }
        if all || !rules.is_empty() {
            out.push(Pragma {
                kind: PragmaKind::Allow { rules, all },
                first_line: c.line,
                last_line: c.end_line,
            });
        }
    }
    out
}

/// One workspace source file, lexed and parsed once, shared by the
/// per-file rules and the workspace-level graph analyses.
#[derive(Debug)]
pub struct ScannedFile {
    pub ctx: FileContext,
    pub lexed: Lexed,
    pub parsed: Parsed,
    pub pragmas: Vec<Pragma>,
    pub whole_file_test: bool,
    pub test_ranges: Vec<(usize, usize)>,
}

impl ScannedFile {
    pub fn new(ctx: FileContext, src: &[u8]) -> ScannedFile {
        let lexed = lex(src);
        let pragmas = collect_pragmas(&lexed.comments);
        let (whole_file_test, test_ranges) = test_regions(&lexed.tokens);
        let test_all = whole_file_test || ctx.is_test_file();
        let parsed =
            parse(&lexed, &|k| test_all || test_ranges.iter().any(|&(a, b)| k >= a && k <= b));
        ScannedFile { ctx, lexed, parsed, pragmas, whole_file_test, test_ranges }
    }

    /// Is the token at index `k` inside test-only code?
    pub fn in_test(&self, k: usize) -> bool {
        self.whole_file_test
            || self.ctx.is_test_file()
            || self.test_ranges.iter().any(|&(a, b)| k >= a && k <= b)
    }
}

/// Scan one file under `scope`, marking which of its pragmas suppressed
/// at least one finding in `pragma_used` (resized to `file.pragmas`).
/// Returns the pragma- and test-region-filtered findings.
pub fn scan_with_usage(
    file: &ScannedFile,
    scope: &Scope,
    pragma_used: &mut Vec<bool>,
) -> Vec<Finding> {
    pragma_used.clear();
    pragma_used.resize(file.pragmas.len(), false);
    let matcher =
        Matcher { ctx: &file.ctx, ts: &file.lexed.tokens, comments: &file.lexed.comments, scope };
    let mut raw = matcher.scan();
    raw.extend(d9_flow(file));
    raw.sort_by_key(|(k, _)| *k);
    let mut findings = Vec::new();
    for (k, f) in raw {
        // D5 (`SAFETY:` comments) holds even in test code — unsafe is
        // unsafe wherever it compiles. Every other rule guards the
        // production trace and stands down inside tests.
        if file.in_test(k) && f.rule != Rule::D5 {
            continue;
        }
        let suppressed = file
            .pragmas
            .iter()
            .position(|p| p.suppresses(f.rule, f.line))
            .inspect(|&i| pragma_used[i] = true);
        if suppressed.is_some() {
            continue;
        }
        findings.push(f);
    }
    findings
}

/// Scan one file's source and return its findings (convenience wrapper
/// for fixture-driven tests; pragma usage is discarded).
pub fn scan_file(ctx: &FileContext, src: &[u8], scope: &Scope) -> Vec<Finding> {
    let file = ScannedFile::new(ctx.clone(), src);
    let mut used = Vec::new();
    scan_with_usage(&file, scope, &mut used)
}

/// Token-index ranges covered by `#[cfg(test)]` / `#[test]` / `#[bench]`
/// items, plus whether a `#![cfg(test)]` inner attribute marks the whole
/// file as test code.
fn test_regions(ts: &[Token]) -> (bool, Vec<(usize, usize)>) {
    let mut ranges = Vec::new();
    let mut whole_file = false;
    let mut k = 0;
    while k < ts.len() {
        if !is_punct(ts, k, b'#') {
            k += 1;
            continue;
        }
        let inner = is_punct(ts, k + 1, b'!');
        let open = if inner { k + 2 } else { k + 1 };
        if !is_punct(ts, open, b'[') {
            k += 1;
            continue;
        }
        let Some(close) = matching(ts, open, b'[', b']') else {
            k += 1;
            continue;
        };
        if !attr_is_test(&ts[open..=close]) {
            k = close + 1;
            continue;
        }
        if inner {
            whole_file = true;
            k = close + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut at = close + 1;
        while is_punct(ts, at, b'#') && is_punct(ts, at + 1, b'[') {
            match matching(ts, at + 1, b'[', b']') {
                Some(c) => at = c + 1,
                None => break,
            }
        }
        // The item body is the first brace block before a `;` (a `;`
        // first means a body-less item like `mod tests;` — nothing to
        // mark in this file).
        let mut body_open = None;
        let mut j = at;
        while j < ts.len() {
            match ts[j].tok {
                Tok::Punct(b'{') => {
                    body_open = Some(j);
                    break;
                }
                Tok::Punct(b';') => break,
                _ => j += 1,
            }
        }
        if let Some(bo) = body_open {
            if let Some(bc) = matching(ts, bo, b'{', b'}') {
                ranges.push((k, bc));
                k = bc + 1;
                continue;
            }
            // Unterminated body: conservatively treat the rest of the
            // file as part of the test item.
            ranges.push((k, ts.len().saturating_sub(1)));
            break;
        }
        k = close + 1;
    }
    (whole_file, ranges)
}

/// Does an attribute token slice (`[` .. `]`) gate on `test`?
/// `#[test]`, `#[bench]`, `#[cfg(test)]`, `#[cfg(all(test, ..))]` do;
/// `#[cfg(not(test))]` does not (it is the *non*-test configuration).
fn attr_is_test(attr: &[Token]) -> bool {
    let mut saw_test = false;
    for t in attr {
        if let Tok::Ident(id) = &t.tok {
            match id.as_str() {
                "not" => return false,
                "test" | "bench" => saw_test = true,
                _ => {}
            }
        }
    }
    saw_test
}

struct Matcher<'a> {
    ctx: &'a FileContext,
    ts: &'a [Token],
    comments: &'a [Comment],
    scope: &'a Scope,
}

impl Matcher<'_> {
    /// Run every applicable token-local rule; returns `(token index,
    /// finding)` pairs *before* pragma/test-region filtering.
    fn scan(&self) -> Vec<(usize, Finding)> {
        let mut out = Vec::new();
        let mut in_use = false; // inside a `use …;` declaration
        let mut stmt_locks = 0usize; // `.lock(` calls in the current statement
        for k in 0..self.ts.len() {
            if ident_at(self.ts, k) == Some("use") {
                in_use = true;
            } else if is_punct(self.ts, k, b';') {
                in_use = false;
            }
            if matches!(self.ts[k].tok, Tok::Punct(b';' | b'{' | b'}')) {
                stmt_locks = 0;
            }
            self.d1(k, in_use, &mut out);
            self.d2(k, &mut out);
            self.d3(k, &mut out);
            self.d4(k, &mut out);
            self.d5(k, &mut out);
            self.d6(k, &mut out);
            self.d9a(k, &mut stmt_locks, &mut out);
            self.d9b(k, &mut out);
        }
        out
    }

    fn emit(&self, out: &mut Vec<(usize, Finding)>, k: usize, rule: Rule, message: String) {
        let t = &self.ts[k];
        out.push((
            k,
            Finding { rule, file: self.ctx.path.clone(), line: t.line, col: t.col, message },
        ));
    }

    fn d1(&self, k: usize, in_use: bool, out: &mut Vec<(usize, Finding)>) {
        if !self.ctx.trace_affecting(self.scope) || in_use {
            return;
        }
        if let Some(id @ ("HashMap" | "HashSet")) = ident_at(self.ts, k) {
            self.emit(
                out,
                k,
                Rule::D1,
                format!(
                    "`{id}` in a trace-affecting crate: iteration order is seeded \
                     per-process; use `BTree{}` or sort before iterating",
                    &id[4..]
                ),
            );
        }
    }

    fn d2(&self, k: usize, out: &mut Vec<(usize, Finding)>) {
        if !self.ctx.trace_affecting(self.scope) {
            return;
        }
        let ts = self.ts;
        if ident_at(ts, k) == Some("partial_cmp") {
            self.emit(
                out,
                k,
                Rule::D2,
                "`partial_cmp` on floats panics or mis-sorts on NaN; use `total_cmp` \
                 over a NaN-sanitized key"
                    .into(),
            );
            return;
        }
        if ident_at(ts, k) == Some("f64") && is_punct(ts, k + 1, b':') && is_punct(ts, k + 2, b':')
        {
            if let Some(m @ ("max" | "min")) = ident_at(ts, k + 3) {
                self.emit(
                    out,
                    k,
                    Rule::D2,
                    format!(
                        "`f64::{m}` silently drops NaN out of reductions; use a \
                         `total_cmp` fold or the NaN-sanitized helpers"
                    ),
                );
                return;
            }
        }
        if is_punct(ts, k, b'.') && is_punct(ts, k + 2, b'(') {
            if let Some(m @ ("max" | "min")) = ident_at(ts, k + 1) {
                if is_float_at(ts, k + 3) || ident_at(ts, k + 3) == Some("f64") {
                    self.emit(
                        out,
                        k + 1,
                        Rule::D2,
                        format!(
                            "float `.{m}(..)` ignores a NaN receiver; use `total_cmp` \
                             or the NaN-sanitized helpers"
                        ),
                    );
                }
            }
        }
    }

    fn d3(&self, k: usize, out: &mut Vec<(usize, Finding)>) {
        if self.ctx.timing_exempt(self.scope) {
            return;
        }
        let ts = self.ts;
        if let Some(id @ ("thread_rng" | "from_entropy" | "OsRng" | "getrandom" | "SystemTime")) =
            ident_at(ts, k)
        {
            self.emit(
                out,
                k,
                Rule::D3,
                format!(
                    "`{id}` is an entropy/wall-clock source; all randomness must \
                     derive from the session seed (comet-obs and bench binaries only)"
                ),
            );
            return;
        }
        if ident_at(ts, k) == Some("Instant")
            && is_punct(ts, k + 1, b':')
            && is_punct(ts, k + 2, b':')
            && ident_at(ts, k + 3) == Some("now")
        {
            self.emit(
                out,
                k,
                Rule::D3,
                "`Instant::now` reads the wall clock; timing belongs to comet-obs \
                 and bench binaries (pragma observability spans that never feed \
                 trace decisions)"
                    .into(),
            );
        }
    }

    fn d4(&self, k: usize, out: &mut Vec<(usize, Finding)>) {
        if !self.ctx.is_library() {
            return;
        }
        let ts = self.ts;
        if is_punct(ts, k, b'.') && is_punct(ts, k + 2, b'(') {
            if let Some(m @ ("unwrap" | "expect")) = ident_at(ts, k + 1) {
                self.emit(
                    out,
                    k + 1,
                    Rule::D4,
                    format!("`.{m}(..)` in library code panics the session; return a `CometError`"),
                );
                return;
            }
        }
        if let Some(id @ ("panic" | "unreachable" | "todo" | "unimplemented")) = ident_at(ts, k) {
            if is_punct(ts, k + 1, b'!') {
                self.emit(
                    out,
                    k,
                    Rule::D4,
                    format!("`{id}!` in library code aborts the session; return a `CometError`"),
                );
            }
        }
    }

    fn d5(&self, k: usize, out: &mut Vec<(usize, Finding)>) {
        if ident_at(self.ts, k) != Some("unsafe") {
            return;
        }
        let line = self.ts[k].line;
        let documented = self
            .comments
            .iter()
            .any(|c| c.text.contains("SAFETY:") && c.end_line <= line && c.end_line + 3 >= line);
        if !documented {
            self.emit(
                out,
                k,
                Rule::D5,
                "`unsafe` without a `// SAFETY:` comment on the preceding lines".into(),
            );
        }
    }

    fn d6(&self, k: usize, out: &mut Vec<(usize, Finding)>) {
        if !self.ctx.hot_path() {
            return;
        }
        let ts = self.ts;
        if ident_at(ts, k) == Some("sum")
            && is_punct(ts, k + 1, b':')
            && is_punct(ts, k + 2, b':')
            && is_punct(ts, k + 3, b'<')
            && matches!(ident_at(ts, k + 4), Some("f64") | Some("f32"))
        {
            self.emit(
                out,
                k,
                Rule::D6,
                "raw `sum::<f64>()`/`sum::<f32>()` reduction in a hot-path crate; \
                 accumulation order is part of the trace contract — use the \
                 fixed-order `kernels` primitives"
                    .into(),
            );
            return;
        }
        if is_punct(ts, k, b'.')
            && ident_at(ts, k + 1) == Some("fold")
            && is_punct(ts, k + 2, b'(')
            && (is_float_at(ts, k + 3) || matches!(ident_at(ts, k + 3), Some("f64") | Some("f32")))
        {
            self.emit(
                out,
                k + 1,
                Rule::D6,
                "raw float `.fold(..)` reduction in a hot-path crate; use the \
                 fixed-order `kernels` primitives"
                    .into(),
            );
        }
    }

    /// D9a: a second `.lock(` inside one statement chain. Holding one
    /// guard while acquiring another in a single expression is how
    /// lock-ordering inversions are born; split the statement and scope
    /// the first guard, or carry a reviewed pragma stating the order.
    fn d9a(&self, k: usize, stmt_locks: &mut usize, out: &mut Vec<(usize, Finding)>) {
        let ts = self.ts;
        if is_punct(ts, k, b'.') && ident_at(ts, k + 1) == Some("lock") && is_punct(ts, k + 2, b'(')
        {
            *stmt_locks += 1;
            if *stmt_locks >= 2 {
                self.emit(
                    out,
                    k + 1,
                    Rule::D9,
                    "two `.lock()` acquisitions in one statement chain risk a \
                     lock-ordering inversion; take and scope the guards in \
                     separate statements"
                        .into(),
                );
            }
        }
    }

    /// D9b: `Ordering::Relaxed` outside the audited counter layer. Every
    /// production Relaxed site must either live in `comet-obs` or carry a
    /// reviewed `allow(D9)` pragma explaining why no ordering is needed.
    fn d9b(&self, k: usize, out: &mut Vec<(usize, Finding)>) {
        if RELAXED_AUDITED.contains(&self.ctx.crate_name.as_str()) {
            return;
        }
        let ts = self.ts;
        if ident_at(ts, k) == Some("Ordering")
            && is_punct(ts, k + 1, b':')
            && is_punct(ts, k + 2, b':')
            && ident_at(ts, k + 3) == Some("Relaxed")
        {
            self.emit(
                out,
                k,
                Rule::D9,
                "`Ordering::Relaxed` outside the audited counter paths; state why \
                 no ordering is required in a reviewed `allow(D9)` pragma or use \
                 an acquire/release pair"
                    .into(),
            );
        }
    }
}

/// D9c: flow-sensitive `Arc::make_mut`/`Arc::get_mut` check over parsed
/// fn bodies. Within one body, a `let NAME = … self.method(…) …;` binding
/// is treated as a live borrowing view until an explicit `drop(NAME)`;
/// reaching a `make_mut`/`get_mut` with any such binding live is flagged
/// (the exact shape of the `with_payload_mut` bug PR 9 fixed: the view's
/// `Arc` clone kept the refcount at 2, so `make_mut` silently cloned and
/// the mutation went to a copy). The analysis is linear — inner blocks do
/// not end liveness — so rare false positives take a reviewed pragma.
fn d9_flow(file: &ScannedFile) -> Vec<(usize, Finding)> {
    let ts = &file.lexed.tokens;
    let mut out = Vec::new();
    for item in &file.parsed.items {
        let crate::parse::ItemKind::Fn { body: Some((open, close)), .. } = &item.kind else {
            continue;
        };
        // name -> the self-method the view came from
        let mut live: Vec<(String, String)> = Vec::new();
        let mut k = *open;
        while k < *close {
            if ident_at(ts, k) == Some("let") {
                let mut j = k + 1;
                if ident_at(ts, j) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = ident_at(ts, j) {
                    // Initializer runs to the statement's `;` at bracket
                    // depth 0 relative to here. The walk does NOT skip it:
                    // `make_mut` usually sits inside a `let` initializer.
                    let mut depth = 0usize;
                    let mut end = j + 1;
                    while end < *close {
                        match ts[end].tok {
                            Tok::Punct(b'{' | b'(' | b'[') => depth += 1,
                            Tok::Punct(b'}' | b')' | b']') => depth = depth.saturating_sub(1),
                            Tok::Punct(b';') if depth == 0 => break,
                            _ => {}
                        }
                        end += 1;
                    }
                    if let Some(method) = self_method_call(ts, j + 1, end) {
                        live.retain(|(n, _)| n != name);
                        live.push((name.to_string(), method));
                    }
                }
            }
            if ident_at(ts, k) == Some("drop") && is_punct(ts, k + 1, b'(') {
                if let Some(name) = ident_at(ts, k + 2) {
                    if is_punct(ts, k + 3, b')') {
                        live.retain(|(n, _)| n != name);
                    }
                }
            }
            if ident_at(ts, k) == Some("Arc")
                && is_punct(ts, k + 1, b':')
                && is_punct(ts, k + 2, b':')
            {
                if let Some(m @ ("make_mut" | "get_mut")) = ident_at(ts, k + 3) {
                    if let Some((name, method)) = live.first() {
                        let t = &ts[k + 3];
                        out.push((
                            k + 3,
                            Finding {
                                rule: Rule::D9,
                                file: file.ctx.path.clone(),
                                line: t.line,
                                col: t.col,
                                message: format!(
                                    "`Arc::{m}` while `{name}` (from `self.{method}(..)`) may \
                                     still borrow the payload: the live view keeps the \
                                     refcount above 1, so the mutation silently lands on a \
                                     clone; `drop({name})` first"
                                ),
                            },
                        ));
                    }
                }
            }
            k += 1;
        }
    }
    out
}

/// Does `ts[from..to]` contain a `self.method(` call? Returns the method
/// name of the first one.
fn self_method_call(ts: &[Token], from: usize, to: usize) -> Option<String> {
    for k in from..to.min(ts.len()) {
        if ident_at(ts, k) == Some("self") && is_punct(ts, k + 1, b'.') && is_punct(ts, k + 3, b'(')
        {
            if let Some(m) = ident_at(ts, k + 2) {
                return Some(m.to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(path: &str) -> FileContext {
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next())
            .unwrap_or("comet")
            .to_string();
        FileContext { path: path.to_string(), crate_name }
    }

    fn test_scope() -> Scope {
        Scope::of(["core", "ml", "bayes", "jenga", "baselines", "frame", "detect"])
    }

    fn rules_found(path: &str, src: &str) -> Vec<Rule> {
        scan_file(&ctx(path), src.as_bytes(), &test_scope()).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn use_declarations_are_not_d1_findings() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u8, u8> = HashMap::new(); }";
        let found = rules_found("crates/core/src/x.rs", src);
        assert_eq!(found, vec![Rule::D1, Rule::D1]);
    }

    #[test]
    fn non_trace_crates_skip_d1_d2_d6() {
        let src = "fn f() { let m = HashMap::new(); a.partial_cmp(b); x.iter().sum::<f64>(); }";
        assert!(rules_found("crates/obs/src/x.rs", src).is_empty());
        assert_eq!(rules_found("crates/core/src/x.rs", src).len(), 2); // D1 + D2; D6 is ml/bayes only
    }

    #[test]
    fn the_scope_not_a_constant_decides_what_is_trace_affecting() {
        let src = "fn f() { let m = HashMap::new(); }";
        // `serve` is not in the explicit scope: no finding.
        assert!(rules_found("crates/serve/src/x.rs", src).is_empty());
        // The same file under a scope that taints `serve` is flagged.
        let found = scan_file(&ctx("crates/serve/src/x.rs"), src.as_bytes(), &Scope::of(["serve"]));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::D1);
    }

    #[test]
    fn a_tainted_timing_exempt_crate_is_scanned_by_d3() {
        let src = "fn f() { let t = SystemTime::now(); }";
        // serve is timing-exempt by default…
        assert!(rules_found("crates/serve/src/x.rs", src).is_empty());
        // …but the computed taint set takes precedence.
        let found = scan_file(&ctx("crates/serve/src/x.rs"), src.as_bytes(), &Scope::of(["serve"]));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::D3);
    }

    #[test]
    fn d6_covers_f32_reductions() {
        let src = "fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }";
        assert_eq!(rules_found("crates/ml/src/x.rs", src), vec![Rule::D6]);
        let fold = "fn f(xs: &[f32]) -> f32 { xs.iter().fold(0.0f32, |a, b| a + b) }";
        assert_eq!(rules_found("crates/ml/src/x.rs", fold), vec![Rule::D6]);
    }

    #[test]
    fn only_lane_ordered_tier_modules_are_d6_exempt() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert!(rules_found("crates/ml/src/kernels/scalar.rs", src).is_empty());
        assert!(rules_found("crates/ml/src/kernels/lanes8.rs", src).is_empty());
        assert!(rules_found("crates/ml/src/kernels/x86.rs", src).is_empty());
        // The dispatcher must route through the tier primitives, so it IS scanned.
        assert_eq!(rules_found("crates/ml/src/kernels/mod.rs", src), vec![Rule::D6]);
    }

    #[test]
    fn test_regions_stand_down_except_d5() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); unsafe { y(); } }\n}";
        let found = rules_found("crates/core/src/x.rs", src);
        assert_eq!(found, vec![Rule::D5]);
    }

    #[test]
    fn cfg_not_test_is_production_code() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }";
        assert_eq!(rules_found("crates/core/src/x.rs", src), vec![Rule::D4]);
    }

    #[test]
    fn pragmas_suppress_next_line_only() {
        let src = "fn f() {\n    // comet-lint: allow(D4)\n    x.unwrap();\n    y.unwrap();\n}";
        let found = scan_file(&ctx("crates/core/src/x.rs"), src.as_bytes(), &test_scope());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn pragma_usage_is_tracked() {
        let used_pragma = "fn f() {\n    // comet-lint: allow(D4)\n    x.unwrap();\n}";
        let file = ScannedFile::new(ctx("crates/core/src/x.rs"), used_pragma.as_bytes());
        let mut used = Vec::new();
        let found = scan_with_usage(&file, &test_scope(), &mut used);
        assert!(found.is_empty());
        assert_eq!(used, vec![true]);

        let stale_pragma = "fn f() {\n    // comet-lint: allow(D4)\n    let y = 1;\n}";
        let file = ScannedFile::new(ctx("crates/core/src/x.rs"), stale_pragma.as_bytes());
        let found = scan_with_usage(&file, &test_scope(), &mut used);
        assert!(found.is_empty());
        assert_eq!(used, vec![false]);
    }

    #[test]
    fn nofp_pragmas_are_collected_not_suppressing() {
        let src = "struct C {\n    // comet-lint: nofp — cosmetic label, not trace-affecting\n    pub label: String,\n}";
        let file = ScannedFile::new(ctx("crates/core/src/x.rs"), src.as_bytes());
        assert_eq!(file.pragmas.len(), 1);
        assert_eq!(file.pragmas[0].kind, PragmaKind::NoFp);
        assert!(!file.pragmas[0].suppresses(Rule::D7, 3));
        assert!(file.pragmas[0].covers_line(3));
    }

    #[test]
    fn safety_comment_satisfies_d5() {
        let ok = "// SAFETY: the slice is checked above.\nunsafe { f(); }";
        assert!(rules_found("crates/ml/src/x.rs", ok).is_empty());
        let bad = "unsafe { f(); }";
        assert_eq!(rules_found("crates/ml/src/x.rs", bad), vec![Rule::D5]);
    }

    #[test]
    fn unwrap_or_variants_are_not_d4() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(|| 0); x.unwrap_or_default(); }";
        assert!(rules_found("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn panic_path_segments_are_not_d4() {
        let src = "fn f() { std::panic::catch_unwind(|| 1); }";
        assert!(rules_found("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn d9a_flags_two_locks_in_one_statement() {
        let src = "fn f(&self) { let x = self.a.lock().len() + self.b.lock().len(); }";
        assert_eq!(rules_found("crates/par/src/x.rs", src), vec![Rule::D9]);
        // Separate statements are fine.
        let ok = "fn f(&self) { let x = self.a.lock().len(); let y = self.b.lock().len(); }";
        assert!(rules_found("crates/par/src/x.rs", ok).is_empty());
    }

    #[test]
    fn d9b_flags_relaxed_outside_obs() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        assert_eq!(rules_found("crates/frame/src/x.rs", src), vec![Rule::D9]);
        assert_eq!(rules_found("crates/serve/src/x.rs", src), vec![Rule::D9]);
        // The audited counter layer is the exception.
        assert!(rules_found("crates/obs/src/x.rs", src).is_empty());
        // SeqCst anywhere is fine.
        let ok = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::SeqCst); }";
        assert!(rules_found("crates/par/src/x.rs", ok).is_empty());
    }

    #[test]
    fn d9c_flags_make_mut_under_a_live_view() {
        let bad = "impl S { fn f(&mut self) -> u64 { let view = self.view(); \
                   let out = Arc::make_mut(&mut self.p); out.mutate(); view.len() } }";
        assert_eq!(rules_found("crates/frame/src/x.rs", bad), vec![Rule::D9]);
    }

    #[test]
    fn d9c_accepts_the_drop_then_make_mut_shape() {
        // The post-PR-9 `with_payload_mut` shape: view dropped before the
        // exclusive access.
        let ok = "impl S { fn f(&mut self) -> u64 { let view = self.view(); \
                  let n = view.len(); drop(view); let out = Arc::make_mut(&mut self.p); n } }";
        assert!(rules_found("crates/frame/src/x.rs", ok).is_empty());
        // Bindings that are not self-method views don't count.
        let ok2 = "impl S { fn f(&mut self) { let mut state = lock(&self.state); \
                   let out = Arc::make_mut(&mut self.p); } }";
        assert!(rules_found("crates/frame/src/x.rs", ok2).is_empty());
    }
}
