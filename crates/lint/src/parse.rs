//! A lightweight item parser layered on the byte [`crate::lexer`].
//!
//! This is *not* a Rust grammar: it recovers exactly the structure the
//! dataflow rules need — `struct` field lists, `fn` items with their
//! parameter names and body token ranges, the enclosing `impl` type of
//! each method, and the set of workspace crates a file references via
//! `use` declarations or fully-qualified paths. Everything else is
//! skipped without error; like the lexer, parsing is total and panic-free
//! on arbitrary byte soup.

use crate::lexer::{Lexed, Tok, Token};
use std::collections::BTreeSet;

/// One named struct field with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub line: u32,
}

/// The shapes the parser recovers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A `fn` item: declared parameter names (excluding `self`) and the
    /// token-index range of its `{ .. }` body, when it has one.
    Fn { params: Vec<String>, body: Option<(usize, usize)> },
    /// A `struct` item with named fields (empty for tuple/unit structs).
    Struct { fields: Vec<Field> },
}

/// One recovered item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    pub name: String,
    /// The `impl` type enclosing a method, if any.
    pub owner: Option<String>,
    pub line: u32,
    pub kind: ItemKind,
}

/// The result of parsing one file.
#[derive(Debug, Default)]
pub struct Parsed {
    pub items: Vec<Item>,
    /// Workspace crate directory names this file references outside test
    /// regions: `comet_frame` → `frame`, plus the vendored shims (`rand`,
    /// `proptest`, `criterion`) when used as a path or `use` target.
    pub crate_refs: BTreeSet<String>,
}

/// Crates vendored under `crates/` whose package name *is* the directory
/// name (no `comet_` prefix).
pub const VENDORED: [&str; 3] = ["rand", "proptest", "criterion"];

pub(crate) fn is_punct(ts: &[Token], k: usize, b: u8) -> bool {
    matches!(ts.get(k), Some(t) if t.tok == Tok::Punct(b))
}

pub(crate) fn ident_at(ts: &[Token], k: usize) -> Option<&str> {
    match ts.get(k) {
        Some(Token { tok: Tok::Ident(s), .. }) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn literal_at(ts: &[Token], k: usize) -> Option<&str> {
    match ts.get(k) {
        Some(Token { tok: Tok::Literal(s), .. }) => Some(s.as_str()),
        _ => None,
    }
}

pub(crate) fn is_float_at(ts: &[Token], k: usize) -> bool {
    matches!(ts.get(k), Some(Token { tok: Tok::Number { is_float: true }, .. }))
}

/// Find the index of the token closing the bracket opened at `open`.
pub(crate) fn matching(ts: &[Token], open: usize, ob: u8, cb: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in ts.iter().enumerate().skip(open) {
        if t.tok == Tok::Punct(ob) {
            depth += 1;
        } else if t.tok == Tok::Punct(cb) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Strip a literal token's delimiters and prefixes: `"kind"` → `kind`,
/// `r#"x"#` → `x`, `b"y"` → `y`. Best-effort — good enough for comparing
/// plain-string keys.
pub fn literal_inner(raw: &str) -> &str {
    let s = raw.trim_start_matches(['r', 'b', 'c']);
    let s = s.trim_start_matches('#');
    let s = s.strip_prefix(['"', '\'']).unwrap_or(s);
    let s = s.trim_end_matches('#');
    s.strip_suffix(['"', '\'']).unwrap_or(s)
}

/// Identifiers captured by a format string: `"{config:?}|{errors:?}"`
/// yields `config` and `errors`. `{{` escapes are honored; positional and
/// non-ident captures are skipped.
pub fn format_captures(raw: &str) -> Vec<String> {
    let bytes = raw.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'{' {
            i += 1;
            continue;
        }
        if bytes.get(i + 1) == Some(&b'{') {
            i += 2; // escaped `{{`
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if j > start && !bytes[start].is_ascii_digit() && matches!(bytes.get(j), Some(b'}' | b':'))
        {
            out.push(String::from_utf8_lossy(&bytes[start..j]).into_owned());
        }
        i = j.max(start);
    }
    out
}

/// Parse the token stream of one file. `in_test` reports whether a token
/// index sits inside a test region — crate references found there do not
/// count as taint edges (dev-only dependencies are not trace-affecting).
pub fn parse(lexed: &Lexed, in_test: &dyn Fn(usize) -> bool) -> Parsed {
    let ts = &lexed.tokens;
    let mut out = Parsed::default();
    // (impl type name, index of the token closing the impl body)
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut k = 0;
    while k < ts.len() {
        while impl_stack.last().is_some_and(|&(_, end)| k > end) {
            impl_stack.pop();
        }
        collect_crate_ref(ts, k, in_test, &mut out.crate_refs);
        match ident_at(ts, k) {
            Some("impl") => {
                if let Some((owner, open)) = impl_header(ts, k) {
                    if let Some(close) = matching(ts, open, b'{', b'}') {
                        impl_stack.push((owner, close));
                        // Descend into the impl body to find methods.
                        k = open + 1;
                        continue;
                    }
                }
                k += 1;
            }
            Some("fn") => {
                let Some(name) = ident_at(ts, k + 1) else {
                    k += 1; // `fn(u8)` pointer type, not an item
                    continue;
                };
                let line = ts[k].line;
                let (params, after) = fn_params(ts, k + 2);
                let body = fn_body(ts, after);
                out.items.push(Item {
                    name: name.to_string(),
                    owner: impl_stack.last().map(|(n, _)| n.clone()),
                    line,
                    kind: ItemKind::Fn { params, body },
                });
                // Skip the body: nested closures/items are not needed, and
                // the crate-ref walk below still visits every token.
                match body {
                    Some((_, close)) => {
                        for j in k..=close.min(ts.len().saturating_sub(1)) {
                            collect_crate_ref(ts, j, in_test, &mut out.crate_refs);
                        }
                        k = close + 1;
                    }
                    None => k = after,
                }
            }
            Some("struct") => {
                let Some(name) = ident_at(ts, k + 1) else {
                    k += 1;
                    continue;
                };
                let line = ts[k].line;
                let (fields, next) = struct_fields(ts, k + 2);
                out.items.push(Item {
                    name: name.to_string(),
                    owner: impl_stack.last().map(|(n, _)| n.clone()),
                    line,
                    kind: ItemKind::Struct { fields },
                });
                k = next;
            }
            _ => k += 1,
        }
    }
    out
}

fn collect_crate_ref(
    ts: &[Token],
    k: usize,
    in_test: &dyn Fn(usize) -> bool,
    refs: &mut BTreeSet<String>,
) {
    let Some(id) = ident_at(ts, k) else { return };
    if in_test(k) {
        return;
    }
    if let Some(suffix) = id.strip_prefix("comet_") {
        if !suffix.is_empty() {
            refs.insert(suffix.to_string());
        }
        return;
    }
    if VENDORED.contains(&id) {
        // Count only path/`use` positions so a local named `rand` (or the
        // word in an ident like `rand_state`) cannot create a taint edge.
        let is_path = is_punct(ts, k + 1, b':') && is_punct(ts, k + 2, b':');
        let is_use = ident_at(ts, k.wrapping_sub(1)) == Some("use");
        if is_path || is_use {
            refs.insert(id.to_string());
        }
    }
}

/// Recover `(type name, body-open index)` from an `impl` header at `k`.
/// `impl Foo {`, `impl<T> Foo<T> {`, and `impl Trait for Foo {` all
/// resolve to `Foo`.
fn impl_header(ts: &[Token], k: usize) -> Option<(String, usize)> {
    let open = (k..ts.len()).find(|&j| is_punct(ts, j, b'{'))?;
    let header = &ts[k..open];
    // `impl Trait for Type {` names the type after the *last* `for`
    // (HRTB `for<'a>` is followed by `<`, not a type name, so skip those).
    let mut after_for = None;
    for (j, t) in header.iter().enumerate() {
        if matches!(&t.tok, Tok::Ident(s) if s == "for")
            && !matches!(header.get(j + 1).map(|t| &t.tok), Some(Tok::Punct(b'<')))
        {
            after_for = Some(j + 1);
        }
    }
    let search = &header[after_for.unwrap_or(0)..];
    // First path ident outside the leading generic parameter list.
    let mut j = 0;
    if after_for.is_none() && matches!(search.get(1).map(|t| &t.tok), Some(Tok::Punct(b'<'))) {
        // Skip `impl<..>` generics: find the matching `>` at depth 0.
        let mut depth = 0usize;
        j = 1;
        while j < search.len() {
            match search[j].tok {
                Tok::Punct(b'<') => depth += 1,
                Tok::Punct(b'>') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    let name = search[j..].iter().find_map(|t| match &t.tok {
        Tok::Ident(s) if s != "impl" && s != "dyn" && s != "mut" && s != "const" => Some(s.clone()),
        _ => None,
    })?;
    Some((name, open))
}

/// Parse a parameter list starting at the `(` expected at `k`. Returns the
/// parameter names (skipping any `self` receiver) and the index just past
/// the closing `)`.
fn fn_params(ts: &[Token], mut k: usize) -> (Vec<String>, usize) {
    // Skip `fn name<...>` generics between the name and `(`.
    while k < ts.len() && !is_punct(ts, k, b'(') && !is_punct(ts, k, b'{') && !is_punct(ts, k, b';')
    {
        k += 1;
    }
    if !is_punct(ts, k, b'(') {
        return (Vec::new(), k);
    }
    let Some(close) = matching(ts, k, b'(', b')') else {
        return (Vec::new(), ts.len());
    };
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut j = k + 1;
    while j < close {
        match &ts[j].tok {
            Tok::Punct(b'(' | b'[' | b'<') => depth += 1,
            Tok::Punct(b')' | b']' | b'>') => depth = depth.saturating_sub(1),
            // A parameter name is an ident directly followed by `:` (but
            // not `::`), at the top level of the list.
            Tok::Ident(name)
                if depth == 0
                    && name != "self"
                    && name != "mut"
                    && is_punct(ts, j + 1, b':')
                    && !is_punct(ts, j + 2, b':') =>
            {
                params.push(name.clone());
                // Skip the type up to the next top-level `,`.
                let mut d = 0usize;
                j += 2;
                while j < close {
                    match ts[j].tok {
                        Tok::Punct(b'(' | b'[' | b'<') => d += 1,
                        Tok::Punct(b')' | b']' | b'>') => d = d.saturating_sub(1),
                        Tok::Punct(b',') if d == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    (params, close + 1)
}

/// Find a fn body's `{ .. }` token range starting the search just past the
/// parameter list (skipping `-> Type` and `where` clauses). A `;` first
/// means a body-less declaration.
fn fn_body(ts: &[Token], from: usize) -> Option<(usize, usize)> {
    let mut j = from;
    while j < ts.len() {
        match ts[j].tok {
            Tok::Punct(b'{') => {
                let close = matching(ts, j, b'{', b'}')?;
                return Some((j, close));
            }
            Tok::Punct(b';') => return None,
            _ => j += 1,
        }
    }
    None
}

/// Parse named struct fields starting just past the struct name. Returns
/// the fields and the index to resume scanning from.
fn struct_fields(ts: &[Token], mut k: usize) -> (Vec<Field>, usize) {
    // Skip generics / where clause up to `{`, `(`, or `;`.
    while k < ts.len() {
        match ts[k].tok {
            Tok::Punct(b'{') => break,
            // Tuple struct `struct X(u8);` or unit struct `struct X;`.
            Tok::Punct(b'(') => {
                let end = matching(ts, k, b'(', b')').unwrap_or(ts.len().saturating_sub(1));
                return (Vec::new(), end + 1);
            }
            Tok::Punct(b';') => return (Vec::new(), k + 1),
            _ => k += 1,
        }
    }
    if k >= ts.len() {
        return (Vec::new(), k);
    }
    let Some(close) = matching(ts, k, b'{', b'}') else {
        return (Vec::new(), ts.len());
    };
    let mut fields = Vec::new();
    let mut depth = 0usize;
    let mut j = k + 1;
    while j < close {
        match &ts[j].tok {
            Tok::Punct(b'{' | b'(' | b'[' | b'<') => depth += 1,
            Tok::Punct(b'}' | b')' | b']' | b'>') => depth = depth.saturating_sub(1),
            Tok::Ident(name)
                if depth == 0
                    && is_punct(ts, j + 1, b':')
                    && !is_punct(ts, j + 2, b':')
                    && name != "pub"
                    && name != "crate" =>
            {
                fields.push(Field { name: name.clone(), line: ts[j].line });
                // Skip the type up to the next top-level `,`.
                let mut d = 0usize;
                j += 2;
                while j < close {
                    match ts[j].tok {
                        Tok::Punct(b'(' | b'[' | b'<') => d += 1,
                        Tok::Punct(b')' | b']' | b'>') => d = d.saturating_sub(1),
                        Tok::Punct(b',') if d == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                continue;
            }
            _ => {}
        }
        j += 1;
    }
    (fields, close + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> Parsed {
        parse(&lex(src.as_bytes()), &|_| false)
    }

    #[test]
    fn structs_yield_named_fields_with_lines() {
        let src = "pub struct Config {\n    pub step: f64,\n    pub detect: Option<Detector>,\n    pub pairs: Vec<(u64, u64)>,\n}";
        let p = parsed(src);
        let Some(Item { kind: ItemKind::Struct { fields }, name, .. }) = p.items.first() else {
            panic!("no struct: {:?}", p.items);
        };
        assert_eq!(name, "Config");
        let names: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["step", "detect", "pairs"]);
        assert_eq!(fields[1].line, 3);
    }

    #[test]
    fn tuple_and_unit_structs_have_no_named_fields() {
        let p = parsed("struct A(u8, u8); struct B; struct C { x: u8 }");
        assert_eq!(p.items.len(), 3);
        assert!(matches!(&p.items[0].kind, ItemKind::Struct { fields } if fields.is_empty()));
        assert!(matches!(&p.items[2].kind, ItemKind::Struct { fields } if fields.len() == 1));
    }

    #[test]
    fn fns_capture_params_and_owner() {
        let src = "impl Writer {\n    pub fn create(path: &Path, seed: u64, mut rows: usize) -> Result<Self, E> {\n        body();\n    }\n}\nfn free(x: f64) {}";
        let p = parsed(src);
        let create = p.items.iter().find(|i| i.name == "create").expect("create");
        assert_eq!(create.owner.as_deref(), Some("Writer"));
        let ItemKind::Fn { params, body } = &create.kind else { panic!() };
        assert_eq!(params, &["path", "seed", "rows"]);
        assert!(body.is_some());
        let free = p.items.iter().find(|i| i.name == "free").expect("free");
        assert_eq!(free.owner, None);
    }

    #[test]
    fn impl_trait_for_type_resolves_the_type() {
        let src = "impl<R: RngCore> Iterator for Counting<'_, R> { fn next(&mut self) -> Option<u8> { None } }";
        let p = parsed(src);
        let next = p.items.iter().find(|i| i.name == "next").expect("next");
        assert_eq!(next.owner.as_deref(), Some("Counting"));
    }

    #[test]
    fn crate_refs_see_use_and_paths_but_not_tests() {
        let src =
            "use comet_frame::Frame;\nfn f() { comet_par::run(); let r = rand::thread_rng; }\n";
        let p = parsed(src);
        assert!(p.crate_refs.contains("frame"));
        assert!(p.crate_refs.contains("par"));
        assert!(p.crate_refs.contains("rand"));
        // Same source, everything marked test: no refs.
        let none = parse(&lex(src.as_bytes()), &|_| true);
        assert!(none.crate_refs.is_empty());
    }

    #[test]
    fn a_local_named_rand_is_not_a_crate_ref() {
        let p = parsed("fn f() { let rand = 3; let rand_state = rand + 1; }");
        assert!(p.crate_refs.is_empty());
    }

    #[test]
    fn format_captures_extract_idents() {
        assert_eq!(format_captures("\"{config:?}|{errors:?}\""), ["config", "errors"]);
        assert_eq!(format_captures("\"{a} {{esc}} {0} {b:>8}\""), ["a", "b"]);
        assert!(format_captures("\"plain\"").is_empty());
    }

    #[test]
    fn literal_inner_strips_delimiters() {
        assert_eq!(literal_inner("\"kind\""), "kind");
        assert_eq!(literal_inner("r#\"raw\"#"), "raw");
        assert_eq!(literal_inner("b\"bytes\""), "bytes");
    }

    #[test]
    fn parser_survives_malformed_input() {
        for src in [
            "struct",
            "struct {",
            "fn",
            "fn (",
            "impl",
            "impl {",
            "struct X {",
            "fn f(x:",
            "impl X { fn",
            "struct X { y: }",
        ] {
            let _ = parsed(src);
        }
    }
}
