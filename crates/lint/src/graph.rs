//! Workspace-level dataflow analyses over the parsed item graph.
//!
//! Two passes live here, both consuming the [`crate::rules::ScannedFile`]
//! set the pipeline builds once per run:
//!
//! * **D8 trace-taint reachability** ([`compute_taint`]): find the crates
//!   that *define or write* the trace machinery (the roots), then close
//!   over the use/call graph — a root's code calls into everything it
//!   references, so every crate reachable from a root participates in
//!   producing the trace. The resulting set feeds the D1–D3 gates in
//!   [`crate::rules`]; there is no hard-coded crate list anywhere.
//!   `[[exempt]]` entries in `lint.toml` carve out audited leaves (the
//!   observability layer, whose output never feeds trace decisions) and
//!   fail as stale the day they stop being reachable.
//!
//! * **D7 fingerprint coverage** ([`fingerprint_coverage`]): prove that
//!   every `CometConfig`/`DetectorConfig` field flows into its checkpoint
//!   fingerprint, that every checkpoint header builder parameter flows
//!   into a written header field, and that the header keys the builder
//!   writes round-trip through the loader. PRs 6/7/9 each added a
//!   trace-affecting knob (kernel tier, detector config, segment size) by
//!   hand-threading it through the fingerprint; D7 mechanizes the "did
//!   you forget one?" review.

use crate::config::ExemptEntry;
use crate::parse::{
    format_captures, ident_at, is_punct, literal_at, literal_inner, matching, Item, ItemKind,
};
use crate::rules::{Finding, PragmaKind, Rule, ScannedFile};
use std::collections::{BTreeMap, BTreeSet};

/// Structs whose *definition* marks a crate as a trace-writing root: the
/// trace record store, the checkpoint emitter, and the recommender whose
/// ranking the trace records.
const TRACE_DEFS: [&str; 3] = ["CleaningTrace", "CheckpointWriter", "Recommender"];

/// Record types whose *construction* (`StepRecord { .. }`) marks a crate
/// as trace-writing even when the types are defined elsewhere (the
/// baseline strategies build their own step records).
const TRACE_WRITES: [&str; 2] = ["StepRecord", "FailureRecord"];

/// The D8 taint computation's result.
#[derive(Debug, Default)]
pub struct Taint {
    /// Crates that define or write the trace machinery.
    pub roots: BTreeSet<String>,
    /// Use-graph closure of the roots, before `[[exempt]]` subtraction.
    pub reachable: BTreeSet<String>,
    /// `reachable` minus the audited `[[exempt]]` crates — what D1–D3
    /// gate on.
    pub trace_affecting: BTreeSet<String>,
    /// Self-check and exemption-staleness errors (nonzero exit).
    pub errors: Vec<String>,
}

/// Compute the trace-affecting crate set from the scanned workspace.
pub fn compute_taint(files: &[ScannedFile], exempt: &[ExemptEntry]) -> Taint {
    let mut taint = Taint::default();
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let known: BTreeSet<&str> = files.iter().map(|f| f.ctx.crate_name.as_str()).collect();
    for file in files {
        if file.ctx.is_test_file() {
            continue; // dev-only edges are not trace-affecting
        }
        let crate_name = file.ctx.crate_name.as_str();
        edges.entry(crate_name).or_default().extend(
            file.parsed.crate_refs.iter().map(String::as_str).filter(|r| known.contains(r)),
        );
        if is_root_file(file) {
            taint.roots.insert(crate_name.to_string());
        }
    }
    // BFS: a root's code calls into everything it references.
    let mut queue: Vec<&str> = taint.roots.iter().map(String::as_str).collect();
    let mut reachable: BTreeSet<&str> = queue.iter().copied().collect();
    while let Some(c) = queue.pop() {
        for &dep in edges.get(c).into_iter().flatten() {
            if reachable.insert(dep) {
                queue.push(dep);
            }
        }
    }
    taint.reachable = reachable.iter().map(|s| s.to_string()).collect();
    if taint.roots.is_empty() {
        taint.errors.push(
            "D8: no trace-writing roots found — the workspace defines none of \
             CleaningTrace/CheckpointWriter/Recommender and constructs no step \
             records; the taint analysis targets have moved"
                .to_string(),
        );
    }
    taint.trace_affecting = taint.reachable.clone();
    for e in exempt {
        if !taint.reachable.contains(&e.name) {
            taint.errors.push(format!(
                "lint.toml: stale [[exempt]] entry — crate `{}` is not reachable from \
                 the trace-writing roots; remove the entry",
                e.name
            ));
            continue;
        }
        taint.trace_affecting.remove(&e.name);
    }
    taint
}

fn is_root_file(file: &ScannedFile) -> bool {
    let defines = file.parsed.items.iter().any(|i| {
        matches!(i.kind, ItemKind::Struct { .. }) && TRACE_DEFS.contains(&i.name.as_str())
    });
    if defines {
        return true;
    }
    // `StepRecord { .. }` construction: the ident followed by `{`, not
    // preceded by `struct`/`impl`/`for` (those are definitions/headers).
    let ts = &file.lexed.tokens;
    for k in 0..ts.len() {
        let Some(id) = ident_at(ts, k) else { continue };
        if !TRACE_WRITES.contains(&id) || !is_punct(ts, k + 1, b'{') || file.in_test(k) {
            continue;
        }
        let prev = k.checked_sub(1).and_then(|p| ident_at(ts, p));
        if !matches!(prev, Some("struct" | "impl" | "for" | "enum" | "union")) {
            return true;
        }
    }
    false
}

/// Where each fingerprinted config struct and its fingerprint fn live.
struct FieldSpec {
    struct_file: &'static str,
    struct_name: &'static str,
    fp_file: &'static str,
    fp_fn: &'static str,
    /// The fingerprint fn's parameter holding the struct.
    param: &'static str,
}

const FIELD_SPECS: [FieldSpec; 2] = [
    FieldSpec {
        struct_file: "crates/core/src/config.rs",
        struct_name: "CometConfig",
        fp_file: "crates/core/src/checkpoint.rs",
        fp_fn: "config_fingerprint",
        param: "config",
    },
    FieldSpec {
        struct_file: "crates/detect/src/config.rs",
        struct_name: "DetectorConfig",
        fp_file: "crates/core/src/checkpoint.rs",
        fp_fn: "detect_fingerprint",
        param: "detect",
    },
];

const HEADER_FILE: &str = "crates/core/src/checkpoint.rs";
const HEADER_OWNER: &str = "CheckpointWriter";
const HEADER_BUILDER: &str = "create";
const HEADER_LOADER: &str = "load";
/// The loader's match-arm discriminant for header records.
const HEADER_ARM_KEY: &str = "checkpoint_header";
/// Record-envelope keys, not session identity.
const ENVELOPE_KEYS: [&str; 2] = ["kind", "version"];
/// Builder parameters that are plumbing, not fingerprint ingredients.
const BUILDER_SKIP_PARAMS: [&str; 1] = ["path"];
/// The JSON builder methods that write one header field each.
const FIELD_CALLS: [&str; 4] = ["field_str", "field_u64", "field_f64", "field_raw"];
/// The accessors the loader reads header fields through.
const GET_CALLS: [&str; 3] = ["get", "get_hex", "get_f64"];

/// The D7 analysis result.
#[derive(Debug, Default)]
pub struct FingerprintCoverage {
    pub findings: Vec<Finding>,
    /// `(file, pragma first_line)` of every `nofp` pragma that excused an
    /// uncovered field — any other `nofp` pragma is stale.
    pub credited_nofp: BTreeSet<(String, u32)>,
}

/// Run the three D7 sub-checks over the scanned workspace.
pub fn fingerprint_coverage(files: &[ScannedFile]) -> FingerprintCoverage {
    let mut out = FingerprintCoverage::default();
    for spec in &FIELD_SPECS {
        check_field_coverage(files, spec, &mut out);
    }
    check_header_builder(files, &mut out);
    out
}

fn find_file<'a>(files: &'a [ScannedFile], path: &str) -> Option<&'a ScannedFile> {
    files.iter().find(|f| f.ctx.path == path)
}

fn find_fn<'a>(file: &'a ScannedFile, name: &str, owner: Option<&str>) -> Option<&'a Item> {
    file.parsed.items.iter().find(|i| {
        i.name == name
            && matches!(i.kind, ItemKind::Fn { .. })
            && match owner {
                Some(o) => i.owner.as_deref() == Some(o),
                None => true,
            }
    })
}

fn missing(out: &mut FingerprintCoverage, file: &str, what: &str) {
    out.findings.push(Finding {
        rule: Rule::D7,
        file: file.to_string(),
        line: 1,
        col: 1,
        message: format!(
            "{what} not found — the fingerprint-coverage targets moved; update the \
             D7 specs in comet-lint's graph module"
        ),
    });
}

/// Sub-check 1: every field of `spec.struct_name` must flow into
/// `spec.fp_fn` — either the fn consumes the whole struct (Debug-derived
/// fingerprints pass the param to a format capture) or it mentions
/// `param.field`. Uncovered fields need a `nofp` pragma at the field.
fn check_field_coverage(files: &[ScannedFile], spec: &FieldSpec, out: &mut FingerprintCoverage) {
    let Some(struct_file) = find_file(files, spec.struct_file) else {
        missing(out, spec.struct_file, &format!("struct file for `{}`", spec.struct_name));
        return;
    };
    let Some(ItemKind::Struct { fields }) = struct_file
        .parsed
        .items
        .iter()
        .find(|i| i.name == spec.struct_name && matches!(i.kind, ItemKind::Struct { .. }))
        .map(|i| &i.kind)
    else {
        missing(out, spec.struct_file, &format!("struct `{}`", spec.struct_name));
        return;
    };
    let Some(fp_file) = find_file(files, spec.fp_file) else {
        missing(out, spec.fp_file, &format!("fingerprint file for `{}`", spec.fp_fn));
        return;
    };
    let Some(fp_fn) = find_fn(fp_file, spec.fp_fn, None) else {
        missing(out, spec.fp_file, &format!("fingerprint fn `{}`", spec.fp_fn));
        return;
    };
    let ItemKind::Fn { body: Some((open, close)), .. } = fp_fn.kind else {
        missing(out, spec.fp_file, &format!("body of fingerprint fn `{}`", spec.fp_fn));
        return;
    };
    let ts = &fp_file.lexed.tokens;
    // What the fingerprint body "uses": idents, plus idents captured by
    // format strings (`"{config:?}"` uses `config`).
    let mut whole_use = false;
    let mut field_access: BTreeSet<&str> = BTreeSet::new();
    for k in open..=close {
        if let Some(id) = ident_at(ts, k) {
            if id == spec.param {
                if is_punct(ts, k + 1, b'.') {
                    if let Some(f) = ident_at(ts, k + 2) {
                        field_access.insert(f);
                    }
                } else {
                    whole_use = true;
                }
            }
        } else if let Some(lit) = literal_at(ts, k) {
            for cap in format_captures(lit) {
                if cap == spec.param {
                    whole_use = true;
                }
            }
        }
    }
    for field in fields {
        if whole_use || field_access.contains(field.name.as_str()) {
            continue;
        }
        let excuse = struct_file
            .pragmas
            .iter()
            .find(|p| p.kind == PragmaKind::NoFp && p.covers_line(field.line));
        if let Some(p) = excuse {
            out.credited_nofp.insert((struct_file.ctx.path.clone(), p.first_line));
            continue;
        }
        out.findings.push(Finding {
            rule: Rule::D7,
            file: struct_file.ctx.path.clone(),
            line: field.line,
            col: 1,
            message: format!(
                "`{}.{}` does not flow into `{}` — a knob the fingerprint misses \
                 breaks resume determinism silently; fingerprint it or annotate the \
                 field with a `nofp` pragma stating why it cannot affect the trace",
                spec.struct_name, field.name, spec.fp_fn
            ),
        });
    }
}

/// Sub-checks 2+3: every non-plumbing parameter of the checkpoint header
/// builder must appear in a written header field, and the keys the
/// builder writes must equal the keys the loader reads back.
fn check_header_builder(files: &[ScannedFile], out: &mut FingerprintCoverage) {
    let Some(file) = find_file(files, HEADER_FILE) else {
        missing(out, HEADER_FILE, "checkpoint header file");
        return;
    };
    let Some(builder) = find_fn(file, HEADER_BUILDER, Some(HEADER_OWNER)) else {
        missing(out, HEADER_FILE, &format!("header builder `{HEADER_OWNER}::{HEADER_BUILDER}`"));
        return;
    };
    let ItemKind::Fn { params, body: Some((open, close)) } = &builder.kind else {
        missing(out, HEADER_FILE, "header builder body");
        return;
    };
    let ts = &file.lexed.tokens;
    let mut written_keys: BTreeSet<String> = BTreeSet::new();
    let mut ingredient_idents: BTreeSet<&str> = BTreeSet::new();
    let mut k = *open;
    while k <= *close {
        let is_field_call = matches!(ident_at(ts, k), Some(id) if FIELD_CALLS.contains(&id))
            && is_punct(ts, k + 1, b'(');
        if !is_field_call {
            k += 1;
            continue;
        }
        let Some(args_close) = matching(ts, k + 1, b'(', b')') else {
            k += 1;
            continue;
        };
        let mut key = None;
        for j in k + 2..args_close {
            if key.is_none() {
                if let Some(lit) = literal_at(ts, j) {
                    key = Some(literal_inner(lit).to_string());
                    continue;
                }
            }
            if let Some(id) = ident_at(ts, j) {
                ingredient_idents.insert(id);
            }
        }
        if let Some(key) = key {
            if !ENVELOPE_KEYS.contains(&key.as_str()) {
                written_keys.insert(key);
            }
        }
        k = args_close + 1;
    }
    for param in params {
        if BUILDER_SKIP_PARAMS.contains(&param.as_str()) {
            continue;
        }
        if !ingredient_idents.contains(param.as_str()) {
            out.findings.push(Finding {
                rule: Rule::D7,
                file: file.ctx.path.clone(),
                line: builder.line,
                col: 1,
                message: format!(
                    "header builder parameter `{param}` does not flow into any written \
                     header field — a session identity input the header misses breaks \
                     resume determinism silently"
                ),
            });
        }
    }
    // The loader side: keys read inside the `checkpoint_header` match arm.
    let Some(loader) = find_fn(file, HEADER_LOADER, None) else {
        missing(out, HEADER_FILE, &format!("header loader `{HEADER_LOADER}`"));
        return;
    };
    let ItemKind::Fn { body: Some((lopen, lclose)), .. } = loader.kind else {
        missing(out, HEADER_FILE, "header loader body");
        return;
    };
    let arm_key = (lopen..=lclose).find(|&j| {
        literal_at(ts, j).is_some_and(|l| literal_inner(l) == HEADER_ARM_KEY)
            // The *arm* pattern `Some("checkpoint_header") => {`, not the
            // builder-side or comparison uses: the literal is followed by
            // `)` `=` `>`.
            && is_punct(ts, j + 1, b')')
            && is_punct(ts, j + 2, b'=')
            && is_punct(ts, j + 3, b'>')
    });
    let Some(arm_key) = arm_key else {
        missing(out, HEADER_FILE, &format!("loader match arm for \"{HEADER_ARM_KEY}\""));
        return;
    };
    let Some(arm_open) = (arm_key..=lclose).find(|&j| is_punct(ts, j, b'{')) else {
        missing(out, HEADER_FILE, "loader header-arm body");
        return;
    };
    let Some(arm_close) = matching(ts, arm_open, b'{', b'}') else {
        missing(out, HEADER_FILE, "loader header-arm body");
        return;
    };
    let mut read_keys: BTreeSet<String> = BTreeSet::new();
    let mut k = arm_open;
    while k <= arm_close {
        let is_get = matches!(ident_at(ts, k), Some(id) if GET_CALLS.contains(&id))
            && is_punct(ts, k + 1, b'(');
        if !is_get {
            k += 1;
            continue;
        }
        let Some(args_close) = matching(ts, k + 1, b'(', b')') else {
            k += 1;
            continue;
        };
        if let Some(lit) = (k + 2..args_close).find_map(|j| literal_at(ts, j)) {
            let key = literal_inner(lit);
            if !ENVELOPE_KEYS.contains(&key) {
                read_keys.insert(key.to_string());
            }
        }
        k = args_close + 1;
    }
    for key in written_keys.difference(&read_keys) {
        out.findings.push(Finding {
            rule: Rule::D7,
            file: file.ctx.path.clone(),
            line: loader.line,
            col: 1,
            message: format!(
                "header key `{key}` is written by `{HEADER_OWNER}::{HEADER_BUILDER}` but \
                 never read back in `{HEADER_LOADER}` — resume silently ignores it"
            ),
        });
    }
    for key in read_keys.difference(&written_keys) {
        out.findings.push(Finding {
            rule: Rule::D7,
            file: file.ctx.path.clone(),
            line: builder.line,
            col: 1,
            message: format!(
                "header key `{key}` is read by `{HEADER_LOADER}` but never written by \
                 `{HEADER_OWNER}::{HEADER_BUILDER}` — resume always takes its fallback"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::FileContext;

    fn scanned(path: &str, src: &str) -> ScannedFile {
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|p| p.split('/').next())
            .unwrap_or("comet")
            .to_string();
        ScannedFile::new(FileContext { path: path.to_string(), crate_name }, src.as_bytes())
    }

    #[test]
    fn taint_closes_over_the_use_graph_from_roots() {
        let files = vec![
            scanned("crates/core/src/trace.rs", "pub struct CleaningTrace { pub n: usize }"),
            scanned("crates/core/src/lib.rs", "use comet_ml::Model; use comet_obs::Counter;"),
            scanned("crates/ml/src/lib.rs", "use comet_frame::Frame;"),
            scanned("crates/frame/src/lib.rs", "pub struct Frame;"),
            scanned("crates/obs/src/lib.rs", "pub struct Counter;"),
            scanned("crates/serve/src/lib.rs", "use comet_core::Session;"),
        ];
        let t = compute_taint(&files, &[]);
        assert_eq!(t.roots, ["core"].map(String::from).into());
        // core -> {ml, obs}, ml -> frame; serve *uses* core but nothing
        // trace-writing reaches serve.
        let want: BTreeSet<String> = ["core", "ml", "obs", "frame"].map(String::from).into();
        assert_eq!(t.reachable, want);
        assert!(!t.reachable.contains("serve"));
        assert!(t.errors.is_empty(), "{:?}", t.errors);
    }

    #[test]
    fn step_record_construction_is_a_root_but_tests_are_not() {
        let files = vec![
            scanned(
                "crates/baselines/src/cl.rs",
                "fn rec() { let r = StepRecord { iteration: 0 }; }",
            ),
            scanned(
                "crates/bench/src/lib.rs",
                "#[cfg(test)]\nmod t { fn rec() { let r = StepRecord { iteration: 0 }; } }",
            ),
        ];
        let t = compute_taint(&files, &[]);
        assert_eq!(t.roots, ["baselines"].map(String::from).into());
    }

    #[test]
    fn exemption_subtracts_and_goes_stale_when_unreachable() {
        let files = vec![
            scanned("crates/core/src/trace.rs", "pub struct CleaningTrace;\nuse comet_obs::C;"),
            scanned("crates/obs/src/lib.rs", "pub struct C;"),
        ];
        let exempt = vec![ExemptEntry { name: "obs".into(), reason: "audited counters".into() }];
        let t = compute_taint(&files, &exempt);
        assert!(t.reachable.contains("obs"));
        assert!(!t.trace_affecting.contains("obs"));
        assert!(t.errors.is_empty());
        // Same exemption without the edge: stale.
        let files = vec![scanned("crates/core/src/trace.rs", "pub struct CleaningTrace;")];
        let t = compute_taint(&files, &exempt);
        assert_eq!(t.errors.len(), 1);
        assert!(t.errors[0].contains("stale"), "{}", t.errors[0]);
    }

    #[test]
    fn no_roots_is_a_self_check_error() {
        let files = vec![scanned("crates/obs/src/lib.rs", "pub struct C;")];
        let t = compute_taint(&files, &[]);
        assert_eq!(t.errors.len(), 1);
        assert!(t.errors[0].contains("no trace-writing roots"), "{}", t.errors[0]);
    }

    const CONFIG_SRC: &str =
        "pub struct CometConfig {\n    pub budget: f64,\n    pub kernels: KernelTier,\n}";
    const DETECT_SRC: &str = "pub struct DetectorConfig {\n    pub knn_k: usize,\n}";

    fn d7_files(fp_body: &str) -> Vec<ScannedFile> {
        let checkpoint = format!(
            "pub(crate) fn config_fingerprint(config: &CometConfig, errors: &[ErrorType]) -> u64 {{\n    {fp_body}\n}}\n\
             pub(crate) fn detect_fingerprint(detect: &Option<DetectorConfig>) -> u64 {{\n    mix_bytes(0xDE, format!(\"{{detect:?}}\").as_bytes())\n}}\n\
             impl CheckpointWriter {{\n    pub fn create(path: &Path, seed: u64) -> Result<Self, E> {{\n        obj.field_str(\"kind\", \"checkpoint_header\").field_str(\"seed\", &hex(seed));\n        Ok(w)\n    }}\n}}\n\
             pub(crate) fn load(path: &Path) -> Result<Data, E> {{\n    match value.get(\"kind\") {{\n        Some(\"checkpoint_header\") => {{\n            data.seed = get_hex(&value, \"seed\")?;\n        }}\n        _ => {{}}\n    }}\n    Ok(data)\n}}"
        );
        vec![
            scanned("crates/core/src/config.rs", CONFIG_SRC),
            scanned("crates/detect/src/config.rs", DETECT_SRC),
            scanned("crates/core/src/checkpoint.rs", &checkpoint),
        ]
    }

    #[test]
    fn whole_struct_debug_capture_covers_every_field() {
        let files = d7_files("mix_bytes(0xC0, format!(\"{config:?}|{errors:?}\").as_bytes())");
        let cov = fingerprint_coverage(&files);
        assert!(cov.findings.is_empty(), "{:?}", cov.findings);
    }

    #[test]
    fn dropping_the_capture_uncovers_all_fields() {
        let files = d7_files("mix_bytes(0xC0, format!(\"{errors:?}\").as_bytes())");
        let cov = fingerprint_coverage(&files);
        let fields: Vec<&str> = cov
            .findings
            .iter()
            .filter(|f| f.file == "crates/core/src/config.rs")
            .map(|f| f.message.split('`').nth(1).unwrap_or(""))
            .collect();
        assert_eq!(fields, ["CometConfig.budget", "CometConfig.kernels"]);
    }

    #[test]
    fn per_field_mixing_covers_exactly_the_mixed_fields() {
        let files = d7_files("mix(mix(0, config.budget.to_bits()), errors.len() as u64)");
        let cov = fingerprint_coverage(&files);
        let msgs: Vec<&str> = cov.findings.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("CometConfig.kernels"));
    }

    #[test]
    fn nofp_pragma_excuses_a_field_and_is_credited() {
        let config = "pub struct CometConfig {\n    pub budget: f64,\n    // comet-lint: nofp — label only, never read by the session\n    pub label: String,\n}";
        let mut files = d7_files("mix(0, config.budget.to_bits()) ^ errors.len() as u64");
        files[0] = scanned("crates/core/src/config.rs", config);
        let cov = fingerprint_coverage(&files);
        assert!(cov.findings.is_empty(), "{:?}", cov.findings);
        assert_eq!(cov.credited_nofp, [("crates/core/src/config.rs".to_string(), 3u32)].into());
    }

    #[test]
    fn builder_param_and_key_roundtrip_mismatches_are_findings() {
        // `tier` never written; `lane` written but never read; `extra`
        // read but never written.
        let checkpoint = "impl CheckpointWriter {\n    pub fn create(path: &Path, seed: u64, tier: u8) -> Result<Self, E> {\n        obj.field_str(\"kind\", \"h\").field_str(\"seed\", &hex(seed)).field_u64(\"lane\", 8);\n        Ok(w)\n    }\n}\nfn load(path: &Path) -> Result<Data, E> {\n    match value.get(\"kind\") {\n        Some(\"checkpoint_header\") => {\n            data.seed = get_hex(&value, \"seed\")?;\n            data.extra = get_f64(&value, \"extra\")?;\n        }\n        _ => {}\n    }\n    Ok(data)\n}";
        let files = vec![scanned("crates/core/src/checkpoint.rs", checkpoint)];
        let cov = fingerprint_coverage(&files);
        let header: Vec<&str> = cov
            .findings
            .iter()
            .filter(|f| f.file == "crates/core/src/checkpoint.rs")
            .map(|f| f.message.as_str())
            .collect();
        assert!(header.iter().any(|m| m.contains("`tier`")), "{header:?}");
        assert!(header.iter().any(|m| m.contains("`lane`")), "{header:?}");
        assert!(header.iter().any(|m| m.contains("`extra`")), "{header:?}");
    }

    #[test]
    fn missing_targets_are_findings_not_silence() {
        let cov = fingerprint_coverage(&[]);
        assert!(!cov.findings.is_empty());
        assert!(cov.findings.iter().all(|f| f.rule == Rule::D7));
    }
}
