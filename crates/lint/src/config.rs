//! The checked-in allowlist (`lint.toml`) and its burn-down semantics.
//!
//! The file is a tiny TOML subset — `[[allow]]` and `[[exempt]]` tables
//! with string and integer values only — parsed by hand so the linter
//! stays dependency free. Each `[[allow]]` entry pins an exact finding
//! count for one `(rule, file)` pair. The count is a ratchet: more
//! findings than the count is a new violation, and *fewer* findings than
//! the count is also an error ("stale allowlist") so the number can only
//! ever be ratcheted down. `[[exempt]]` entries subtract an audited crate
//! from the computed trace-taint set (D8) and go stale the day the crate
//! stops being reachable.

use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One `[[allow]]` entry: `count` findings of `rule` in `file` are
/// tolerated, no more and no fewer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: Rule,
    pub file: String,
    pub count: usize,
    pub reason: String,
}

/// One `[[exempt]]` entry: `name` is reachable from the trace-writing
/// roots but audited to never feed trace decisions (`reason` says why).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExemptEntry {
    pub name: String,
    pub reason: String,
}

/// The parsed allowlist.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    pub exempt: Vec<ExemptEntry>,
}

impl Allowlist {
    /// Total allowed findings across all entries — the workspace burn-down
    /// count. CI asserts this number can only decrease.
    pub fn burn_down_total(&self) -> usize {
        self.entries.iter().map(|e| e.count).sum()
    }

    /// Burn-down count for one rule.
    pub fn burn_down(&self, rule: Rule) -> usize {
        self.entries.iter().filter(|e| e.rule == rule).map(|e| e.count).sum()
    }
}

/// An `[[allow]]` entry mid-parse: rule, file, count, reason so far.
type PartialAllow = (Option<Rule>, Option<String>, Option<usize>, String);

/// Which table the parser is inside.
enum Current {
    Allow(PartialAllow),
    Exempt(Option<String>, Option<String>),
}

/// Parse `lint.toml` text. Returns a message describing the first
/// malformed line on failure.
pub fn parse_allowlist(text: &str) -> Result<Allowlist, String> {
    let mut out = Allowlist::default();
    let mut current: Option<Current> = None;
    let finish = |cur: &mut Option<Current>, out: &mut Allowlist| -> Result<(), String> {
        match cur.take() {
            Some(Current::Allow((rule, file, count, reason))) => {
                let rule = rule.ok_or("allow entry missing `rule`")?;
                let file = file.ok_or("allow entry missing `file`")?;
                let count = count.ok_or("allow entry missing `count`")?;
                out.entries.push(AllowEntry { rule, file, count, reason });
            }
            Some(Current::Exempt(name, reason)) => {
                let name = name.ok_or("exempt entry missing `crate`")?;
                let reason = reason.ok_or("exempt entry missing `reason`")?;
                if reason.trim().is_empty() {
                    return Err(format!("exempt entry for `{name}` has an empty `reason`"));
                }
                out.exempt.push(ExemptEntry { name, reason });
            }
            None => {}
        }
        Ok(())
    };
    for (n, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = n + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            finish(&mut current, &mut out)?;
            current = Some(Current::Allow((None, None, None, String::new())));
            continue;
        }
        if line == "[[exempt]]" {
            finish(&mut current, &mut out)?;
            current = Some(Current::Exempt(None, None));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("lint.toml:{lineno}: unknown table `{line}`"));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("lint.toml:{lineno}: expected `key = value`, got `{line}`"));
        };
        let (key, value) = (key.trim(), value.trim());
        match current.as_mut() {
            None => {
                return Err(format!(
                    "lint.toml:{lineno}: `{key}` outside an [[allow]]/[[exempt]] entry"
                ));
            }
            Some(Current::Allow(cur)) => match key {
                "rule" => {
                    let s = unquote(value)
                        .ok_or_else(|| format!("lint.toml:{lineno}: `rule` must be a string"))?;
                    cur.0 = Some(Rule::parse(&s).ok_or_else(|| {
                        format!("lint.toml:{lineno}: unknown rule `{s}` (expected D1..D9)")
                    })?);
                }
                "file" => {
                    cur.1 =
                        Some(unquote(value).ok_or_else(|| {
                            format!("lint.toml:{lineno}: `file` must be a string")
                        })?);
                }
                "count" => {
                    cur.2 = Some(value.parse().map_err(|_| {
                        format!("lint.toml:{lineno}: `count` must be a non-negative integer")
                    })?);
                }
                "reason" => {
                    cur.3 = unquote(value)
                        .ok_or_else(|| format!("lint.toml:{lineno}: `reason` must be a string"))?;
                }
                other => return Err(format!("lint.toml:{lineno}: unknown key `{other}`")),
            },
            Some(Current::Exempt(name, reason)) => {
                match key {
                    "crate" => {
                        *name = Some(unquote(value).ok_or_else(|| {
                            format!("lint.toml:{lineno}: `crate` must be a string")
                        })?);
                    }
                    "reason" => {
                        *reason = Some(unquote(value).ok_or_else(|| {
                            format!("lint.toml:{lineno}: `reason` must be a string")
                        })?);
                    }
                    other => {
                        return Err(format!("lint.toml:{lineno}: unknown exempt key `{other}`"));
                    }
                }
            }
        }
    }
    finish(&mut current, &mut out)?;
    Ok(out)
}

fn unquote(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?.strip_suffix('"')?;
    // The only escapes the allowlist needs.
    Some(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

/// The outcome of reconciling findings against the allowlist.
#[derive(Debug, Default)]
pub struct Evaluation {
    /// Human-readable violations; non-empty means a nonzero exit.
    pub errors: Vec<String>,
    /// Findings covered by an exact-count allow entry.
    pub allowed: usize,
    /// The `(rule, file)` groups whose findings are allowlisted — lets
    /// `--json` tag individual findings.
    pub allowed_groups: Vec<(Rule, String)>,
}

/// Reconcile pragma-filtered findings with the allowlist.
pub fn evaluate(findings: &[Finding], allow: &Allowlist) -> Evaluation {
    let mut by_group: BTreeMap<(Rule, &str), Vec<&Finding>> = BTreeMap::new();
    for f in findings {
        by_group.entry((f.rule, f.file.as_str())).or_default().push(f);
    }
    let mut eval = Evaluation::default();
    let mut claimed: Vec<(Rule, &str)> = Vec::new();
    for entry in &allow.entries {
        let key = (entry.rule, entry.file.as_str());
        if claimed.contains(&key) {
            eval.errors.push(format!(
                "lint.toml: duplicate [[allow]] entry for {} in {}",
                entry.rule, entry.file
            ));
            continue;
        }
        claimed.push(key);
        let n = by_group.get(&key).map_or(0, |v| v.len());
        if n == entry.count && n > 0 {
            eval.allowed += n;
            eval.allowed_groups.push((entry.rule, entry.file.clone()));
        } else if n > entry.count {
            let mut msg = format!(
                "{}: {} findings of {} exceed the allowlisted count {} — fix the new \
                 violation(s) or annotate with `// comet-lint: allow({})`:",
                entry.file, n, entry.rule, entry.count, entry.rule
            );
            for f in by_group.get(&key).into_iter().flatten() {
                let _ = write!(msg, "\n  {f}");
            }
            eval.errors.push(msg);
        } else {
            eval.errors.push(format!(
                "lint.toml: stale entry — {} now has {} findings of {} but allows {}; \
                 ratchet the count down (it can only decrease)",
                entry.file, n, entry.rule, entry.count
            ));
        }
    }
    for (key, group) in &by_group {
        if claimed.contains(key) {
            continue;
        }
        for f in group {
            eval.errors.push(f.to_string());
        }
    }
    eval
}

/// Render `[[allow]]` entries for every finding group — the starting
/// point for a new baseline after an intentional change.
pub fn render_baseline(findings: &[Finding]) -> String {
    let mut by_group: BTreeMap<(Rule, &str), usize> = BTreeMap::new();
    for f in findings {
        *by_group.entry((f.rule, f.file.as_str())).or_default() += 1;
    }
    let mut out = String::new();
    for ((rule, file), count) in by_group {
        let _ = write!(
            out,
            "[[allow]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\nreason = \"\"\n\n"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: Rule, file: &str, line: u32) -> Finding {
        Finding { rule, file: file.into(), line, col: 1, message: "m".into() }
    }

    #[test]
    fn parses_entries_and_totals() {
        let toml = r#"
            # comment
            [[allow]]
            rule = "D4"
            file = "crates/core/src/session.rs"
            count = 3
            reason = "pre-existing; burn down"

            [[allow]]
            rule = "D1"
            file = "crates/ml/src/featurize.rs"
            count = 2
        "#;
        let a = parse_allowlist(toml).expect("parses");
        assert_eq!(a.entries.len(), 2);
        assert_eq!(a.burn_down_total(), 5);
        assert_eq!(a.burn_down(Rule::D4), 3);
    }

    #[test]
    fn parses_exempt_entries() {
        let toml = r#"
            [[exempt]]
            crate = "obs"
            reason = "audited counter layer; output never feeds trace decisions"

            [[allow]]
            rule = "D9"
            file = "f.rs"
            count = 1
            reason = "r"
        "#;
        let a = parse_allowlist(toml).expect("parses");
        assert_eq!(a.exempt.len(), 1);
        assert_eq!(a.exempt[0].name, "obs");
        assert_eq!(a.entries.len(), 1);
    }

    #[test]
    fn exempt_requires_crate_and_reason() {
        assert!(parse_allowlist("[[exempt]]\ncrate = \"obs\"").is_err());
        assert!(parse_allowlist("[[exempt]]\nreason = \"r\"").is_err());
        assert!(parse_allowlist("[[exempt]]\ncrate = \"obs\"\nreason = \"\"").is_err());
        assert!(parse_allowlist("[[exempt]]\ncrate = \"obs\"\ncount = 1").is_err());
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(parse_allowlist("[[allow]]\nrule = \"D12\"").is_err());
        assert!(parse_allowlist("rule = \"D1\"").is_err());
        assert!(parse_allowlist("[[allow]]\nfile = \"x\"\ncount = 1").is_err());
        assert!(parse_allowlist("[[allow]]\nrule = \"D1\"\nfile = \"x\"\ncount = -1").is_err());
        assert!(parse_allowlist("[other]").is_err());
    }

    #[test]
    fn d7_to_d9_are_valid_allowlist_rules() {
        for rule in ["D7", "D8", "D9"] {
            let toml = format!("[[allow]]\nrule = \"{rule}\"\nfile = \"f.rs\"\ncount = 1\n");
            assert!(parse_allowlist(&toml).is_ok(), "{rule}");
        }
    }

    #[test]
    fn exact_count_is_allowed() {
        let a = parse_allowlist("[[allow]]\nrule = \"D4\"\nfile = \"f.rs\"\ncount = 2\n")
            .expect("parses");
        let fs = vec![finding(Rule::D4, "f.rs", 1), finding(Rule::D4, "f.rs", 2)];
        let e = evaluate(&fs, &a);
        assert!(e.errors.is_empty(), "{:?}", e.errors);
        assert_eq!(e.allowed, 2);
        assert_eq!(e.allowed_groups, vec![(Rule::D4, "f.rs".to_string())]);
    }

    #[test]
    fn count_exceeded_and_stale_both_fail() {
        let a = parse_allowlist("[[allow]]\nrule = \"D4\"\nfile = \"f.rs\"\ncount = 1\n")
            .expect("parses");
        let over = vec![finding(Rule::D4, "f.rs", 1), finding(Rule::D4, "f.rs", 2)];
        assert_eq!(evaluate(&over, &a).errors.len(), 1);
        let stale: Vec<Finding> = vec![];
        let e = evaluate(&stale, &a);
        assert_eq!(e.errors.len(), 1);
        assert!(e.errors[0].contains("stale"), "{}", e.errors[0]);
    }

    #[test]
    fn unlisted_findings_are_errors() {
        let fs = vec![finding(Rule::D2, "g.rs", 7)];
        let e = evaluate(&fs, &Allowlist::default());
        assert_eq!(e.errors.len(), 1);
        assert!(e.errors[0].contains("g.rs:7"), "{}", e.errors[0]);
    }
}
