//! A hand-rolled, comment- and string-aware Rust lexer.
//!
//! This is *not* a full Rust lexer: it recognizes exactly enough structure
//! for rule matching — identifiers, punctuation, numeric literals (with a
//! float flag), and the complete family of string-ish literals (plain,
//! raw with any number of `#`s, byte, C, and char literals, with escapes)
//! — while guaranteeing that nothing inside a comment or a literal ever
//! reaches a rule. Comments are captured on the side with their line
//! ranges so pragma and `// SAFETY:` handling can reason about them.
//!
//! The lexer operates on raw bytes and must never panic, whatever soup it
//! is fed: unterminated literals and comments simply run to end of input.

/// One lexed token. Literals carry their raw source text (delimiters and
/// prefixes included): the token rules only need "a string was here", but
/// the D7 fingerprint-coverage analysis reads format-string captures
/// (`"{config:?}"`) and header key literals out of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (ASCII rules; good enough for this codebase).
    Ident(String),
    /// Numeric literal; `is_float` when it has a fractional part, an
    /// exponent, or an `f32`/`f64` suffix.
    Number { is_float: bool },
    /// Any string/char/byte/C-string literal, raw or not, with its raw
    /// source text.
    Literal(String),
    /// A single punctuation byte (`::` arrives as two `Punct(b':')`).
    Punct(u8),
}

/// A token plus its 1-based source position (line, byte column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
}

/// A comment (line or block, doc or not) with its text and line range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub end_line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a [u8]) -> Self {
        Cursor { src, i: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.i += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex a whole file. Total and panic-free for arbitrary byte input.
pub fn lex(src: &[u8]) -> Lexed {
    let mut c = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(b) = c.peek(0) {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek(1) == Some(b'/') => lex_line_comment(&mut c, &mut out),
            b'/' if c.peek(1) == Some(b'*') => lex_block_comment(&mut c, &mut out),
            b'"' => {
                let start = c.i;
                c.bump();
                skip_quoted(&mut c, b'"');
                let text = String::from_utf8_lossy(&src[start..c.i]).into_owned();
                out.tokens.push(Token { tok: Tok::Literal(text), line, col });
            }
            b'\'' => lex_quote(&mut c, &mut out, line, col),
            b'0'..=b'9' => lex_number(&mut c, &mut out, line, col),
            _ if is_ident_start(b) => lex_ident_or_prefixed_literal(&mut c, &mut out, line, col),
            _ => {
                c.bump();
                out.tokens.push(Token { tok: Tok::Punct(b), line, col });
            }
        }
    }
    out
}

fn lex_line_comment(c: &mut Cursor, out: &mut Lexed) {
    let line = c.line;
    let start = c.i;
    while let Some(b) = c.peek(0) {
        if b == b'\n' {
            break;
        }
        c.bump();
    }
    let text = String::from_utf8_lossy(&c.src[start..c.i]).into_owned();
    out.comments.push(Comment { text, line, end_line: line });
}

fn lex_block_comment(c: &mut Cursor, out: &mut Lexed) {
    let line = c.line;
    let start = c.i;
    c.bump();
    c.bump(); // consume `/*`
    let mut depth = 1u32;
    while depth > 0 {
        match (c.peek(0), c.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                c.bump();
                c.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                c.bump();
                c.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                c.bump();
            }
            (None, _) => break, // unterminated: runs to EOF
        }
    }
    let text = String::from_utf8_lossy(&c.src[start..c.i]).into_owned();
    out.comments.push(Comment { text, line, end_line: c.line });
}

/// Consume a quoted literal body after its opening delimiter, honoring
/// backslash escapes, until the closing delimiter or EOF.
fn skip_quoted(c: &mut Cursor, close: u8) {
    while let Some(b) = c.bump() {
        if b == b'\\' {
            c.bump(); // the escaped byte, whatever it is
        } else if b == close {
            return;
        }
    }
}

/// Consume a raw literal body after `r##...#"`, until `"` followed by
/// `hashes` `#`s, or EOF. No escapes in raw strings.
fn skip_raw(c: &mut Cursor, hashes: usize) {
    while let Some(b) = c.bump() {
        if b == b'"' {
            let mut n = 0;
            while n < hashes && c.peek(n) == Some(b'#') {
                n += 1;
            }
            if n == hashes {
                for _ in 0..hashes {
                    c.bump();
                }
                return;
            }
        }
    }
}

/// `'` starts either a lifetime (`'a`) or a char literal (`'a'`, `'\n'`).
/// Heuristic: `'` + ident-char + non-`'` is a lifetime; anything else is
/// a char literal.
fn lex_quote(c: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let one = c.peek(1);
    let two = c.peek(2);
    let is_lifetime = match (one, two) {
        (Some(n), t) if is_ident_continue(n) && n != b'\\' => t != Some(b'\''),
        _ => false,
    };
    let start = c.i;
    c.bump(); // the `'`
    if is_lifetime {
        // Emit the quote as punctuation; the label lexes as a normal ident.
        out.tokens.push(Token { tok: Tok::Punct(b'\''), line, col });
    } else {
        skip_quoted(c, b'\'');
        let text = String::from_utf8_lossy(&c.src[start..c.i]).into_owned();
        out.tokens.push(Token { tok: Tok::Literal(text), line, col });
    }
}

fn lex_number(c: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let mut is_float = false;
    if c.peek(0) == Some(b'0') && matches!(c.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
    {
        c.bump();
        c.bump();
        while matches!(c.peek(0), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            c.bump();
        }
        out.tokens.push(Token { tok: Tok::Number { is_float: false }, line, col });
        return;
    }
    while matches!(c.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
        c.bump();
    }
    // Fractional part — but `1..n` is a range and `1.max(2)` a method call.
    if c.peek(0) == Some(b'.') && matches!(c.peek(1), Some(b) if b.is_ascii_digit()) {
        is_float = true;
        c.bump();
        while matches!(c.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
            c.bump();
        }
    } else if c.peek(0) == Some(b'.')
        && !matches!(c.peek(1), Some(b) if is_ident_continue(b) || b == b'.')
    {
        // Trailing-dot float like `1.` (not `1..` or `1.method()`).
        is_float = true;
        c.bump();
    }
    // Exponent.
    if matches!(c.peek(0), Some(b'e' | b'E')) {
        let (sign, digit) = (c.peek(1), c.peek(2));
        let has_exp = match sign {
            Some(b'+' | b'-') => matches!(digit, Some(d) if d.is_ascii_digit()),
            Some(d) => d.is_ascii_digit(),
            None => false,
        };
        if has_exp {
            is_float = true;
            c.bump(); // e
            if matches!(c.peek(0), Some(b'+' | b'-')) {
                c.bump();
            }
            while matches!(c.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
                c.bump();
            }
        }
    }
    // Suffix (`u32`, `f64`, `_f32`…) rides along with the number token.
    let suffix_start = c.i;
    while matches!(c.peek(0), Some(b) if is_ident_continue(b)) {
        c.bump();
    }
    let suffix = &c.src[suffix_start..c.i];
    if suffix.ends_with(b"f32") || suffix.ends_with(b"f64") {
        is_float = true;
    }
    out.tokens.push(Token { tok: Tok::Number { is_float }, line, col });
}

/// An identifier — unless it is one of the literal prefixes (`r`, `b`,
/// `br`, `rb`, `c`, `cr`) immediately followed by a quote or raw-string
/// hashes, or a raw identifier `r#ident`.
fn lex_ident_or_prefixed_literal(c: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    let start = c.i;
    while matches!(c.peek(0), Some(b) if is_ident_continue(b)) {
        c.bump();
    }
    let ident = &c.src[start..c.i];
    let is_prefix = matches!(ident, b"r" | b"b" | b"br" | b"rb" | b"c" | b"cr");
    if is_prefix {
        match c.peek(0) {
            // `b"..."`, `c"..."` — plain quoted with escapes. (`r"` has no
            // escapes, but treating `\` as an escape inside it can only
            // mis-see `\"` — a sequence that cannot occur in valid raw
            // strings anyway.)
            Some(b'"') => {
                c.bump();
                if ident.contains(&b'r') {
                    skip_raw(c, 0);
                } else {
                    skip_quoted(c, b'"');
                }
                let text = String::from_utf8_lossy(&c.src[start..c.i]).into_owned();
                out.tokens.push(Token { tok: Tok::Literal(text), line, col });
                return;
            }
            // `b'x'` byte char.
            Some(b'\'') if ident == b"b" => {
                c.bump();
                skip_quoted(c, b'\'');
                let text = String::from_utf8_lossy(&c.src[start..c.i]).into_owned();
                out.tokens.push(Token { tok: Tok::Literal(text), line, col });
                return;
            }
            Some(b'#') => {
                // Count hashes; `r#"`-style means raw string, `r#ident`
                // means raw identifier.
                let mut n = 0;
                while c.peek(n) == Some(b'#') {
                    n += 1;
                }
                match c.peek(n) {
                    Some(b'"') if ident.contains(&b'r') => {
                        for _ in 0..=n {
                            c.bump(); // hashes + opening quote
                        }
                        skip_raw(c, n);
                        let text = String::from_utf8_lossy(&c.src[start..c.i]).into_owned();
                        out.tokens.push(Token { tok: Tok::Literal(text), line, col });
                        return;
                    }
                    Some(bb) if n == 1 && ident == b"r" && is_ident_start(bb) => {
                        c.bump(); // the `#`
                        let id_start = c.i;
                        while matches!(c.peek(0), Some(b) if is_ident_continue(b)) {
                            c.bump();
                        }
                        let text = String::from_utf8_lossy(&c.src[id_start..c.i]).into_owned();
                        out.tokens.push(Token { tok: Tok::Ident(text), line, col });
                        return;
                    }
                    _ => {} // fall through: plain ident then `#` punctuation
                }
            }
            _ => {}
        }
    }
    let text = String::from_utf8_lossy(ident).into_owned();
    out.tokens.push(Token { tok: Tok::Ident(text), line, col });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src.as_bytes())
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let x = "HashMap in a string";
            // HashMap in a line comment
            /* HashMap in a /* nested */ block comment */
            let y = r#"HashMap in a raw string"#;
            let z = b"HashMap bytes";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "HashMap"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "real_ident"));
    }

    #[test]
    fn comments_are_captured_with_line_ranges() {
        let src = "// one\nlet a = 1;\n/* two\nspans */ let b = 2;\n";
        let lexed = lex(src.as_bytes());
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!((lexed.comments[0].line, lexed.comments[0].end_line), (1, 1));
        assert_eq!((lexed.comments[1].line, lexed.comments[1].end_line), (3, 4));
        assert!(lexed.comments[1].text.contains("spans"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let nl = '\\n'; x }";
        let ids = idents(src);
        // The lifetime labels lex as idents, and the char literals do not
        // swallow the rest of the line.
        assert!(ids.iter().filter(|i| *i == "a").count() >= 3, "{ids:?}");
        assert!(ids.iter().any(|i| i == "x"));
    }

    #[test]
    fn raw_identifiers_and_raw_strings_disambiguate() {
        let src = "let r#fn = 1; let s = r\"txt\"; let t = r##\"with \"# inside\"##; end();";
        let ids = idents(src);
        assert!(ids.iter().any(|i| i == "fn"), "{ids:?}");
        assert!(ids.iter().any(|i| i == "end"), "{ids:?}");
        assert!(!ids.iter().any(|i| i == "txt" || i == "with" || i == "inside"), "{ids:?}");
    }

    #[test]
    fn numbers_track_floatness() {
        let floats = |src: &str| -> Vec<bool> {
            lex(src.as_bytes())
                .tokens
                .into_iter()
                .filter_map(|t| match t.tok {
                    Tok::Number { is_float } => Some(is_float),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(floats("0.0 1e-5 2f64 3."), vec![true, true, true, true]);
        assert_eq!(floats("0 1u32 0xff 10_000"), vec![false, false, false, false]);
        // `1..n` is a range over integers, `1.max(2)` a method call.
        assert_eq!(floats("for i in 1..n {} 1.max(2)"), vec![false, false, false]);
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let lexed = lex(b"ab\n  cd");
        assert_eq!(lexed.tokens[0].line, 1);
        assert_eq!(lexed.tokens[0].col, 1);
        assert_eq!(lexed.tokens[1].line, 2);
        assert_eq!(lexed.tokens[1].col, 3);
    }

    #[test]
    fn literals_carry_their_raw_text() {
        let lits = |src: &str| -> Vec<String> {
            lex(src.as_bytes())
                .tokens
                .into_iter()
                .filter_map(|t| match t.tok {
                    Tok::Literal(s) => Some(s),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(lits(r#"f("{config:?}|{errors:?}")"#), vec!["\"{config:?}|{errors:?}\""]);
        assert_eq!(lits("let k = \"kind\"; let c = 'x';"), vec!["\"kind\"", "'x'"]);
        assert!(lits("let s = r#\"raw text\"#;")[0].contains("raw text"));
    }

    #[test]
    fn unterminated_literals_run_to_eof_without_panicking() {
        for src in ["\"unterminated", "r#\"unterminated", "/* unterminated", "'\\", "b\"oops"] {
            let _ = lex(src.as_bytes());
        }
    }
}
