//! The `comet-lint` CLI: `cargo run -p comet-lint --release` from the
//! workspace root. Exit code 0 means the workspace satisfies every rule
//! (given `lint.toml`); 1 means violations; 2 means the linter itself
//! could not run (bad arguments, unreadable files, malformed allowlist).

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: comet-lint [--root DIR] [--config FILE] [--list] [--json] [--taint] [--print-baseline]

  --root DIR         workspace root to scan (default: .)
  --config FILE      allowlist path (default: <root>/lint.toml)
  --list             print every finding, including allowlisted ones
  --json             print the full report as JSON on stdout (findings,
                     errors, computed trace-taint sets) for CI annotation
  --taint            print the computed D8 crate sets (roots, reachable,
                     trace-affecting) and exit
  --print-baseline   print [[allow]] entries for all current findings
                     (the starting point for a new lint.toml baseline)";

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    list: bool,
    json: bool,
    taint: bool,
    print_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        list: false,
        json: false,
        taint: false,
        print_baseline: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = it.next().ok_or("--root needs a value")?.into(),
            "--config" => args.config = Some(it.next().ok_or("--config needs a value")?.into()),
            "--list" => args.list = true,
            "--json" => args.json = true,
            "--taint" => args.taint = true,
            "--print-baseline" => args.print_baseline = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if !args.root.join("Cargo.toml").exists() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml); pass --root",
            args.root.display()
        ));
    }
    let config_path = args.config.clone().unwrap_or_else(|| args.root.join("lint.toml"));
    let allow = comet_lint::load_allowlist(&config_path)?;
    let report = comet_lint::lint_workspace(&args.root, &allow)?;

    if args.print_baseline {
        print!("{}", comet_lint::config::render_baseline(&report.findings));
        return Ok(true);
    }
    if args.taint {
        let sets = [
            ("roots", &report.taint.roots),
            ("reachable", &report.taint.reachable),
            ("trace-affecting", &report.taint.trace_affecting),
        ];
        for (name, set) in sets {
            let names: Vec<&str> = set.iter().map(String::as_str).collect();
            println!("{name}: {}", names.join(" "));
        }
        for err in &report.taint.errors {
            eprintln!("error: {err}");
        }
        return Ok(report.taint.errors.is_empty());
    }
    if args.json {
        print!("{}", comet_lint::render_json(&report));
        return Ok(report.is_clean());
    }
    if args.list {
        for f in &report.findings {
            println!("{f}");
        }
    }
    for err in &report.evaluation.errors {
        eprintln!("error: {err}");
    }
    eprintln!(
        "comet-lint: {} files scanned, {} findings ({} allowlisted, burn-down total {}), \
         {} trace-affecting crates, {} error(s)",
        report.files,
        report.findings.len(),
        report.evaluation.allowed,
        allow.burn_down_total(),
        report.taint.trace_affecting.len(),
        report.evaluation.errors.len()
    );
    Ok(report.is_clean())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
