// D6 true negative: reductions route through the fixed-order kernels.
use crate::kernels;

pub fn total(xs: &[f64]) -> f64 {
    kernels::sum(xs)
}

pub fn count(xs: &[u64]) -> u64 {
    // Integer sums are exact regardless of order — must not fire.
    xs.iter().sum::<u64>()
}
