//! True-negative twin of `tp_d8.rs`: the same step-record construction
//! inside `#[cfg(test)]` is dev-only and must NOT mark the crate as a
//! trace-writing root. Not compiled — scanned by `tests/dataflow.rs`.

#[cfg(test)]
mod tests {
    use comet_core::StepRecord;

    pub fn record_step(iteration: u64) -> StepRecord {
        StepRecord { iteration }
    }
}
