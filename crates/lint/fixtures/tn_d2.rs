// D2 true negative: total order + explicit NaN sanitization.
pub fn rank(scores: &mut Vec<(usize, f64)>) {
    let key = |s: f64| if s.is_nan() { f64::NEG_INFINITY } else { s };
    scores.sort_by(|a, b| key(b.1).total_cmp(&key(a.1)));
}

pub fn larger(a: u32, b: u32) -> u32 {
    // Integer max is total — not score-like, must not fire.
    a.max(b)
}
