//! True-negative twin of `tp_d9.rs`: the same operations written the way
//! D9 wants them. Not compiled — scanned by `tests/rules.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub struct Shared {
    a: Mutex<Vec<u32>>,
    b: Mutex<Vec<u32>>,
    payload: Arc<Vec<u32>>,
    counter: AtomicU64,
}

impl Shared {
    /// Sequential statements: each guard is scoped before the next lock.
    pub fn sequential_locks(&self) -> usize {
        let na = self.a.lock().len();
        let nb = self.b.lock().len();
        na + nb
    }

    /// An explicit ordering instead of Relaxed.
    pub fn bump(&self) {
        self.counter.fetch_add(1, Ordering::SeqCst);
    }

    pub fn view(&self) -> Arc<Vec<u32>> {
        Arc::clone(&self.payload)
    }

    /// The view is dropped before the exclusive access — refcount is back
    /// to 1, so `make_mut` mutates in place.
    pub fn mutate(&mut self) -> usize {
        let view = self.view();
        let n = view.len();
        drop(view);
        let out = Arc::make_mut(&mut self.payload);
        out.push(1);
        n
    }
}
