// D2 true positives: NaN-unsafe comparisons on score-like values.
pub fn rank(scores: &mut Vec<(usize, f64)>) {
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
}

pub fn best(scores: &[f64]) -> f64 {
    scores.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}
