// D4 true positives: panicking escape hatches in library code.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn second(xs: &[u32]) -> u32 {
    *xs.get(1).expect("at least two elements")
}

pub fn never(flag: bool) {
    if flag {
        panic!("boom");
    }
}
