// D1 true positive: HashMap/HashSet named in a trace-affecting crate body.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn tally(xs: &[(u32, u32)]) -> usize {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    let mut seen: HashSet<u32> = HashSet::new();
    for &(k, v) in xs {
        *counts.entry(k).or_insert(0) += v;
        seen.insert(k);
    }
    counts.len() + seen.len()
}
