// D3 true negative: all randomness flows from an injected seeded RNG.
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub fn roll(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen()
}
