// D3 true positives: entropy and wall-clock outside comet-obs/bench.
use std::time::Instant;

pub fn timed() -> std::time::Duration {
    let started = Instant::now();
    started.elapsed()
}

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}
