//! True-positive fixture for D8 root detection: constructing a step
//! record in production code marks the crate as a trace-writing root even
//! though `StepRecord` is defined elsewhere. Not compiled — scanned by
//! `tests/dataflow.rs`.

use comet_core::StepRecord;

pub fn record_step(iteration: u64) -> StepRecord {
    StepRecord { iteration }
}
