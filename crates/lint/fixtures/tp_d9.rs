//! True-positive fixture for D9: every concurrency hazard the rule knows.
//! Not compiled — scanned by `tests/rules.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub struct Shared {
    a: Mutex<Vec<u32>>,
    b: Mutex<Vec<u32>>,
    payload: Arc<Vec<u32>>,
    counter: AtomicU64,
}

impl Shared {
    /// D9a: two `.lock()` acquisitions in one statement chain.
    pub fn nested_locks(&self) -> usize {
        let total = self.a.lock().len() + self.b.lock().len();
        total
    }

    /// D9b: `Ordering::Relaxed` outside the audited counter layer.
    pub fn bump(&self) {
        self.counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn view(&self) -> Arc<Vec<u32>> {
        Arc::clone(&self.payload)
    }

    /// D9c: `Arc::make_mut` while a `self`-derived view is still live —
    /// the view's clone keeps the refcount above 1, so the mutation
    /// silently lands on a copy.
    pub fn mutate(&mut self) -> usize {
        let view = self.view();
        let out = Arc::make_mut(&mut self.payload);
        out.push(1);
        view.len()
    }
}
