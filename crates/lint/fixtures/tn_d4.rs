// D4 true negative: errors propagate instead of panicking; test code is free.
pub fn first(xs: &[u32]) -> Result<u32, String> {
    xs.first().copied().ok_or_else(|| "empty input".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let xs = [1u32, 2];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
