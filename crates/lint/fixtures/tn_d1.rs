// D1 true negative: ordered collections only; use-statements alone are exempt.
use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn tally(xs: &[(u32, u32)]) -> usize {
    let mut counts: BTreeMap<u32, u32> = BTreeMap::new();
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for &(k, v) in xs {
        *counts.entry(k).or_insert(0) += v;
        seen.insert(k);
    }
    counts.len() + seen.len()
}
