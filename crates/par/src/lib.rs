//! # comet-par — deterministic data parallelism
//!
//! A small rayon-style fan-out built on `std::thread::scope` (the build
//! environment is offline, so rayon itself is unavailable). Design goals,
//! in priority order:
//!
//! 1. **Determinism**: [`par_map`] returns results in input order, so a
//!    caller that derives any randomness *before* fanning out produces
//!    bit-identical output at any thread count.
//! 2. **Bounded threads**: a global worker-slot budget caps the *total*
//!    number of live workers across nested fan-outs at the configured
//!    thread count (an inner `par_map` inside a worker degrades to
//!    sequential when no slots are free, instead of oversubscribing).
//! 3. **No external dependencies**: plain `std`, plus the equally
//!    dependency-free `comet-obs` for worker-slot utilization metrics
//!    (`par.*` counters/gauges, recorded only while metrics are enabled).
//!
//! Thread-count resolution, highest priority first:
//!
//! 1. a scoped override installed by [`with_threads`] (inherited by
//!    workers for the duration of their fan-out),
//! 2. a process-wide override set by [`set_global_threads`] (CLI
//!    `--threads` flags),
//! 3. the `COMET_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Unset sentinel for the global override.
const UNSET: usize = usize::MAX;

/// Process-wide thread-count override (0 or UNSET = unset).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(UNSET);

/// Workers currently spawned by every in-flight [`par_map`] in the
/// process; bounds nested fan-out.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped override installed by [`with_threads`] / worker inheritance.
    static LOCAL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Set (or with `None` clear) the process-wide thread-count override.
/// `Some(1)` forces every subsequent [`par_map`] sequential.
pub fn set_global_threads(threads: Option<usize>) {
    GLOBAL_THREADS.store(threads.map_or(UNSET, |t| t.max(1)), Ordering::SeqCst);
}

/// Run `f` with the calling thread's thread count forced to `threads`.
/// Restores the previous override afterwards; nests correctly.
pub fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let previous = LOCAL_THREADS.with(|c| c.replace(Some(threads.max(1))));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL_THREADS.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(previous);
    f()
}

/// The thread count [`par_map`] targets on this thread right now.
pub fn max_threads() -> usize {
    if let Some(t) = LOCAL_THREADS.with(Cell::get) {
        return t.max(1);
    }
    let global = GLOBAL_THREADS.load(Ordering::SeqCst);
    if global != UNSET && global != 0 {
        return global;
    }
    if let Ok(value) = std::env::var("COMET_THREADS") {
        if let Ok(t) = value.trim().parse::<usize>() {
            if t >= 1 {
                return t;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Try to reserve up to `wanted` extra worker slots from the global
/// budget `cap`. Returns how many were actually reserved.
fn reserve_workers(wanted: usize, cap: usize) -> usize {
    if wanted == 0 {
        return 0;
    }
    let mut current = ACTIVE_WORKERS.load(Ordering::SeqCst);
    loop {
        let free = cap.saturating_sub(current + 1); // +1: the caller itself
        let take = wanted.min(free);
        if take == 0 {
            return 0;
        }
        match ACTIVE_WORKERS.compare_exchange(
            current,
            current + take,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return take,
            Err(observed) => current = observed,
        }
    }
}

fn release_workers(count: usize) {
    if count > 0 {
        let previous = ACTIVE_WORKERS.fetch_sub(count, Ordering::SeqCst);
        if comet_obs::enabled() {
            comet_obs::gauge_set("par.active_workers", previous.saturating_sub(count) as f64);
        }
    }
}

/// Map `f` over `items` in parallel, returning outputs **in input order**.
///
/// The calling thread participates as a worker, so `par_map` at one thread
/// (or with an exhausted slot budget, or on short inputs) is exactly a
/// sequential `map` on the current thread — same outputs, same order.
/// Work is pulled item-at-a-time from a shared counter, so uneven item
/// costs balance across workers. A panic in `f` propagates to the caller.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map_with(items, || (), move |(), t| f(t))
}

/// [`par_map`] with per-worker state: each worker that processes at least
/// one item builds private state with `init` (lazily, on its first item)
/// and hands `f` a mutable reference to it alongside every item it drains.
///
/// The hook for scratch that should persist across the items one worker
/// handles — batched counters, reusable buffers — without a lock per item.
/// `init` runs at most once per worker (≤ thread count, exactly once when
/// sequential). Output order and the sequential-at-one-thread degradation
/// are [`par_map`]'s; for determinism, results must not depend on how items
/// partition across workers, so treat the state as a cache or accumulator,
/// never as an input that changes `f`'s output.
pub fn par_map_with<T, S, U, I, F>(items: Vec<T>, init: I, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, T) -> U + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n.max(1));
    if n <= 1 || threads <= 1 {
        let mut state: Option<S> = None;
        return items.into_iter().map(|t| f(state.get_or_insert_with(&init), t)).collect();
    }
    let extra = reserve_workers(threads - 1, max_threads());
    if comet_obs::enabled() {
        // Worker-slot utilization: how often fan-outs run, how many extra
        // workers they win from the slot budget, and the concurrency
        // high-water mark. `sequential_fallbacks` counts fan-outs that
        // wanted workers but found the budget exhausted (nested fan-out).
        comet_obs::counter_add("par.fanouts", 1);
        if extra == 0 {
            comet_obs::counter_add("par.sequential_fallbacks", 1);
        } else {
            comet_obs::counter_add("par.workers_spawned", extra as u64);
            let active = ACTIVE_WORKERS.load(Ordering::SeqCst) as f64;
            comet_obs::gauge_set("par.active_workers", active);
            comet_obs::gauge_max("par.peak_workers", active);
        }
    }
    if extra == 0 {
        let mut state: Option<S> = None;
        return items.into_iter().map(|t| f(state.get_or_insert_with(&init), t)).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let init = &init;
    let slots = &slots;
    let results = &results;
    let next = &next;
    let inherited = max_threads();

    let drain = move || {
        let mut state: Option<S> = None;
        loop {
            let i = next.fetch_add(1, Ordering::SeqCst);
            if i >= n {
                break;
            }
            #[allow(clippy::expect_used)]
            let item = slots[i]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                // comet-lint: allow(D4) — fetch_add hands each index to exactly one worker, so the slot is always occupied
                .expect("each slot taken once");
            let out = f(state.get_or_insert_with(init), item);
            *results[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
        }
    };

    // Release the reserved slots even if a worker panic unwinds the scope.
    struct SlotGuard(usize);
    impl Drop for SlotGuard {
        fn drop(&mut self) {
            release_workers(self.0);
        }
    }
    let _slots_guard = SlotGuard(extra);

    std::thread::scope(|scope| {
        for _ in 0..extra {
            scope.spawn(move || {
                // Workers inherit the caller's effective thread count so a
                // scoped `with_threads` governs nested fan-outs too.
                with_threads(inherited, drain);
            });
        }
        drain();
    });

    results
        .iter()
        .map(|slot| {
            #[allow(clippy::expect_used)]
            let out = slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                // comet-lint: allow(D4) — the scope above joins every worker, so each result slot is filled before we drain
                .expect("all items processed");
            out
        })
        .collect()
}

/// Workers currently spawned by in-flight fan-outs across the process.
/// Zero whenever no [`par_map`] is running; exposed so tests can prove
/// panics never leak worker-slot budget.
pub fn active_workers() -> usize {
    ACTIVE_WORKERS.load(Ordering::SeqCst)
}

/// A long-running task's claim on worker slots from the process-global
/// fan-out budget, released on drop (RAII).
///
/// [`par_map`] bounds the *total* live workers across nested fan-outs, but
/// it only knows about threads it spawned itself. A host that runs its own
/// pool on top — the `comet-serve` daemon multiplexing concurrent cleaning
/// sessions over dedicated worker threads — uses [`occupy_slots`] to make
/// those threads count against the same budget: a session running on a
/// daemon worker then sees proportionally fewer free fan-out slots, so
/// N concurrent sessions share the machine instead of each fanning out to
/// the full thread count. Occupancy never changes results, only how much
/// parallelism each fan-out wins (the determinism contract: traces are
/// bit-identical at any thread count).
#[derive(Debug)]
pub struct WorkerSlots {
    granted: usize,
}

impl WorkerSlots {
    /// How many slots were actually reserved (0 when the budget was
    /// already exhausted — the caller still runs, just sequentially).
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for WorkerSlots {
    fn drop(&mut self) {
        release_workers(self.granted);
    }
}

/// Reserve up to `wanted` worker slots from the global budget for a
/// long-running task (best effort — the returned guard reports how many
/// were granted). Slots are returned to the budget when the guard drops.
pub fn occupy_slots(wanted: usize) -> WorkerSlots {
    let granted = reserve_workers(wanted, max_threads());
    if granted > 0 && comet_obs::enabled() {
        comet_obs::gauge_set("par.active_workers", ACTIVE_WORKERS.load(Ordering::SeqCst) as f64);
    }
    WorkerSlots { granted }
}

/// Render a `catch_unwind` payload as a one-line reason string.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`par_map`], but a panic in `f` becomes `Err(reason)` for that item
/// instead of unwinding through the pool.
///
/// The panic is caught *inside* the worker closure, so it never crosses a
/// slot mutex (no poisoning) and the fan-out's worker-slot budget is
/// released exactly as on the success path. Output order and the
/// sequential-at-one-thread degradation are inherited from [`par_map`]:
/// the Ok/Err partition is a pure function of the inputs, not of the
/// thread count or scheduling.
pub fn par_map_catch<T, U, F>(items: Vec<T>, f: F) -> Vec<Result<U, String>>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    par_map(items, move |t| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(t))).map_err(panic_message)
    })
}

/// [`par_map`] over `0..len`, for callers that index shared state instead
/// of moving items.
pub fn par_map_indexed<U, F>(len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map((0..len).collect(), f)
}

/// Fold [`par_map`] results in input order (deterministic reduction).
pub fn par_map_reduce<T, U, A, F, G>(items: Vec<T>, init: A, f: F, fold: G) -> A
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
    G: FnMut(A, U) -> A,
{
    par_map(items, f).into_iter().fold(init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn preserves_input_order() {
        let out = with_threads(4, || par_map((0..100).collect::<Vec<i64>>(), |x| x * x));
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<i64>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<usize> = (0..57).collect();
        let seq = with_threads(1, || par_map(items.clone(), |x| x.wrapping_mul(0x9E3779B9)));
        let par = with_threads(8, || par_map(items, |x| x.wrapping_mul(0x9E3779B9)));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map(Vec::<u8>::new(), |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        let main_thread = std::thread::current().id();
        let saw_other = AtomicBool::new(false);
        with_threads(4, || {
            par_map((0..64).collect::<Vec<usize>>(), |x| {
                if std::thread::current().id() != main_thread {
                    saw_other.store(true, Ordering::SeqCst);
                }
                // Enough work that the spawned workers win some items.
                std::thread::sleep(std::time::Duration::from_micros(200));
                x
            })
        });
        assert!(saw_other.load(Ordering::SeqCst), "expected some items off the main thread");
    }

    #[test]
    fn one_thread_stays_on_caller() {
        let main_thread = std::thread::current().id();
        with_threads(1, || {
            par_map((0..16).collect::<Vec<usize>>(), |x| {
                assert_eq!(std::thread::current().id(), main_thread);
                x
            })
        });
    }

    #[test]
    fn nested_fanout_respects_budget() {
        // Outer uses the budget; inner calls degrade gracefully and still
        // produce correct, ordered output.
        let out = with_threads(2, || {
            par_map((0..8).collect::<Vec<usize>>(), |outer| {
                let inner = par_map((0..8).collect::<Vec<usize>>(), move |i| outer * 8 + i);
                inner.iter().sum::<usize>()
            })
        });
        let expected: Vec<usize> = (0..8).map(|o: usize| (0..8).map(|i| o * 8 + i).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn with_threads_restores_previous_value() {
        // All assertions nest inside a local override so concurrent tests
        // touching the global override cannot interfere.
        with_threads(3, || {
            assert_eq!(max_threads(), 3);
            with_threads(5, || assert_eq!(max_threads(), 5));
            assert_eq!(max_threads(), 3);
        });
    }

    #[test]
    fn local_override_wins_over_global() {
        // The global override is process-wide shared state; only observe it
        // from under a local override to stay race-free with other tests.
        with_threads(6, || {
            set_global_threads(Some(2));
            assert_eq!(max_threads(), 6);
            set_global_threads(None);
        });
    }

    #[test]
    fn with_state_initializes_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let out = with_threads(4, || {
            par_map_with(
                (0..64).collect::<Vec<usize>>(),
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    0usize // per-worker item tally
                },
                |tally, x| {
                    *tally += 1;
                    x * 3
                },
            )
        });
        assert_eq!(out, (0..64).map(|x| x * 3).collect::<Vec<usize>>());
        let calls = inits.load(Ordering::SeqCst);
        assert!((1..=4).contains(&calls), "init ran {calls} times for 4 threads");
    }

    #[test]
    fn with_state_sequential_shares_one_state() {
        // At one thread the single state threads through every item in
        // order, so the tally equals the item index.
        let out = with_threads(1, || {
            par_map_with(
                (0..10).collect::<Vec<usize>>(),
                || 0usize,
                |seen, x| {
                    let pos = *seen;
                    *seen += 1;
                    (x, pos)
                },
            )
        });
        assert_eq!(out, (0..10).map(|x| (x, x)).collect::<Vec<(usize, usize)>>());
    }

    #[test]
    fn with_state_skips_init_on_empty_input() {
        let inits = AtomicUsize::new(0);
        let out = par_map_with(Vec::<u8>::new(), || inits.fetch_add(1, Ordering::SeqCst), |_, x| x);
        assert_eq!(out, Vec::<u8>::new());
        assert_eq!(inits.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn indexed_and_reduce_helpers() {
        let doubled = with_threads(4, || par_map_indexed(10, |i| i * 2));
        assert_eq!(doubled, (0..10).map(|i| i * 2).collect::<Vec<usize>>());
        let total =
            par_map_reduce((1..=10).collect::<Vec<u64>>(), 0u64, |x| x * x, |acc, v| acc + v);
        assert_eq!(total, 385);
    }

    /// The obs enable flag is process-global; the two metrics tests take
    /// this lock so one cannot observe the other's enabled window.
    static OBS_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn utilization_metrics_recorded_when_enabled() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        // Other tests in this binary may fan out concurrently and also
        // record, so assert growth rather than exact values.
        comet_obs::reset();
        comet_obs::set_enabled(true);
        with_threads(4, || {
            par_map((0..64).collect::<Vec<usize>>(), |x| {
                std::thread::sleep(std::time::Duration::from_micros(100));
                x
            })
        });
        comet_obs::set_enabled(false);
        let snap = comet_obs::snapshot();
        assert!(snap.counter("par.fanouts") >= 1);
        assert!(snap.counter("par.workers_spawned") >= 1);
        assert!(snap.gauge("par.peak_workers").unwrap_or(0.0) >= 1.0);
    }

    #[test]
    fn metrics_disabled_records_nothing_from_fanout() {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        // The default state: fan-outs must not touch the registry.
        let before = comet_obs::snapshot().counter("par.fanouts");
        with_threads(4, || par_map((0..32).collect::<Vec<usize>>(), |x| x * 2));
        let after = comet_obs::snapshot().counter("par.fanouts");
        assert_eq!(before, after);
    }

    #[test]
    fn catch_turns_panics_into_item_errors() {
        let out = with_threads(4, || {
            par_map_catch((0..32).collect::<Vec<usize>>(), |x| {
                if x % 5 == 0 {
                    panic!("multiple of five: {x}");
                }
                x * 10
            })
        });
        assert_eq!(out.len(), 32);
        for (i, r) in out.iter().enumerate() {
            if i % 5 == 0 {
                let reason = r.as_ref().unwrap_err();
                assert!(reason.contains("multiple of five"), "reason was {reason:?}");
            } else {
                assert_eq!(*r, Ok(i * 10));
            }
        }
    }

    #[test]
    fn catch_handles_non_string_payloads() {
        let out = par_map_catch(vec![0u8], |_| -> u8 { std::panic::panic_any(42i32) });
        assert_eq!(out, vec![Err("non-string panic payload".to_string())]);
    }

    #[test]
    fn catch_does_not_leak_worker_slots() {
        // Each fan-out reserves up to 3 extra slots at 4 threads; if a
        // caught panic leaked its reservation, 64 panicking fan-outs would
        // pin ACTIVE_WORKERS near 192. Concurrent tests in this binary may
        // hold a handful of slots of their own, hence the loose bound.
        for _ in 0..64 {
            with_threads(4, || {
                par_map_catch((0..8).collect::<Vec<usize>>(), |x| {
                    if x % 2 == 0 {
                        panic!("boom");
                    }
                    x
                })
            });
        }
        assert!(active_workers() <= 16, "leaked worker slots: {}", active_workers());
        // And the budget is still usable: a fresh fan-out parallelizes.
        let out = with_threads(4, || par_map((0..8).collect::<Vec<usize>>(), |x| x + 1));
        assert_eq!(out, (1..9).collect::<Vec<usize>>());
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(24))]
        #[test]
        fn catch_partition_is_thread_count_invariant(
            values in proptest::prop::collection::vec(0i64..1_000, 1..40),
            modulus in 2i64..7,
        ) {
            let run = |threads: usize| {
                with_threads(threads, || {
                    par_map_catch(values.clone(), |v| {
                        if v % modulus == 0 {
                            panic!("injected: {v} divisible by {modulus}");
                        }
                        v.wrapping_mul(3)
                    })
                })
            };
            let t1 = run(1);
            let t2 = run(2);
            let t8 = run(8);
            proptest::prop_assert_eq!(&t1, &t2);
            proptest::prop_assert_eq!(&t1, &t8);
            for (i, r) in t1.iter().enumerate() {
                match r {
                    Ok(out) => proptest::prop_assert_eq!(*out, values[i].wrapping_mul(3)),
                    Err(reason) => proptest::prop_assert!(reason.contains("injected")),
                }
            }
            proptest::prop_assert!(active_workers() <= 16, "leaked slots: {}", active_workers());
        }
    }

    #[test]
    fn occupied_slots_obey_the_shared_budget_and_release_on_drop() {
        // ACTIVE_WORKERS is process-global and other tests' fan-outs run
        // concurrently, so assert invariants that hold regardless of
        // outside activity rather than exact global counts.
        with_threads(4, || {
            let lease = occupy_slots(2);
            let granted = lease.granted();
            assert!(granted <= 2);
            // Whatever is happening elsewhere, our two claims plus the
            // caller itself can never exceed this thread's cap of 4.
            let inner = occupy_slots(4);
            assert!(
                granted + inner.granted() <= 3,
                "over-granted: {} + {}",
                granted,
                inner.granted()
            );
            drop(inner);
            drop(lease);
            // Fan-outs still work (and still return input order) afterwards.
            let out = par_map((0..8).collect::<Vec<usize>>(), |x| x * 2);
            assert_eq!(out, (0..8).map(|x| x * 2).collect::<Vec<usize>>());
        });
    }

    #[test]
    fn occupying_an_exhausted_budget_grants_zero() {
        with_threads(1, || {
            // Cap 1 = the caller itself; nothing is ever free to occupy
            // (free = cap - current - 1 saturates at zero no matter what
            // other tests' workers are doing).
            let lease = occupy_slots(3);
            assert_eq!(lease.granted(), 0);
            assert_eq!(occupy_slots(0).granted(), 0);
        });
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map((0..32).collect::<Vec<usize>>(), |x| {
                    if x == 17 {
                        panic!("boom");
                    }
                    x
                })
            })
        });
        assert!(result.is_err());
        // The slot guard must have released the budget despite the panic:
        // a fresh fan-out still parallelizes (returns correct results).
        let out = with_threads(4, || par_map((0..8).collect::<Vec<usize>>(), |x| x + 1));
        assert_eq!(out, (1..9).collect::<Vec<usize>>());
    }
}
