//! The seven datasets of paper Table 1, as a registry of schema specs.

use crate::generator::{CleanMlPair, GeneratorConfig};
use comet_frame::DataFrame;
use comet_jenga::ErrorType;
use rand::Rng;
use std::fmt;

/// One of the paper's evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dataset {
    /// Contraceptive Method Choice (UCI): 3-class, mostly categorical.
    Cmc,
    /// Telco customer churn (Kaggle/IBM): binary, 16 categorical features.
    Churn,
    /// EEG eye state (UCI): binary, purely numerical.
    Eeg,
    /// South German Credit (UCI): binary, mostly categorical.
    SCredit,
    /// CleanML Airbnb: binary, 37 numeric features, scaling errors.
    Airbnb,
    /// CleanML Credit: binary, 10 numeric features, scaling + missing values.
    Credit,
    /// CleanML Titanic: binary, missing values.
    Titanic,
}

/// Static description of a dataset (paper Table 1 row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Display name.
    pub name: &'static str,
    /// Row count in the original dataset.
    pub rows: usize,
    /// Number of categorical features.
    pub n_categorical: usize,
    /// Number of numeric features.
    pub n_numeric: usize,
    /// Number of label classes.
    pub n_classes: usize,
    /// For CleanML datasets: the error types present in the dirty version.
    pub cleanml_errors: &'static [ErrorType],
}

impl Dataset {
    /// The four datasets used with pre-pollution (§4.3).
    pub const PREPOLLUTED: [Dataset; 4] =
        [Dataset::Cmc, Dataset::Churn, Dataset::Eeg, Dataset::SCredit];

    /// The three CleanML datasets with paired dirty/clean versions (§4.3).
    pub const CLEANML: [Dataset; 3] = [Dataset::Airbnb, Dataset::Credit, Dataset::Titanic];

    /// All seven datasets.
    pub const ALL: [Dataset; 7] = [
        Dataset::Cmc,
        Dataset::Churn,
        Dataset::Eeg,
        Dataset::SCredit,
        Dataset::Airbnb,
        Dataset::Credit,
        Dataset::Titanic,
    ];

    /// The Table 1 schema for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Cmc => DatasetSpec {
                name: "CMC",
                rows: 1_473,
                n_categorical: 7,
                n_numeric: 2,
                n_classes: 3,
                cleanml_errors: &[],
            },
            Dataset::Churn => DatasetSpec {
                name: "Churn",
                rows: 7_032,
                n_categorical: 16,
                n_numeric: 3,
                n_classes: 2,
                cleanml_errors: &[],
            },
            Dataset::Eeg => DatasetSpec {
                name: "EEG",
                rows: 14_980,
                n_categorical: 0,
                n_numeric: 14,
                n_classes: 2,
                cleanml_errors: &[],
            },
            Dataset::SCredit => DatasetSpec {
                name: "S-Credit",
                rows: 1_000,
                n_categorical: 17,
                n_numeric: 3,
                n_classes: 2,
                cleanml_errors: &[],
            },
            Dataset::Airbnb => DatasetSpec {
                name: "Airbnb",
                rows: 26_288,
                n_categorical: 3,
                n_numeric: 37,
                n_classes: 2,
                cleanml_errors: &[ErrorType::Scaling],
            },
            Dataset::Credit => DatasetSpec {
                name: "Credit",
                rows: 11_985,
                n_categorical: 0,
                n_numeric: 10,
                n_classes: 2,
                cleanml_errors: &[ErrorType::MissingValues, ErrorType::Scaling],
            },
            Dataset::Titanic => DatasetSpec {
                name: "Titanic",
                rows: 891,
                n_categorical: 6,
                n_numeric: 2,
                n_classes: 2,
                cleanml_errors: &[ErrorType::MissingValues],
            },
        }
    }

    /// Parse a (case-insensitive) dataset name.
    pub fn parse(s: &str) -> Option<Dataset> {
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "cmc" => Some(Dataset::Cmc),
            "churn" | "telco" => Some(Dataset::Churn),
            "eeg" => Some(Dataset::Eeg),
            "scredit" | "southgermancredit" => Some(Dataset::SCredit),
            "airbnb" => Some(Dataset::Airbnb),
            "credit" => Some(Dataset::Credit),
            "titanic" => Some(Dataset::Titanic),
            _ => None,
        }
    }

    /// Generator configuration (schema + planted-signal seeds) for this
    /// dataset. `rows` overrides the Table 1 row count (the benchmark's
    /// `--quick` mode subsamples).
    pub fn config(self, rows: Option<usize>) -> GeneratorConfig {
        let spec = self.spec();
        GeneratorConfig::for_spec(&spec, rows.unwrap_or(spec.rows), self as usize as u64)
    }

    /// Generate the clean synthetic analog.
    pub fn generate<R: Rng + ?Sized>(self, rows: Option<usize>, rng: &mut R) -> DataFrame {
        self.config(rows).generate(rng)
    }

    /// Generate a paired (dirty, clean) CleanML-style version. Panics for
    /// non-CleanML datasets (they are used with explicit pre-pollution).
    pub fn generate_cleanml_pair<R: Rng + ?Sized>(
        self,
        rows: Option<usize>,
        rng: &mut R,
    ) -> CleanMlPair {
        let spec = self.spec();
        assert!(
            !spec.cleanml_errors.is_empty(),
            "{} is not a CleanML dataset; use explicit pre-pollution",
            spec.name
        );
        self.config(rows).generate_cleanml_pair(spec.cleanml_errors, rng)
    }

    /// Generate a paired (dirty, clean) version carrying the given REIN
    /// error families (detection-seeded experiments; works for every
    /// dataset, no CleanML spec required). Numeric features are spread
    /// across heterogeneous scales (see
    /// [`GeneratorConfig::with_scale_spread`]) so cross-domain errors like
    /// swapped fields are realistically detectable.
    pub fn generate_rein_pair<R: Rng + ?Sized>(
        self,
        rows: Option<usize>,
        errors: &[ErrorType],
        rng: &mut R,
    ) -> CleanMlPair {
        self.config(rows).with_scale_spread().generate_rein_pair(errors, rng)
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_frame::ColumnKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn specs_match_table_1() {
        let cmc = Dataset::Cmc.spec();
        assert_eq!((cmc.rows, cmc.n_categorical, cmc.n_numeric, cmc.n_classes), (1473, 7, 2, 3));
        let eeg = Dataset::Eeg.spec();
        assert_eq!((eeg.rows, eeg.n_categorical, eeg.n_numeric, eeg.n_classes), (14980, 0, 14, 2));
        let airbnb = Dataset::Airbnb.spec();
        assert_eq!(airbnb.n_numeric, 37);
        assert_eq!(airbnb.cleanml_errors, &[ErrorType::Scaling]);
    }

    #[test]
    fn parse_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::parse(d.spec().name), Some(d));
        }
        assert_eq!(Dataset::parse("S-Credit"), Some(Dataset::SCredit));
        assert_eq!(Dataset::parse("unknown"), None);
    }

    #[test]
    fn generated_schema_matches_spec() {
        let mut rng = StdRng::seed_from_u64(0);
        for d in Dataset::ALL {
            let df = d.generate(Some(120), &mut rng);
            let spec = d.spec();
            assert_eq!(df.nrows(), 120, "{d}");
            let features = df.feature_indices();
            assert_eq!(features.len(), spec.n_categorical + spec.n_numeric, "{d}");
            let n_cat = features
                .iter()
                .filter(|&&c| df.column(c).unwrap().kind() == ColumnKind::Categorical)
                .count();
            assert_eq!(n_cat, spec.n_categorical, "{d}");
            assert_eq!(df.n_classes().unwrap(), spec.n_classes, "{d}");
            assert_eq!(df.missing_cells(), 0, "{d} clean data must have no missing cells");
        }
    }

    #[test]
    fn full_size_defaults_to_table1_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let df = Dataset::Titanic.generate(None, &mut rng);
        assert_eq!(df.nrows(), 891);
    }

    #[test]
    #[should_panic(expected = "not a CleanML dataset")]
    fn cleanml_pair_rejected_for_prepolluted() {
        let mut rng = StdRng::seed_from_u64(2);
        Dataset::Cmc.generate_cleanml_pair(Some(50), &mut rng);
    }

    #[test]
    fn display_name() {
        assert_eq!(Dataset::SCredit.to_string(), "S-Credit");
    }
}
