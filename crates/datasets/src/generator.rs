//! Synthetic dataset synthesis with a planted, heterogeneous signal.

use comet_frame::{Cell, DataFrame, DataFrameBuilder, FieldMeta, Schema};
use comet_jenga::{inject, sample_normal, sample_rows, ErrorType, Provenance};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::DatasetSpec;

/// Per-feature spec of a numeric, class-conditional Gaussian feature.
#[derive(Debug, Clone, PartialEq)]
struct NumericSpec {
    /// Class-separation strength in units of the feature's std (0 = noise).
    strength: f64,
    /// Base offset.
    base: f64,
    /// Standard deviation.
    std: f64,
    /// Per-class direction multipliers (length = n_classes).
    directions: Vec<f64>,
}

/// Per-feature spec of a categorical, class-conditional feature.
#[derive(Debug, Clone, PartialEq)]
struct CategoricalSpec {
    /// Dictionary size.
    cardinality: usize,
    /// How strongly the class shifts the category distribution (0 = noise).
    strength: f64,
    /// Per-class preferred category.
    peaks: Vec<usize>,
}

/// Deterministic generator for one dataset's synthetic analog.
///
/// The feature specs are derived from the dataset's identity seed, so
/// "Churn" is the *same* learning problem in every run; only the sampled
/// rows vary with the caller's RNG.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    name: String,
    rows: usize,
    n_classes: usize,
    class_priors: Vec<f64>,
    /// Probability a row's label is flipped to a random other class after
    /// the features were generated — irreducible noise that keeps clean
    /// accuracy below 1.0 (real datasets are never perfectly separable).
    label_flip: f64,
    numeric: Vec<NumericSpec>,
    categorical: Vec<CategoricalSpec>,
    /// Rows per column segment in the generated frames (`0` = builder
    /// default). Generation streams row-by-row and seals segments
    /// incrementally, so with a configured spill pool a 10⁶–10⁷-row frame
    /// never holds more than the memory budget resident.
    segment_rows: usize,
}

impl GeneratorConfig {
    /// Derive the generator for a spec. `identity` seeds the feature-spec
    /// RNG (one fixed value per dataset).
    pub fn for_spec(spec: &DatasetSpec, rows: usize, identity: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(0xC0E7 ^ identity.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let k = spec.n_classes;

        // Mild class imbalance, as in the real datasets (Churn ~27% churners).
        let mut priors: Vec<f64> = (0..k).map(|c| 1.0 + 0.6 * (k - c) as f64).collect();
        let total: f64 = priors.iter().sum();
        priors.iter_mut().for_each(|p| *p /= total);

        // Geometric-decay signal profile: every dataset gets one or two
        // strong features, a decaying tail, and ~30% pure-noise features.
        // This guarantees heterogeneous feature importance (cleaning *order*
        // matters) while keeping accuracy below 1.0.
        let n_feats = spec.n_numeric + spec.n_categorical;
        let mut strengths: Vec<f64> = (0..n_feats).map(|i| 1.7 * 0.72f64.powi(i as i32)).collect();
        let informative = ((n_feats as f64) * 0.7).ceil() as usize;
        for s in strengths.iter_mut().skip(informative.max(1)) {
            *s = 0.0;
        }
        // Shuffle so the strong features land on arbitrary columns/kinds.
        for i in (1..strengths.len()).rev() {
            let j = rng.gen_range(0..=i);
            strengths.swap(i, j);
        }
        let mut strengths = strengths.into_iter();
        let mut strength =
            move |_rng: &mut StdRng| -> f64 { strengths.next().expect("one strength per feature") };

        let numeric = (0..spec.n_numeric)
            .map(|_| {
                let s = strength(&mut rng);
                // Spread classes along the feature axis with one random
                // orientation per feature (the flip must be shared by all
                // classes or the separation collapses).
                let flip = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                let directions: Vec<f64> =
                    (0..k).map(|c| flip * (c as f64 - (k as f64 - 1.0) / 2.0)).collect();
                NumericSpec {
                    strength: s,
                    base: rng.gen_range(-2.0..2.0),
                    std: rng.gen_range(0.8..3.0),
                    directions,
                }
            })
            .collect();

        let categorical = (0..spec.n_categorical)
            .map(|f| {
                let cardinality = rng.gen_range(2..=5usize);
                CategoricalSpec {
                    cardinality,
                    strength: strength(&mut rng),
                    peaks: (0..k).map(|c| (c + f) % cardinality).collect(),
                }
            })
            .collect();

        GeneratorConfig {
            name: spec.name.to_string(),
            rows,
            n_classes: k,
            class_priors: priors,
            label_flip: 0.06,
            numeric,
            categorical,
            segment_rows: comet_frame::DEFAULT_SEGMENT_ROWS,
        }
    }

    /// Stream generated frames into segments of `seg_rows` rows (`0` =
    /// the builder default). The sampled values are identical for every
    /// size — segmentation never enters the rng stream.
    pub fn with_segment_rows(mut self, seg_rows: usize) -> Self {
        self.segment_rows = seg_rows;
        self
    }

    /// Spread the numeric features across heterogeneous scales, multiplying
    /// feature `i`'s base and std by `SPREAD[i % 3]`. Real tabular data
    /// mixes single-digit fields with fields in the hundreds or thousands
    /// (ages next to incomes), and the REIN detection experiments depend on
    /// that: a swapped field is only *detectable* — and only damaging —
    /// when the two fields live in different domains. The spread factors
    /// are deliberately not powers of ten, so a swap is never mistaken for
    /// a unit error by the decade-ratio detector. Oracle-mode datasets keep
    /// the homogeneous scales, so every committed figure stays reproducible.
    pub fn with_scale_spread(mut self) -> Self {
        const SPREAD: [f64; 3] = [1.0, 30.0, 900.0];
        for (i, spec) in self.numeric.iter_mut().enumerate() {
            let s = SPREAD[i % SPREAD.len()];
            spec.base *= s;
            spec.std *= s;
        }
        self
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Row count this generator produces.
    pub fn rows(&self) -> usize {
        self.rows
    }

    fn schema(&self) -> (Schema, Vec<Vec<String>>) {
        let mut fields = Vec::new();
        let mut dicts = Vec::new();
        for i in 0..self.numeric.len() {
            fields.push(FieldMeta::numeric(format!("num_{i}")));
            dicts.push(Vec::new());
        }
        for (i, c) in self.categorical.iter().enumerate() {
            fields.push(FieldMeta::categorical(format!("cat_{i}")));
            dicts.push((0..c.cardinality).map(|v| format!("c{i}_v{v}")).collect());
        }
        fields.push(FieldMeta::label("label"));
        dicts.push((0..self.n_classes).map(|c| format!("class_{c}")).collect());
        (Schema::new(fields).expect("generated schema is valid"), dicts)
    }

    /// Sample the clean dataset, streaming rows into sealed segments —
    /// peak residency during generation is one open segment per column
    /// plus whatever the spill pool keeps warm.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> DataFrame {
        let (schema, dicts) = self.schema();
        let mut builder = DataFrameBuilder::with_segment_rows(schema, dicts, self.segment_rows)
            .expect("valid builder");
        let mut row: Vec<Cell> =
            Vec::with_capacity(self.numeric.len() + self.categorical.len() + 1);
        for _ in 0..self.rows {
            // Draw the class.
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut class = self.n_classes - 1;
            for (c, &p) in self.class_priors.iter().enumerate() {
                acc += p;
                if u < acc {
                    class = c;
                    break;
                }
            }

            row.clear();
            for spec in &self.numeric {
                let mean = spec.base + spec.strength * spec.directions[class] * spec.std;
                let v = mean + spec.std * sample_normal(rng);
                row.push(Cell::Num(v));
            }
            for spec in &self.categorical {
                // Peak category with boosted probability, rest uniform.
                let k = spec.cardinality as f64;
                let p_peak = (1.0 / k + spec.strength * 0.35 * (1.0 - 1.0 / k)).min(0.9);
                let code = if rng.gen::<f64>() < p_peak {
                    spec.peaks[class] as u32
                } else {
                    rng.gen_range(0..spec.cardinality) as u32
                };
                row.push(Cell::Cat(code));
            }
            let observed = if self.n_classes > 1 && rng.gen::<f64>() < self.label_flip {
                let mut other = rng.gen_range(0..self.n_classes - 1);
                if other >= class {
                    other += 1;
                }
                other
            } else {
                class
            };
            row.push(Cell::Cat(observed as u32));
            builder.push_row(&row).expect("generated row matches schema");
        }
        builder.finish().expect("non-empty generated frame")
    }

    /// Generate a paired dirty/clean CleanML-style dataset: the dirty copy
    /// carries the listed error types at exponentially distributed
    /// per-feature levels, with full provenance.
    pub fn generate_cleanml_pair<R: Rng + ?Sized>(
        &self,
        errors: &[ErrorType],
        rng: &mut R,
    ) -> CleanMlPair {
        assert!(!errors.is_empty(), "need at least one error type");
        let clean = self.generate(rng);
        let mut dirty = clean.clone();
        let mut provenance = Provenance::for_frame(&clean);
        let n = clean.nrows();
        for &err in errors {
            for col in clean.feature_indices() {
                let kind = clean.column(col).expect("valid column").kind();
                if !err.applicable(kind) {
                    continue;
                }
                // Half the applicable features stay clean, mirroring the
                // CleanML datasets where dirt is concentrated.
                if rng.gen::<f64>() < 0.5 {
                    continue;
                }
                let u: f64 = 1.0 - rng.gen::<f64>();
                let level = (-0.12 * u.ln()).min(0.35);
                let cells = (level * n as f64).round() as usize;
                if cells == 0 {
                    continue;
                }
                let rows = sample_rows(n, cells, rng);
                let rec = inject(&mut dirty, col, &rows, err, rng)
                    .expect("applicable injection succeeds");
                for (r, _) in rec.changed {
                    provenance.record(col, r, err);
                }
            }
        }
        CleanMlPair { dirty, clean, provenance }
    }

    /// Generate a paired dirty/clean dataset carrying REIN-taxonomy error
    /// families at realistic shapes, with full provenance:
    ///
    /// * [`ErrorType::NearDuplicateRows`] is injected *row-wise* — one
    ///   sampled row set duplicated across every feature column, so each
    ///   polluted row really is a near-copy of its donor row;
    /// * [`ErrorType::LabelNoise`] flips labels in the label column (the
    ///   only family allowed there);
    /// * every other family (outliers, swapped fields, and the paper's
    ///   four) is injected per-column like
    ///   [`GeneratorConfig::generate_cleanml_pair`].
    ///
    /// The pair never materializes two full copies: `dirty` starts as an
    /// `Arc`-shared clone of `clean` (O(columns), no payloads copied) and
    /// injection copy-on-writes only the segments it touches, so at
    /// 10⁶–10⁷ rows the overhead over one copy is the touched segments
    /// plus provenance, not a second frame.
    pub fn generate_rein_pair<R: Rng + ?Sized>(
        &self,
        errors: &[ErrorType],
        rng: &mut R,
    ) -> CleanMlPair {
        assert!(!errors.is_empty(), "need at least one error type");
        let clean = self.generate(rng);
        let mut dirty = clean.clone();
        let mut provenance = Provenance::for_frame(&clean);
        let n = clean.nrows();
        for &err in errors {
            match err {
                ErrorType::NearDuplicateRows => {
                    // 5–15% of rows become near-duplicates, whole-row.
                    let level: f64 = rng.gen_range(0.05..0.15);
                    let cells = ((level * n as f64).round() as usize).max(1);
                    let rows = sample_rows(n, cells, rng);
                    for col in clean.feature_indices() {
                        let rec = inject(&mut dirty, col, &rows, err, rng)
                            // comet-lint: allow(D4) — NearDuplicateRows is applicable to every feature kind by construction
                            .expect("near-duplicates apply to any feature kind");
                        for (r, _) in rec.changed {
                            provenance.record(col, r, err);
                        }
                    }
                }
                ErrorType::LabelNoise => {
                    let Ok(label) = clean.label_index() else { continue };
                    let level: f64 = rng.gen_range(0.05..0.15);
                    let cells = ((level * n as f64).round() as usize).max(1);
                    let rows = sample_rows(n, cells, rng);
                    let rec = inject(&mut dirty, label, &rows, err, rng)
                        // comet-lint: allow(D4) — LabelNoise targets the label column, which label_index just resolved
                        .expect("label noise applies to the label column");
                    for (r, _) in rec.changed {
                        provenance.record(label, r, err);
                    }
                }
                _ => {
                    for col in clean.feature_indices() {
                        // comet-lint: allow(D4) — `col` comes from feature_indices on the same frame
                        let kind = clean.column(col).expect("valid column").kind();
                        if !err.applicable(kind) {
                            continue;
                        }
                        if rng.gen::<f64>() < 0.5 {
                            continue;
                        }
                        let u: f64 = 1.0 - rng.gen::<f64>();
                        let level = (-0.12 * u.ln()).min(0.35);
                        let cells = (level * n as f64).round() as usize;
                        if cells == 0 {
                            continue;
                        }
                        let rows = sample_rows(n, cells, rng);
                        let rec = inject(&mut dirty, col, &rows, err, rng)
                            // comet-lint: allow(D4) — applicability was checked right above; inject cannot refuse
                            .expect("applicable injection succeeds");
                        for (r, _) in rec.changed {
                            provenance.record(col, r, err);
                        }
                    }
                }
            }
        }
        CleanMlPair { dirty, clean, provenance }
    }
}

/// A CleanML-style paired dataset.
#[derive(Debug, Clone)]
pub struct CleanMlPair {
    /// The dirty version handed to the cleaning strategies.
    pub dirty: DataFrame,
    /// The clean ground truth.
    pub clean: DataFrame,
    /// Which cells the dirt lives in, per error type.
    pub provenance: Provenance,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dataset;
    use comet_frame::{train_test_split, SplitOptions};
    use comet_jenga::GroundTruth;
    use comet_ml::{metrics, Classifier, Featurizer, KnnClassifier, KnnParams};

    #[test]
    fn rein_pair_plants_all_requested_families_with_provenance() {
        let mut rng = StdRng::seed_from_u64(21);
        let families = [
            ErrorType::Outliers,
            ErrorType::SwappedFields,
            ErrorType::NearDuplicateRows,
            ErrorType::LabelNoise,
        ];
        let pair = Dataset::Eeg.generate_rein_pair(Some(200), &families, &mut rng);
        assert_eq!(pair.dirty.nrows(), pair.clean.nrows());

        // Every family landed somewhere, and every planted cell diverges
        // from ground truth exactly where the provenance says it does.
        let mut seen = std::collections::BTreeSet::new();
        let gt = GroundTruth::new(pair.clean.clone());
        for col in 0..pair.clean.ncols() {
            let dirty_rows = gt.dirty_rows(&pair.dirty, col).unwrap();
            for row in dirty_rows {
                let fam = pair.provenance.get(col, row).unwrap_or_else(|| {
                    panic!("changed cell ({col},{row}) missing from provenance")
                });
                seen.insert(fam);
            }
        }
        for fam in families {
            assert!(seen.contains(&fam), "{fam} was not planted: {seen:?}");
        }

        // Label noise stays on the label column, nothing else touches it.
        let label = pair.clean.label_index().unwrap();
        for row in 0..pair.clean.nrows() {
            if let Some(fam) = pair.provenance.get(label, row) {
                assert_eq!(fam, ErrorType::LabelNoise);
            }
        }
    }

    #[test]
    fn generator_is_identity_stable() {
        let a = Dataset::Churn.config(Some(100));
        let b = Dataset::Churn.config(Some(100));
        assert_eq!(a, b, "same dataset → same planted signal");
        let c = Dataset::Cmc.config(Some(100));
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn clean_data_is_learnable() {
        // The planted signal must be strong enough that a plain KNN clearly
        // beats the majority-class baseline — otherwise pollution studies
        // are meaningless.
        let mut rng = StdRng::seed_from_u64(11);
        let df = Dataset::Eeg.generate(Some(600), &mut rng);
        let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
        let (_, xtr, xte) = Featurizer::fit_transform(&tt.train, &tt.test).unwrap();
        let ytr = tt.train.label_codes().unwrap();
        let yte = tt.test.label_codes().unwrap();
        let mut knn = KnnClassifier::new(KnnParams { k: 5 });
        knn.fit(&xtr, &ytr, 2, &mut rng);
        let acc = metrics::accuracy(&yte, &knn.predict(&xte));
        let majority =
            yte.iter().filter(|&&y| y == 0).count().max(yte.iter().filter(|&&y| y == 1).count())
                as f64
                / yte.len() as f64;
        assert!(acc > majority + 0.1, "accuracy {acc} vs majority {majority}");
    }

    #[test]
    fn pollution_hurts_accuracy() {
        // Heavily polluting every feature must reduce test accuracy — the
        // core premise of the whole paper.
        let mut rng = StdRng::seed_from_u64(12);
        let df = Dataset::Eeg.generate(Some(600), &mut rng);
        let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();

        let eval = |train: &DataFrame, test: &DataFrame, rng: &mut StdRng| {
            let (_, xtr, xte) = Featurizer::fit_transform(train, test).unwrap();
            let ytr = train.label_codes().unwrap();
            let yte = test.label_codes().unwrap();
            let mut knn = KnnClassifier::new(KnnParams { k: 5 });
            knn.fit(&xtr, &ytr, 2, rng);
            metrics::accuracy(&yte, &knn.predict(&xte))
        };
        let clean_acc = eval(&tt.train, &tt.test, &mut rng);

        let mut dirty_train = tt.train.clone();
        let mut dirty_test = tt.test.clone();
        for col in tt.train.feature_indices() {
            let rows_tr = sample_rows(dirty_train.nrows(), dirty_train.nrows() * 5 / 10, &mut rng);
            inject(&mut dirty_train, col, &rows_tr, ErrorType::MissingValues, &mut rng).unwrap();
            let rows_te = sample_rows(dirty_test.nrows(), dirty_test.nrows() * 5 / 10, &mut rng);
            inject(&mut dirty_test, col, &rows_te, ErrorType::MissingValues, &mut rng).unwrap();
        }
        let dirty_acc = eval(&dirty_train, &dirty_test, &mut rng);
        assert!(
            dirty_acc < clean_acc - 0.03,
            "pollution must hurt: clean {clean_acc} vs dirty {dirty_acc}"
        );
    }

    #[test]
    fn cleanml_pair_has_documented_error_types() {
        let mut rng = StdRng::seed_from_u64(13);
        let pair = Dataset::Credit.generate_cleanml_pair(Some(400), &mut rng);
        let gt = GroundTruth::new(pair.clean.clone());
        let dirty_total = gt.total_dirty(&pair.dirty).unwrap();
        assert!(dirty_total > 0, "dirty version must contain errors");
        // Provenance covers the dirt with only the documented types.
        let mut seen = Vec::new();
        for col in pair.clean.feature_indices() {
            for e in pair.provenance.error_types_in(col) {
                if !seen.contains(&e) {
                    seen.push(e);
                }
            }
        }
        assert!(!seen.is_empty());
        for e in &seen {
            assert!(
                Dataset::Credit.spec().cleanml_errors.contains(e),
                "unexpected error type {e:?}"
            );
        }
    }

    #[test]
    fn cleanml_dirty_rows_match_provenance() {
        let mut rng = StdRng::seed_from_u64(14);
        let pair = Dataset::Titanic.generate_cleanml_pair(Some(300), &mut rng);
        let gt = GroundTruth::new(pair.clean.clone());
        for col in pair.clean.feature_indices() {
            let dirty_rows = gt.dirty_rows(&pair.dirty, col).unwrap();
            let prov_rows = pair.provenance.rows_with(col, None);
            assert_eq!(dirty_rows, prov_rows, "column {col}");
        }
    }

    #[test]
    fn class_priors_are_imbalanced_but_all_present() {
        let mut rng = StdRng::seed_from_u64(15);
        let df = Dataset::Cmc.generate(Some(900), &mut rng);
        let codes = df.label_codes().unwrap();
        let mut counts = [0usize; 3];
        for &c in &codes {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 50), "{counts:?}");
        assert!(counts[0] > counts[2], "priors decrease with class index: {counts:?}");
    }
}
