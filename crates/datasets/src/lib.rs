//! # comet-datasets — synthetic analogs of the paper's evaluation datasets
//!
//! The paper evaluates COMET on seven public datasets (Table 1): four
//! pre-polluted ones (CMC, Churn, EEG, South-German-Credit) and three
//! CleanML datasets shipped with paired dirty/clean versions (Airbnb,
//! Credit, Titanic). Those files cannot be redistributed or downloaded
//! here, so this crate generates **synthetic analogs with identical
//! schemas** — same row count, numeric/categorical feature split, and class
//! count — and a *planted*, heterogeneous feature→label signal:
//!
//! * each feature carries a different signal strength, so cleaning order
//!   matters (the property COMET exploits),
//! * numeric features are class-conditional Gaussians; categorical features
//!   are class-conditional multinomials,
//! * a fraction of features is pure noise (cleaning them is wasted budget —
//!   exactly the trap the RR baseline falls into).
//!
//! For the CleanML trio, [`Dataset::generate_cleanml_pair`] additionally
//! derives a dirty version carrying the paper's documented error types
//! (Airbnb: scaling; Credit: scaling & missing values; Titanic: missing
//! values) together with full per-cell provenance, mirroring the benchmark's
//! paired dirty/clean files.

mod generator;
mod registry;

pub use generator::{CleanMlPair, GeneratorConfig};
pub use registry::{Dataset, DatasetSpec};
