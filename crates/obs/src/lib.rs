//! # comet-obs — run-metrics observability
//!
//! A dependency-free metrics layer for the COMET workspace: counters,
//! gauges, histograms with fixed bucket boundaries, and scoped span timers
//! behind one global registry, plus a JSONL run-journal sink
//! ([`journal`]) and the minimal JSON support ([`json`]) the journal
//! format needs.
//!
//! Design constraints, in priority order:
//!
//! 1. **Near-no-op when disabled.** Every recording call first checks one
//!    relaxed atomic; with metrics off (the default) nothing is timed,
//!    locked, or allocated, so instrumented hot paths cost one branch.
//!    Crucially, metrics can never change *behaviour* — only observe it —
//!    which is what keeps instrumented traces bit-identical to bare runs.
//! 2. **Zero dependencies.** Plain `std`, like `comet-par`; the crate sits
//!    below every other workspace member.
//! 3. **Stable, greppable names.** Metric names are `&'static str` in
//!    `module.metric` form (`eval_cache.hits`, `par.workers_spawned`,
//!    `session.phase.pollute`); [`snapshot`] returns them sorted.
//!
//! The registry is process-global because the instrumented code spans
//! crates and worker threads; [`reset`] restores a clean slate between
//! runs (the CLI resets before each `--metrics-out` session).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod journal;
pub mod json;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{LazyLock, Mutex};
use std::time::{Duration, Instant};

/// Global on/off switch. Off by default; all recording is skipped while off.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The one registry behind every counter/gauge/histogram in the process.
static REGISTRY: LazyLock<Mutex<Registry>> = LazyLock::new(|| Mutex::new(Registry::default()));

/// Histogram bucket upper bounds for durations, in seconds. Spans from
/// 10 µs (a cache hit) to 30 s (a full-dataset model fit); one fixed set
/// keeps snapshots mergeable across runs.
pub const DURATION_BUCKETS: [f64; 12] =
    [1e-5, 1e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0];

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

#[derive(Debug, Clone)]
struct Histogram {
    bounds: &'static [f64],
    /// One count per bound, plus a final overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn observe(&mut self, value: f64) {
        let idx = self.bounds.iter().position(|&b| value <= b).unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

/// Enable or disable all metric recording. Disabling does not clear
/// accumulated values; use [`reset`] for that.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether metric recording is currently on. One relaxed load — cheap
/// enough for any hot path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Add `delta` to a monotonically increasing counter. No-op while disabled.
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *reg.counters.entry(name).or_insert(0) += delta;
}

/// Set a gauge to `value`. No-op while disabled.
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    reg.gauges.insert(name, value);
}

/// Raise a gauge to `value` if `value` exceeds its current reading
/// (high-water marks like peak live workers). No-op while disabled.
pub fn gauge_max(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let g = reg.gauges.entry(name).or_insert(f64::NEG_INFINITY);
    if value > *g {
        *g = value;
    }
}

/// Record `value` into the histogram `name` with the given fixed bucket
/// bounds. The bounds of the *first* observation win; later calls with
/// different bounds still record into the existing histogram.
pub fn observe_with(name: &'static str, bounds: &'static [f64], value: f64) {
    if !enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    reg.histograms.entry(name).or_insert_with(|| Histogram::new(bounds)).observe(value);
}

/// Record a duration (in seconds) into histogram `name` using
/// [`DURATION_BUCKETS`].
pub fn observe_duration(name: &'static str, d: Duration) {
    observe_with(name, &DURATION_BUCKETS, d.as_secs_f64());
}

/// A scoped timer: records its lifetime into the duration histogram
/// `name` on drop (or on [`Span::stop`]). Created disarmed while metrics
/// are disabled, so an un-dropped span costs nothing.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Start a span. While disabled this neither reads the clock nor records.
pub fn span(name: &'static str) -> Span {
    Span { name, start: enabled().then(Instant::now) }
}

impl Span {
    /// Elapsed time so far (zero while disarmed).
    pub fn elapsed(&self) -> Duration {
        self.start.map_or(Duration::ZERO, |s| s.elapsed())
    }

    /// Stop early, record, and return the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.elapsed();
        if self.start.take().is_some() {
            observe_duration(self.name, elapsed);
        }
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            observe_duration(self.name, start.elapsed());
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (the final overflow bucket is implicit).
    pub bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 with no observations).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Point-in-time copy of the whole registry, names sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters.
    pub counters: BTreeMap<String, u64>,
    /// All gauges.
    pub gauges: BTreeMap<String, f64>,
    /// All histograms.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter value, defaulting to 0.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Render the snapshot as one JSON object
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> String {
        let mut counters = json::JsonObject::new();
        for (name, value) in &self.counters {
            counters.field_u64(name, *value);
        }
        let mut gauges = json::JsonObject::new();
        for (name, value) in &self.gauges {
            gauges.field_f64(name, *value);
        }
        let mut histograms = json::JsonObject::new();
        for (name, h) in &self.histograms {
            let mut obj = json::JsonObject::new();
            obj.field_u64("count", h.count);
            obj.field_f64("sum", h.sum);
            if h.count > 0 {
                obj.field_f64("min", h.min);
                obj.field_f64("max", h.max);
                obj.field_f64("mean", h.mean());
            }
            obj.field_raw("bounds", &json::array_f64(&h.bounds));
            obj.field_raw("counts", &json::array_u64(&h.counts));
            histograms.field_raw(name, &obj.finish());
        }
        let mut out = json::JsonObject::new();
        out.field_raw("counters", &counters.finish());
        out.field_raw("gauges", &gauges.finish());
        out.field_raw("histograms", &histograms.finish());
        out.finish()
    }
}

/// Copy the registry's current state (works whether or not recording is
/// enabled — disabled just means nothing new arrives).
pub fn snapshot() -> Snapshot {
    let reg = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    Snapshot {
        counters: reg.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        gauges: reg.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.to_string(),
                    HistogramSnapshot {
                        bounds: h.bounds.to_vec(),
                        counts: h.counts.clone(),
                        count: h.count,
                        sum: h.sum,
                        min: h.min,
                        max: h.max,
                    },
                )
            })
            .collect(),
    }
}

/// Clear every counter, gauge, and histogram (the enable flag and journal
/// sink are untouched).
pub fn reset() {
    let mut reg = REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    reg.counters.clear();
    reg.gauges.clear();
    reg.histograms.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The registry and enable flag are process-global; every test takes
    /// this lock so they cannot interleave.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        set_enabled(false);
        reset();
        guard
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = exclusive();
        counter_add("t.counter", 3);
        gauge_set("t.gauge", 1.5);
        observe_duration("t.histogram", Duration::from_millis(5));
        let span = span("t.span");
        assert_eq!(span.elapsed(), Duration::ZERO);
        drop(span);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let _guard = exclusive();
        set_enabled(true);
        counter_add("t.counter", 2);
        counter_add("t.counter", 3);
        gauge_set("t.gauge", 1.0);
        gauge_set("t.gauge", 4.0);
        gauge_max("t.peak", 2.0);
        gauge_max("t.peak", 1.0);
        observe_duration("t.histogram", Duration::from_micros(50));
        observe_duration("t.histogram", Duration::from_millis(5));
        set_enabled(false);

        let snap = snapshot();
        assert_eq!(snap.counter("t.counter"), 5);
        assert_eq!(snap.gauge("t.gauge"), Some(4.0));
        assert_eq!(snap.gauge("t.peak"), Some(2.0));
        let h = &snap.histograms["t.histogram"];
        assert_eq!(h.count, 2);
        assert!(h.sum > 0.005 && h.sum < 0.006, "sum {}", h.sum);
        assert!(h.min < h.max);
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
        assert_eq!(h.bounds, DURATION_BUCKETS.to_vec());
    }

    #[test]
    fn histogram_bucket_assignment() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5); // bucket 0
        h.observe(1.0); // bucket 0 (inclusive upper bound)
        h.observe(5.0); // bucket 1
        h.observe(100.0); // overflow
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 100.0);
    }

    #[test]
    fn span_records_on_drop_and_stop() {
        let _guard = exclusive();
        set_enabled(true);
        {
            let _span = span("t.span");
            std::thread::sleep(Duration::from_millis(1));
        }
        let d = span("t.span").stop();
        set_enabled(false);
        assert!(d < Duration::from_millis(50));
        let h = &snapshot().histograms["t.span"];
        assert_eq!(h.count, 2);
        assert!(h.sum >= 0.001, "the slept span must register, got {}", h.sum);
    }

    #[test]
    fn reset_clears_everything() {
        let _guard = exclusive();
        set_enabled(true);
        counter_add("t.counter", 1);
        observe_duration("t.histogram", Duration::from_millis(1));
        reset();
        set_enabled(false);
        assert_eq!(snapshot(), Snapshot::default());
    }

    #[test]
    fn snapshot_json_parses() {
        let _guard = exclusive();
        set_enabled(true);
        counter_add("t.counter", 7);
        gauge_set("t.gauge", 2.5);
        observe_duration("t.histogram", Duration::from_millis(2));
        set_enabled(false);
        let text = snapshot().to_json();
        let value = json::parse(&text).expect("snapshot JSON must parse");
        assert_eq!(
            value.get("counters").and_then(|c| c.get("t.counter")).unwrap().as_f64(),
            Some(7.0)
        );
        assert_eq!(value.get("gauges").and_then(|g| g.get("t.gauge")).unwrap().as_f64(), Some(2.5));
        let h = value.get("histograms").and_then(|h| h.get("t.histogram")).unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(1.0));
    }
}
