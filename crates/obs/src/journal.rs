//! The JSONL run journal: a process-global line sink that instrumented
//! code (the cleaning session, the CLI) streams one JSON record per line
//! into. With no sink installed, [`emit`] is a cheap no-op, so emitting
//! code does not need to know whether anyone is listening.

use std::io::Write;
use std::sync::{LazyLock, Mutex};

static SINK: LazyLock<Mutex<Option<Box<dyn Write + Send>>>> = LazyLock::new(|| Mutex::new(None));

/// Install (or with `None` remove) the journal sink. Removing drops the
/// previous writer, flushing buffered output. Returns whether a previous
/// sink was replaced.
pub fn set_sink(sink: Option<Box<dyn Write + Send>>) -> bool {
    let mut slot = SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(mut old) = slot.take() {
        let _ = old.flush();
        *slot = sink;
        return true;
    }
    *slot = sink;
    false
}

/// Whether a sink is currently installed.
pub fn has_sink() -> bool {
    SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner).is_some()
}

/// Write one journal line (a newline is appended) and flush, so records
/// stream out as the run progresses. Returns `false` when no sink is
/// installed or the write failed; journal I/O must never abort a run.
pub fn emit(line: &str) -> bool {
    let mut slot = SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let Some(sink) = slot.as_mut() else {
        return false;
    };
    let ok = sink
        .write_all(line.as_bytes())
        .and_then(|()| sink.write_all(b"\n"))
        .and_then(|()| sink.flush())
        .is_ok();
    if !ok {
        // A broken sink (closed pipe, full disk) is dropped so later emits
        // become cheap no-ops instead of failing repeatedly.
        *slot = None;
    }
    ok
}

/// A `Write` implementation collecting into a shared byte buffer — lets
/// tests install an in-memory journal sink and read it back after a run.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(std::sync::Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// New empty buffer.
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// Copy of the collected bytes as UTF-8 text.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
            .into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Journal state is process-global; serialize the tests touching it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn emit_without_sink_is_noop() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_sink(None);
        assert!(!has_sink());
        assert!(!emit("{\"dropped\":true}"));
    }

    #[test]
    fn emit_streams_lines_to_sink() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let buffer = SharedBuffer::new();
        set_sink(Some(Box::new(buffer.clone())));
        assert!(has_sink());
        assert!(emit("{\"a\":1}"));
        assert!(emit("{\"b\":2}"));
        set_sink(None);
        assert_eq!(buffer.contents(), "{\"a\":1}\n{\"b\":2}\n");
        assert!(!emit("{\"after\":3}"));
        assert_eq!(buffer.contents(), "{\"a\":1}\n{\"b\":2}\n", "no writes after removal");
    }
}
