//! The JSONL run journal: a process-global line sink that instrumented
//! code (the cleaning session, the CLI, the serve daemon) streams one JSON
//! record per line into. With no sink installed, [`emit`] is a cheap
//! no-op, so emitting code does not need to know whether anyone is
//! listening.
//!
//! Journal I/O must never abort a run, but it must not fail *silently*
//! either: every failed write or flush bumps the `journal.write_errors`
//! counter and records the error, and [`take_sink`] surfaces the last one
//! at shutdown so callers can warn that the journal is incomplete.

use std::io::Write;
use std::sync::{LazyLock, Mutex};

static SINK: LazyLock<Mutex<Option<Box<dyn Write + Send>>>> = LazyLock::new(|| Mutex::new(None));

/// The most recent journal write/flush error, kept until [`take_sink`]
/// (or [`last_error`] inspection) so a dropped line is visible after the
/// fact even though [`emit`] itself never propagates failures.
static LAST_ERROR: Mutex<Option<String>> = Mutex::new(None);

fn record_error(context: &str, e: &std::io::Error) {
    crate::counter_add("journal.write_errors", 1);
    *LAST_ERROR.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
        Some(format!("{context}: {e}"));
}

/// Install (or with `None` remove) the journal sink. Removing drops the
/// previous writer after flushing it; a flush failure is recorded like a
/// failed [`emit`] (counter + last-error), not discarded. Returns whether
/// a previous sink was replaced.
pub fn set_sink(sink: Option<Box<dyn Write + Send>>) -> bool {
    let mut slot = SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(mut old) = slot.take() {
        if let Err(e) = old.flush() {
            record_error("flush on sink replacement", &e);
        }
        *slot = sink;
        return true;
    }
    *slot = sink;
    false
}

/// Remove and return the current sink (flushed), together with the last
/// recorded journal error — the shutdown path: callers that care whether
/// the journal is complete check the error half before declaring the file
/// good. Clears the recorded error.
pub fn take_sink() -> (Option<Box<dyn Write + Send>>, Option<String>) {
    let mut slot = SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let sink = match slot.take() {
        Some(mut old) => {
            if let Err(e) = old.flush() {
                record_error("flush on take_sink", &e);
            }
            Some(old)
        }
        None => None,
    };
    let error = LAST_ERROR.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
    (sink, error)
}

/// The last recorded journal write/flush error, if any, without clearing
/// it or touching the sink.
pub fn last_error() -> Option<String> {
    LAST_ERROR.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

/// Whether a sink is currently installed.
pub fn has_sink() -> bool {
    SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner).is_some()
}

/// Write one journal line (a newline is appended) and flush, so records
/// stream out as the run progresses. Returns `false` when no sink is
/// installed or the write failed; journal I/O must never abort a run, so
/// failures are recorded (`journal.write_errors` counter + last-error,
/// surfaced by [`take_sink`]) instead of propagated.
pub fn emit(line: &str) -> bool {
    let mut slot = SINK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let Some(sink) = slot.as_mut() else {
        return false;
    };
    let result = sink
        .write_all(line.as_bytes())
        .and_then(|()| sink.write_all(b"\n"))
        .and_then(|()| sink.flush());
    if let Err(e) = result {
        record_error("write_line", &e);
        // A broken sink (closed pipe, full disk) is dropped so later emits
        // become cheap no-ops instead of failing repeatedly.
        *slot = None;
        return false;
    }
    true
}

/// A `Write` implementation collecting into a shared byte buffer — lets
/// tests install an in-memory journal sink and read it back after a run.
#[derive(Debug, Clone, Default)]
pub struct SharedBuffer(std::sync::Arc<Mutex<Vec<u8>>>);

impl SharedBuffer {
    /// New empty buffer.
    pub fn new() -> Self {
        SharedBuffer::default()
    }

    /// Copy of the collected bytes as UTF-8 text.
    pub fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
            .into_owned()
    }
}

impl Write for SharedBuffer {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Journal state is process-global; serialize the tests touching it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    /// A sink that fails after `ok_writes` successful writes, and whose
    /// flush fails when `fail_flush` is set — the closed-pipe/full-disk
    /// simulator.
    struct FailingSink {
        ok_writes: usize,
        fail_flush: bool,
    }

    impl Write for FailingSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ok_writes == 0 {
                return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe closed"));
            }
            self.ok_writes -= 1;
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            if self.fail_flush {
                return Err(std::io::Error::other("flush failed"));
            }
            Ok(())
        }
    }

    #[test]
    fn emit_without_sink_is_noop() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_sink(None);
        assert!(!has_sink());
        assert!(!emit("{\"dropped\":true}"));
    }

    #[test]
    fn emit_streams_lines_to_sink() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let buffer = SharedBuffer::new();
        set_sink(Some(Box::new(buffer.clone())));
        assert!(has_sink());
        assert!(emit("{\"a\":1}"));
        assert!(emit("{\"b\":2}"));
        set_sink(None);
        assert_eq!(buffer.contents(), "{\"a\":1}\n{\"b\":2}\n");
        assert!(!emit("{\"after\":3}"));
        assert_eq!(buffer.contents(), "{\"a\":1}\n{\"b\":2}\n", "no writes after removal");
    }

    #[test]
    fn write_failures_are_counted_and_surfaced_on_take() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let _ = take_sink(); // clear any recorded error from other tests
        crate::set_enabled(true);
        crate::reset();
        set_sink(Some(Box::new(FailingSink { ok_writes: 0, fail_flush: false })));
        assert!(!emit("{\"doomed\":true}"), "broken-pipe write must report failure");
        assert!(!has_sink(), "a broken sink is dropped");
        assert_eq!(crate::snapshot().counter("journal.write_errors"), 1);
        let (sink, error) = take_sink();
        assert!(sink.is_none(), "the broken sink was already dropped");
        let error = error.expect("the failed write must be surfaced");
        assert!(error.contains("pipe closed"), "{error}");
        // take_sink clears the record: a second take reports a clean state.
        assert_eq!(take_sink().1, None);
        crate::set_enabled(false);
    }

    #[test]
    fn replacement_flush_failure_is_recorded_not_discarded() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let _ = take_sink();
        crate::set_enabled(true);
        crate::reset();
        set_sink(Some(Box::new(FailingSink { ok_writes: usize::MAX, fail_flush: true })));
        // Replacing the sink flushes the old one; that flush fails and the
        // failure must land in the counter + last-error, not in `let _`.
        let replaced = set_sink(Some(Box::new(SharedBuffer::new())));
        assert!(replaced);
        assert_eq!(crate::snapshot().counter("journal.write_errors"), 1);
        let error = last_error().expect("flush failure recorded");
        assert!(error.contains("flush failed"), "{error}");
        let (_, taken) = take_sink();
        assert!(taken.is_some(), "take_sink surfaces the recorded error");
        crate::set_enabled(false);
    }
}
