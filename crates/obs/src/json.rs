//! Minimal JSON support for the run journal: an append-only object
//! writer and a small recursive-descent parser (used by tests and the CI
//! journal validator — the build environment has no serde).

use std::fmt::Write as _;

/// Incremental `{...}` builder. Field order is insertion order; values go
/// in pre-encoded via the typed `field_*` methods.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, name: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        write_escaped(&mut self.buf, name);
        self.buf.push(':');
    }

    /// Add an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a float field. Non-finite values (which JSON cannot represent)
    /// are encoded as `null`.
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a string field (escaped).
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        write_escaped(&mut self.buf, value);
        self
    }

    /// Add a pre-encoded JSON value (nested object/array) verbatim.
    pub fn field_raw(&mut self, name: &str, encoded: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(encoded);
        self
    }

    /// Close the object and return the encoded text.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Encode a `[..]` of floats (non-finite → `null`).
pub fn array_f64(values: &[f64]) -> String {
    let items: Vec<String> = values
        .iter()
        .map(|v| if v.is_finite() { v.to_string() } else { "null".to_string() })
        .collect();
    format!("[{}]", items.join(","))
}

/// Encode a `[..]` of unsigned integers.
pub fn array_u64(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(","))
}

fn write_escaped(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also produced for non-finite floats on the writer side).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl std::fmt::Display for JsonValue {
    /// Re-serialize: compact JSON that [`parse`] round-trips. Integral
    /// numbers print without a fractional part; non-finite numbers (which
    /// JSON cannot represent) print as `null`, matching the writer side.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) if !n.is_finite() => f.write_str("null"),
            JsonValue::Num(n) => write!(f, "{n}"),
            JsonValue::Str(s) => {
                let mut buf = String::new();
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut buf = String::new();
                    write_escaped(&mut buf, key);
                    write!(f, "{buf}:{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse one JSON document. Errors carry the byte offset of the problem.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(JsonValue::Num).map_err(|e| format!("bad number at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_parseable_output() {
        let mut inner = JsonObject::new();
        inner.field_u64("count", 3);
        let mut obj = JsonObject::new();
        obj.field_str("type", "iteration")
            .field_u64("n", 42)
            .field_f64("f1", 0.875)
            .field_f64("nan", f64::NAN)
            .field_raw("nested", &inner.finish())
            .field_raw("xs", &array_f64(&[1.0, 2.5]));
        let text = obj.finish();
        let value = parse(&text).unwrap();
        assert_eq!(value.get("type").unwrap().as_str(), Some("iteration"));
        assert_eq!(value.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(value.get("f1").unwrap().as_f64(), Some(0.875));
        assert_eq!(value.get("nan"), Some(&JsonValue::Null));
        assert_eq!(value.get("nested").unwrap().get("count").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            value.get("xs"),
            Some(&JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.5)]))
        );
    }

    #[test]
    fn escaping_round_trips() {
        let mut obj = JsonObject::new();
        obj.field_str("text", "a\"b\\c\nd\te\u{1}");
        let parsed = parse(&obj.finish()).unwrap();
        assert_eq!(parsed.get("text").unwrap().as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn parses_standard_documents() {
        let v = parse(r#"{"a": [1, -2.5, 1e3], "b": {"c": true, "d": null}, "e": "x"}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(-2.5),
                JsonValue::Num(1000.0)
            ]))
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Null));
        assert_eq!(parse("[]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Obj(vec![]));
        assert_eq!(parse(" 3.5 ").unwrap(), JsonValue::Num(3.5));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "{} extra", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn display_round_trips() {
        for text in [
            r#"{"a":[1,-2.5,"x\ny"],"b":{"c":true,"d":null},"e":7}"#,
            r#"[{"nested":[[],{}]},false]"#,
        ] {
            let value = parse(text).unwrap();
            assert_eq!(parse(&value.to_string()).unwrap(), value, "{text}");
        }
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Num(3.0).to_string(), "3");
    }

    #[test]
    fn unicode_passthrough() {
        let mut obj = JsonObject::new();
        obj.field_str("s", "héllo → 世界");
        let parsed = parse(&obj.finish()).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str(), Some("héllo → 世界"));
        assert_eq!(parse(r#""A""#).unwrap(), JsonValue::Str("A".into()));
    }
}
