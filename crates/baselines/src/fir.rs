//! FIR — feature-importance-based recommendations (paper §4.5).
//!
//! Shapley values (computed once, on the initial dirty data) rank the
//! features; FIR cleans the highest-ranked still-dirty feature until it is
//! fully clean, then moves to the next. The ranking never updates — the
//! paper's point is precisely that this static view goes stale as cleaning
//! proceeds.

use crate::strategy::{execute_picks, StrategyConfig};
use comet_core::{CleaningEnvironment, CleaningTrace, EnvError};
use comet_jenga::ErrorType;
use comet_ml::shapley::{column_means, rank_by_importance, shapley_importance, ShapleyConfig};
use comet_ml::Featurizer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The FIR baseline.
#[derive(Debug, Clone, Copy)]
pub struct FeatureImportanceCleaner {
    /// Monte-Carlo permutations for the Shapley estimate.
    pub n_permutations: usize,
}

impl Default for FeatureImportanceCleaner {
    fn default() -> Self {
        FeatureImportanceCleaner { n_permutations: 8 }
    }
}

impl FeatureImportanceCleaner {
    /// Compute the static feature ranking on the current (dirty) data:
    /// fit the environment's tuned model on the dirty training split and
    /// estimate Shapley contributions to the test-set metric.
    pub fn rank_features<R: Rng>(
        &self,
        env: &CleaningEnvironment,
        rng: &mut R,
    ) -> Result<Vec<usize>, EnvError> {
        let featurizer = Featurizer::fit(env.train())?;
        let xtr = featurizer.transform(env.train())?;
        let xte = featurizer.transform(env.test())?;
        let ytr = env.train().label_codes()?;
        let yte = env.test().label_codes()?;
        let mut model = env.model().params.build();
        let mut fit_rng = StdRng::seed_from_u64(0xF17);
        model.fit(&xtr, &ytr, env.n_classes(), &mut fit_rng);

        let background = column_means(&xtr);
        let importances = shapley_importance(
            model.as_ref(),
            &xte,
            &yte,
            env.n_classes(),
            featurizer.groups(),
            &background,
            ShapleyConfig { n_permutations: self.n_permutations, metric: env.metric() },
            rng,
        );
        // Map group order back to original column indices.
        let group_order = rank_by_importance(&importances);
        Ok(group_order.into_iter().map(|g| featurizer.groups()[g].col).collect())
    }

    /// Run FIR to completion (budget or clean).
    pub fn run<R: Rng>(
        &self,
        env: &mut CleaningEnvironment,
        errors: &[ErrorType],
        config: &StrategyConfig,
        rng: &mut R,
    ) -> Result<CleaningTrace, EnvError> {
        let ranking = self.rank_features(env, rng)?;
        execute_picks(
            env,
            errors,
            config,
            move |_env, dirty, _config, _steps, _rng| {
                // Highest-ranked feature that still has dirt; within the
                // feature, the error type with the most dirty training cells
                // (deterministic).
                for &col in &ranking {
                    let mut best: Option<(usize, ErrorType)> = None;
                    let mut best_count = 0usize;
                    for &(c, e) in dirty {
                        if c != col {
                            continue;
                        }
                        let count =
                            _env.dirty_train_rows(c, e).len() + _env.dirty_test_rows(c, e).len();
                        if count > best_count {
                            best_count = count;
                            best = Some((c, e));
                        }
                    }
                    if best.is_some() {
                        return Ok(best);
                    }
                }
                Ok(dirty.first().copied())
            },
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_support::small_env;
    use comet_ml::Algorithm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ranking_covers_all_features() {
        let env = small_env(1, vec![(0, 0.3)], Algorithm::Knn);
        let fir = FeatureImportanceCleaner { n_permutations: 2 };
        let mut rng = StdRng::seed_from_u64(0);
        let ranking = fir.rank_features(&env, &mut rng).unwrap();
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, env.feature_cols(), "ranking is a permutation of features");
    }

    #[test]
    fn cleans_one_feature_to_completion_before_next() {
        let mut env = small_env(2, vec![(0, 0.15), (1, 0.15)], Algorithm::Knn);
        let fir = FeatureImportanceCleaner { n_permutations: 2 };
        let config = StrategyConfig { budget: 1_000.0, ..StrategyConfig::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let trace = fir.run(&mut env, &[ErrorType::MissingValues], &config, &mut rng).unwrap();
        assert!(env.is_fully_clean().unwrap());
        // Steps on the two dirty features must not interleave: once the
        // second feature starts, the first never reappears.
        let cols: Vec<usize> = trace.records.iter().map(|r| r.col).collect();
        let mut seen_second = None;
        for &c in &cols {
            match seen_second {
                None => {
                    if c != cols[0] {
                        seen_second = Some(c);
                    }
                }
                Some(second) => {
                    assert_eq!(c, second, "FIR must not return to an earlier feature");
                }
            }
        }
    }

    #[test]
    fn respects_budget() {
        let mut env = small_env(3, vec![(0, 0.4)], Algorithm::Knn);
        let fir = FeatureImportanceCleaner { n_permutations: 2 };
        let config = StrategyConfig { budget: 4.0, ..StrategyConfig::default() };
        let mut rng = StdRng::seed_from_u64(2);
        let trace = fir.run(&mut env, &[ErrorType::MissingValues], &config, &mut rng).unwrap();
        assert!(trace.total_spent() <= 4.0 + 1e-9);
    }
}
