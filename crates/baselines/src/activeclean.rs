//! AC — ActiveClean (Krishnan et al., PVLDB 2016), adapted per paper §5.3.
//!
//! ActiveClean treats cleaning as stochastic gradient descent: a convex
//! model is pre-trained on the already-clean records, then each iteration
//! selects the dirty records with the largest estimated gradient norms,
//! cleans them across *all* features, and takes SGD steps on the newly
//! cleaned sample. Per the paper's adaptation we (a) skip the error
//! detection component (§5.3: "AC's approach also includes an error
//! detection component, which we skip"), (b) align record-wise cleaning
//! with COMET's feature-level budget accounting, and (c) evaluate AC's
//! *own incrementally updated model* after every step — ActiveClean's
//! defining behaviour, and the source of the erratic F1 trajectories the
//! paper reports (§5.3: "the F1 score can drop by up to 30 %pt after a
//! cleaning step, only to recover").

use crate::strategy::StrategyConfig;
use comet_core::{Budget, CleaningEnvironment, CleaningTrace, EnvError, StepAction, StepRecord};
use comet_jenga::ErrorType;
use comet_ml::sgd::{Glm, Loss, SgdParams};
use comet_ml::{Algorithm, Featurizer};
use rand::Rng;
use std::collections::BTreeMap;
use std::time::Instant;

/// ActiveClean hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActiveCleanConfig {
    /// SGD epochs over the newly cleaned sample per iteration.
    pub update_epochs: usize,
    /// Learning rate for the incremental updates.
    pub learning_rate: f64,
    /// Epochs for the initial pre-training on clean records.
    pub pretrain_epochs: usize,
}

impl Default for ActiveCleanConfig {
    fn default() -> Self {
        ActiveCleanConfig { update_epochs: 5, learning_rate: 0.05, pretrain_epochs: 30 }
    }
}

/// The ActiveClean baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ActiveClean {
    /// Hyperparameters.
    pub config: ActiveCleanConfig,
}

impl ActiveClean {
    /// Map the environment's algorithm to its convex loss. Errors for
    /// non-convex algorithms (AC supports SVM/LOR/LIR only, §4.5).
    fn loss_for(algorithm: Algorithm) -> Result<Loss, EnvError> {
        match algorithm {
            Algorithm::Svm => Ok(Loss::Hinge),
            Algorithm::LogReg => Ok(Loss::Logistic),
            Algorithm::LinReg => Ok(Loss::Squared),
            other => Err(EnvError::Invalid(format!(
                "ActiveClean requires a convex-loss linear model, got {other}"
            ))),
        }
    }

    /// Run AC to completion (budget or clean).
    pub fn run<R: Rng>(
        &self,
        env: &mut CleaningEnvironment,
        errors: &[ErrorType],
        config: &StrategyConfig,
        rng: &mut R,
    ) -> Result<CleaningTrace, EnvError> {
        let loss = Self::loss_for(env.model().algorithm)?;
        let mut budget = Budget::new(config.budget);
        let mut steps_done: BTreeMap<ErrorType, usize> = BTreeMap::new();

        let mut trace = CleaningTrace {
            initial_f1: env.evaluate()?,
            fully_clean_f1: Some(env.fully_cleaned_f1()?),
            ..CleaningTrace::default()
        };
        let mut current_f1 = trace.initial_f1;

        // --- Pre-train on the records that are already clean (§5.3). ---
        let mut glm = Glm::new(
            loss,
            SgdParams {
                learning_rate: self.config.learning_rate,
                l2: 1e-4,
                epochs: self.config.pretrain_epochs,
            },
        );
        {
            let featurizer = Featurizer::fit(env.train())?;
            let x = featurizer.transform(env.train())?;
            let y = env.train().label_codes()?;
            let clean_rows = self.clean_train_rows(env)?;
            if clean_rows.is_empty() {
                glm.fit(&x, &y, env.n_classes(), rng);
            } else {
                let xc = x.take_rows(&clean_rows);
                let yc: Vec<u32> = clean_rows.iter().map(|&r| y[r]).collect();
                glm.fit(&xc, &yc, env.n_classes(), rng);
            }
        }

        for iteration in 0..100_000usize {
            if budget.exhausted() {
                break;
            }
            let dirty_train = self.dirty_train_rows(env)?;
            let dirty_test = self.dirty_test_rows(env)?;
            if dirty_train.is_empty() && dirty_test.is_empty() {
                break;
            }

            // comet-lint: allow(D3) — observability: iteration runtime for reports; never feeds a trace decision
            let started = Instant::now();
            // Gradient-weighted sampling of the next batch of records.
            let featurizer = Featurizer::fit(env.train())?;
            let x = featurizer.transform(env.train())?;
            let y = env.train().label_codes()?;
            let batch_train = weighted_sample(
                &dirty_train,
                // comet-lint: allow(D2) — epsilon clamp: `max(1e-9)` maps a NaN gradient norm to the floor, deterministically
                |&r| glm.grad_norm(x.row(r), y[r]).max(1e-9),
                env.step_train().min(dirty_train.len()),
                rng,
            );
            let batch_test = uniform_sample(&dirty_test, env.step_test(), rng);
            trace.iteration_runtimes.push(started.elapsed());

            // Charge the budget before mutating: the cost reflects the mix
            // of error types about to be cleaned (feature-level alignment).
            let cost = self.batch_cost(env, &batch_train, &batch_test, config, &steps_done);
            if !budget.can_afford(cost) {
                break;
            }
            let err_types = self.batch_error_types(env, &batch_train, &batch_test);

            let cleaned = env.clean_records(&batch_train, &batch_test, rng)?;
            if cleaned == 0 && !batch_train.is_empty() {
                // Nothing actually changed (stale rows): avoid spinning.
                break;
            }
            budget.try_spend(cost);
            for e in &err_types {
                *steps_done.entry(*e).or_default() += 1;
            }

            // SGD update on the newly cleaned records (the AC model update).
            let featurizer = Featurizer::fit(env.train())?;
            let x = featurizer.transform(env.train())?;
            let y = env.train().label_codes()?;
            for _ in 0..self.config.update_epochs {
                for &r in &batch_train {
                    glm.sgd_step(x.row(r), y[r], self.config.learning_rate);
                }
            }

            // Evaluate AC's own model — not a retrained one. This is what
            // makes AC's trajectory erratic: the SGD state lags behind the
            // changing data.
            let x_test = featurizer.transform(env.test())?;
            let y_test = env.test().label_codes()?;
            let preds: Vec<u32> =
                (0..x_test.nrows()).map(|i| glm.predict_row(x_test.row(i))).collect();
            let f1 = env.metric().eval(&y_test, &preds, env.n_classes());
            current_f1 = f1;
            let (col, err) = (
                usize::MAX, // record-wise: no single feature
                err_types.first().copied().unwrap_or(ErrorType::MissingValues),
            );
            trace.records.push(StepRecord {
                iteration,
                col,
                err,
                action: StepAction::Accepted,
                cost,
                budget_spent: budget.spent(),
                predicted_f1: None,
                raw_predicted_f1: None,
                actual_f1: f1,
                cleaned_cells: cleaned,
            });
            trace.f1_curve.push((budget.spent(), f1));
            let _ = errors; // provenance-level filtering happens via the env
        }
        trace.final_f1 = current_f1;
        Ok(trace)
    }

    /// Training rows with no dirty cell in any feature.
    fn clean_train_rows(&self, env: &CleaningEnvironment) -> Result<Vec<usize>, EnvError> {
        let n = env.train().nrows();
        let mut dirty = vec![false; n];
        for col in env.feature_cols() {
            let (train_rows, _) = env.gt_dirty_rows(col)?;
            for r in train_rows {
                dirty[r] = true;
            }
        }
        Ok((0..n).filter(|&r| !dirty[r]).collect())
    }

    /// Training rows with at least one dirty cell.
    fn dirty_train_rows(&self, env: &CleaningEnvironment) -> Result<Vec<usize>, EnvError> {
        let n = env.train().nrows();
        let mut dirty = vec![false; n];
        for col in env.feature_cols() {
            let (train_rows, _) = env.gt_dirty_rows(col)?;
            for r in train_rows {
                dirty[r] = true;
            }
        }
        Ok((0..n).filter(|&r| dirty[r]).collect())
    }

    /// Test rows with at least one dirty cell.
    fn dirty_test_rows(&self, env: &CleaningEnvironment) -> Result<Vec<usize>, EnvError> {
        let n = env.test().nrows();
        let mut dirty = vec![false; n];
        for col in env.feature_cols() {
            let (_, test_rows) = env.gt_dirty_rows(col)?;
            for r in test_rows {
                dirty[r] = true;
            }
        }
        Ok((0..n).filter(|&r| dirty[r]).collect())
    }

    /// Distinct error types among the cells the batch will clean.
    fn batch_error_types(
        &self,
        env: &CleaningEnvironment,
        batch_train: &[usize],
        batch_test: &[usize],
    ) -> Vec<ErrorType> {
        let mut out: Vec<ErrorType> = Vec::new();
        for col in env.feature_cols() {
            for &err in &ErrorType::ALL {
                let tr = env.dirty_train_rows(col, err);
                let te = env.dirty_test_rows(col, err);
                let hit = batch_train.iter().any(|r| tr.contains(r))
                    || batch_test.iter().any(|r| te.contains(r));
                if hit && !out.contains(&err) {
                    out.push(err);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Cost of a record batch: the cell-count-weighted mean of the per-error
    /// next-step costs (the paper's feature-level alignment; discrepancies
    /// are minor under its equal-error-distribution assumption).
    fn batch_cost(
        &self,
        env: &CleaningEnvironment,
        batch_train: &[usize],
        batch_test: &[usize],
        config: &StrategyConfig,
        steps_done: &BTreeMap<ErrorType, usize>,
    ) -> f64 {
        let mut weighted = 0.0;
        let mut total = 0usize;
        for col in env.feature_cols() {
            for &err in &ErrorType::ALL {
                let tr = env.dirty_train_rows(col, err);
                let te = env.dirty_test_rows(col, err);
                let hits = batch_train.iter().filter(|r| tr.contains(r)).count()
                    + batch_test.iter().filter(|r| te.contains(r)).count();
                if hits > 0 {
                    let done = steps_done.get(&err).copied().unwrap_or(0);
                    weighted += hits as f64 * config.costs.next_cost(err, done);
                    total += hits;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            weighted / total as f64
        }
    }
}

/// Sample `k` distinct items from `pool` with probability proportional to
/// `weight` (sequential weighted reservoir, simple O(k·n) form).
fn weighted_sample<R: Rng, W: Fn(&usize) -> f64>(
    pool: &[usize],
    weight: W,
    k: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut remaining: Vec<usize> = pool.to_vec();
    let mut out = Vec::with_capacity(k.min(pool.len()));
    for _ in 0..k.min(pool.len()) {
        let total: f64 = remaining.iter().map(&weight).sum();
        if total <= 0.0 {
            out.push(remaining.swap_remove(0));
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = remaining.len() - 1;
        for (i, item) in remaining.iter().enumerate() {
            target -= weight(item);
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        out.push(remaining.swap_remove(chosen));
    }
    out
}

/// Sample up to `k` distinct items uniformly.
fn uniform_sample<R: Rng>(pool: &[usize], k: usize, rng: &mut R) -> Vec<usize> {
    let mut remaining: Vec<usize> = pool.to_vec();
    let take = k.min(remaining.len());
    for i in 0..take {
        let j = rng.gen_range(i..remaining.len());
        remaining.swap(i, j);
    }
    remaining.truncate(take);
    remaining
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_support::small_env;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_non_convex_models() {
        let mut env = small_env(1, vec![(0, 0.2)], Algorithm::Knn);
        let mut rng = StdRng::seed_from_u64(0);
        let res = ActiveClean::default().run(
            &mut env,
            &[ErrorType::MissingValues],
            &StrategyConfig::default(),
            &mut rng,
        );
        assert!(res.is_err());
    }

    #[test]
    fn cleans_records_within_budget() {
        let mut env = small_env(2, vec![(0, 0.3), (1, 0.2)], Algorithm::Svm);
        let before = env.total_dirty().unwrap();
        let config = StrategyConfig { budget: 10.0, ..StrategyConfig::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let trace = ActiveClean::default()
            .run(&mut env, &[ErrorType::MissingValues], &config, &mut rng)
            .unwrap();
        assert!(trace.total_spent() <= 10.0 + 1e-9);
        assert!(env.total_dirty().unwrap() < before);
        assert!(!trace.records.is_empty());
        // Record-wise cleaning can touch several cells per step.
        assert!(trace.records.iter().all(|r| r.cleaned_cells >= 1));
    }

    #[test]
    fn ample_budget_fully_cleans() {
        let mut env = small_env(3, vec![(0, 0.1)], Algorithm::LogReg);
        let config = StrategyConfig { budget: 10_000.0, ..StrategyConfig::default() };
        let mut rng = StdRng::seed_from_u64(2);
        ActiveClean::default()
            .run(&mut env, &[ErrorType::MissingValues], &config, &mut rng)
            .unwrap();
        assert!(env.is_fully_clean().unwrap());
    }

    #[test]
    fn weighted_sample_prefers_heavy_items() {
        let pool: Vec<usize> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let mut count_heavy = 0;
        for _ in 0..200 {
            let s = weighted_sample(&pool, |&i| if i == 7 { 100.0 } else { 1.0 }, 1, &mut rng);
            if s[0] == 7 {
                count_heavy += 1;
            }
        }
        // P(pick 7) = 100/109 ≈ 0.92.
        assert!(count_heavy > 150, "heavy item picked only {count_heavy}/200");
    }

    #[test]
    fn uniform_sample_distinct_and_clamped() {
        let pool = vec![1, 2, 3];
        let mut rng = StdRng::seed_from_u64(4);
        let s = uniform_sample(&pool, 10, &mut rng);
        assert_eq!(s.len(), 3);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, pool);
    }
}
