//! Shared strategy plumbing: configuration, the accept-always step executor
//! used by RR/FIR/Oracle, and trace averaging for repeated runs.

use comet_core::{
    Budget, CleaningEnvironment, CleaningTrace, CostPolicy, EnvError, StepAction, StepRecord,
};
use comet_jenga::ErrorType;
use rand::Rng;
use std::collections::BTreeMap;
use std::time::Instant;

/// Budget and cost setup shared by all strategies in one experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyConfig {
    /// Total cleaning budget.
    pub budget: f64,
    /// Cost policy (must match COMET's for comparability).
    pub costs: CostPolicy,
}

impl Default for StrategyConfig {
    fn default() -> Self {
        StrategyConfig { budget: 50.0, costs: CostPolicy::constant() }
    }
}

/// Run an accept-always cleaning loop where `pick` chooses the next
/// `(feature, error type)` among the currently dirty pairs. Used by RR
/// (random pick), FIR (static ranking pick) and Oracle (measured pick).
pub(crate) fn execute_picks<R, F>(
    env: &mut CleaningEnvironment,
    errors: &[ErrorType],
    config: &StrategyConfig,
    mut pick: F,
    rng: &mut R,
) -> Result<CleaningTrace, EnvError>
where
    R: Rng,
    F: FnMut(
        &mut CleaningEnvironment,
        &[(usize, ErrorType)],
        &StrategyConfig,
        &BTreeMap<(usize, ErrorType), usize>,
        &mut R,
    ) -> Result<Option<(usize, ErrorType)>, EnvError>,
{
    let mut budget = Budget::new(config.budget);
    let mut steps_done: BTreeMap<(usize, ErrorType), usize> = BTreeMap::new();
    let mut trace = CleaningTrace {
        initial_f1: env.evaluate()?,
        fully_clean_f1: Some(env.fully_cleaned_f1()?),
        ..CleaningTrace::default()
    };
    let mut current_f1 = trace.initial_f1;

    for iteration in 0..100_000usize {
        if budget.exhausted() {
            break;
        }
        let dirty = env.candidate_pairs(errors);
        if dirty.is_empty() {
            break;
        }
        // comet-lint: allow(D3) — observability: iteration runtime for reports; never feeds a trace decision
        let started = Instant::now();
        let Some((col, err)) = pick(env, &dirty, config, &steps_done, rng)? else {
            break;
        };
        trace.iteration_runtimes.push(started.elapsed());
        let done = steps_done.get(&(col, err)).copied().unwrap_or(0);
        let cost = config.costs.next_cost(err, done);
        if !budget.can_afford(cost) {
            // Try to find any affordable dirty pair before giving up.
            let affordable = dirty.iter().copied().find(|&(c, e)| {
                let d = steps_done.get(&(c, e)).copied().unwrap_or(0);
                budget.can_afford(config.costs.next_cost(e, d))
            });
            match affordable {
                Some((c, e)) => {
                    let d = steps_done.get(&(c, e)).copied().unwrap_or(0);
                    let cost = config.costs.next_cost(e, d);
                    clean_and_record(
                        env,
                        c,
                        e,
                        cost,
                        iteration,
                        &mut budget,
                        &mut steps_done,
                        &mut trace,
                        &mut current_f1,
                        rng,
                    )?;
                    continue;
                }
                None => break,
            }
        }
        clean_and_record(
            env,
            col,
            err,
            cost,
            iteration,
            &mut budget,
            &mut steps_done,
            &mut trace,
            &mut current_f1,
            rng,
        )?;
    }
    trace.final_f1 = current_f1;
    Ok(trace)
}

#[allow(clippy::too_many_arguments)]
fn clean_and_record<R: Rng>(
    env: &mut CleaningEnvironment,
    col: usize,
    err: ErrorType,
    cost: f64,
    iteration: usize,
    budget: &mut Budget,
    steps_done: &mut BTreeMap<(usize, ErrorType), usize>,
    trace: &mut CleaningTrace,
    current_f1: &mut f64,
    rng: &mut R,
) -> Result<(), EnvError> {
    let (ctr, cte) = env.clean_step(col, err, &[], &[], rng)?;
    if ctr + cte == 0 {
        return Ok(());
    }
    budget.try_spend(cost);
    *steps_done.entry((col, err)).or_default() += 1;
    let f1 = env.evaluate()?;
    *current_f1 = f1;
    trace.records.push(StepRecord {
        iteration,
        col,
        err,
        action: StepAction::Accepted,
        cost,
        budget_spent: budget.spent(),
        predicted_f1: None,
        raw_predicted_f1: None,
        actual_f1: f1,
        cleaned_cells: ctr + cte,
    });
    trace.f1_curve.push((budget.spent(), f1));
    Ok(())
}

/// Average several traces into one F1-per-budget-unit series (RR runs five
/// repetitions, §4.5). Returns `series[b]` = mean F1 after budget `b`.
pub fn average_traces(traces: &[CleaningTrace], max_budget: usize) -> Vec<f64> {
    assert!(!traces.is_empty(), "need at least one trace");
    let mut series = vec![0.0; max_budget + 1];
    for trace in traces {
        for (b, slot) in series.iter_mut().enumerate() {
            *slot += trace.f1_at_budget(b as f64);
        }
    }
    series.iter_mut().for_each(|v| *v /= traces.len() as f64);
    series
}

#[cfg(test)]
pub(crate) mod test_support {
    use comet_core::CleaningEnvironment;
    use comet_frame::{train_test_split, SplitOptions};
    use comet_jenga::{ErrorType, GroundTruth, PrePollutionPlan, Provenance, Scenario};
    use comet_ml::{Algorithm, Metric, RandomSearch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A small pre-polluted EEG environment used across baseline tests.
    pub fn small_env(
        seed: u64,
        levels: Vec<(usize, f64)>,
        algorithm: Algorithm,
    ) -> CleaningEnvironment {
        let mut rng = StdRng::seed_from_u64(seed);
        let df = comet_datasets::Dataset::Eeg.generate(Some(240), &mut rng);
        let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
        let gt_train = GroundTruth::new(tt.train.clone());
        let gt_test = GroundTruth::new(tt.test.clone());
        let mut train = tt.train;
        let mut test = tt.test;
        let mut prov_train = Provenance::for_frame(&train);
        let mut prov_test = Provenance::for_frame(&test);
        let plan =
            PrePollutionPlan::explicit(Scenario::SingleError(ErrorType::MissingValues), levels);
        plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).unwrap();
        plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).unwrap();
        CleaningEnvironment::new(
            train,
            test,
            gt_train,
            gt_test,
            prov_train,
            prov_test,
            algorithm,
            Metric::F1,
            0.02,
            RandomSearch { n_samples: 1, ..RandomSearch::default() },
            17,
            &mut rng,
        )
        .unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_traces_means_series() {
        let t1 = CleaningTrace {
            initial_f1: 0.4,
            f1_curve: vec![(1.0, 0.6)],
            final_f1: 0.6,
            ..CleaningTrace::default()
        };
        let t2 = CleaningTrace {
            initial_f1: 0.6,
            f1_curve: vec![(2.0, 0.8)],
            final_f1: 0.8,
            ..CleaningTrace::default()
        };
        let avg = average_traces(&[t1, t2], 2);
        assert_eq!(avg, vec![0.5, 0.6, 0.7]);
    }

    #[test]
    #[should_panic(expected = "at least one trace")]
    fn empty_traces_panic() {
        average_traces(&[], 5);
    }
}
