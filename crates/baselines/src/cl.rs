//! CL — COMET-Light (paper §4.5).
//!
//! Applies COMET's Estimator once, up front, to produce a *static* ranked
//! list of `(feature, error type)` candidates, then cleans in that fixed
//! order using the same cleaning step, revert and fallback machinery as
//! COMET. The contrast with full COMET isolates the value of re-estimating
//! every iteration: CL's ranking goes stale as the data changes.

use crate::strategy::StrategyConfig;
use comet_core::{
    Budget, CleaningEnvironment, CleaningTrace, CometConfig, EnvError, Estimator, Polluter,
    Recommender, StepAction, StepRecord,
};
use comet_jenga::ErrorType;
use rand::Rng;
use std::collections::BTreeMap;
use std::time::Instant;

/// The COMET-Light baseline.
#[derive(Debug, Clone)]
pub struct CometLight {
    /// COMET configuration used for the single estimation pass (pollution
    /// steps, combinations, Bayesian regression settings).
    pub comet: CometConfig,
}

impl CometLight {
    /// Build with a COMET config (its budget/cost fields are ignored; the
    /// [`StrategyConfig`] passed to [`run`](Self::run) governs those).
    pub fn new(comet: CometConfig) -> Self {
        CometLight { comet }
    }

    /// Run CL to completion.
    pub fn run<R: Rng>(
        &self,
        env: &mut CleaningEnvironment,
        errors: &[ErrorType],
        config: &StrategyConfig,
        rng: &mut R,
    ) -> Result<CleaningTrace, EnvError> {
        let mut budget = Budget::new(config.budget);
        let polluter = Polluter::from_config(&self.comet);
        let estimator = Estimator::new(
            self.comet.blr_degree,
            self.comet.interval,
            false, // one-shot estimation: nothing to bias-correct against
        );
        let mut recommender = Recommender::new(self.comet.use_uncertainty);
        let mut steps_done: BTreeMap<(usize, ErrorType), usize> = BTreeMap::new();

        let mut trace = CleaningTrace {
            initial_f1: env.evaluate()?,
            fully_clean_f1: Some(env.fully_cleaned_f1()?),
            ..CleaningTrace::default()
        };
        let mut current_f1 = trace.initial_f1;

        // --- The single estimation pass (this is what makes CL "light"). ---
        // comet-lint: allow(D3) — observability: iteration runtime for reports; never feeds a trace decision
        let started = Instant::now();
        let pairs = env.candidate_pairs(errors);
        let mut ranking: Vec<((usize, ErrorType), f64)> = Vec::with_capacity(pairs.len());
        for &(col, err) in &pairs {
            let variants = polluter.variants(env, col, err, rng)?;
            let estimate = estimator.estimate(env, col, err, current_f1, &variants)?;
            let cost = config.costs.next_cost(err, 0);
            let score = recommender.score(&estimate, cost);
            ranking.push(((col, err), score));
        }
        // `total_cmp` over a NaN-sanitized key (D2): a degenerate estimate
        // can score NaN, which must sink to the end, not panic the sort.
        // The sort is stable, so tied scores keep candidate-pair order.
        let key = |s: f64| if s.is_nan() { f64::NEG_INFINITY } else { s };
        ranking.sort_by(|a, b| key(b.1).total_cmp(&key(a.1)));
        let order: Vec<(usize, ErrorType)> = ranking.into_iter().map(|(p, _)| p).collect();
        trace.iteration_runtimes.push(started.elapsed());

        // --- Clean in the static order with revert/fallback. ---
        for iteration in 0..100_000usize {
            if budget.exhausted() {
                break;
            }
            let dirty = env.candidate_pairs(errors);
            if dirty.is_empty() {
                break;
            }
            let mut progressed = false;

            for &(col, err) in order.iter().filter(|p| dirty.contains(p)) {
                // Buffered (previously reverted) state re-applies for free.
                // (`buffer_take` is its own existence check — no unwrap.)
                if let Some(buffered) = recommender.buffer_take(col, err) {
                    let pre = env.snapshot(col)?;
                    env.restore(&buffered)?;
                    let f1 = env.evaluate()?;
                    if f1 >= current_f1 - 1e-12 {
                        current_f1 = f1;
                        recommender.record_post_clean_f1(col, err, f1);
                        trace.records.push(StepRecord {
                            iteration,
                            col,
                            err,
                            action: StepAction::BufferApplied,
                            cost: 0.0,
                            budget_spent: budget.spent(),
                            predicted_f1: None,
                            raw_predicted_f1: None,
                            actual_f1: f1,
                            cleaned_cells: 0,
                        });
                        trace.f1_curve.push((budget.spent(), f1));
                        progressed = true;
                        break;
                    }
                    env.restore(&pre)?;
                    recommender.buffer_store(col, err, buffered);
                    continue;
                }

                let done = steps_done.get(&(col, err)).copied().unwrap_or(0);
                let cost = config.costs.next_cost(err, done);
                if !budget.can_afford(cost) {
                    continue;
                }
                let pre = env.snapshot(col)?;
                let (ctr, cte) = env.clean_step(col, err, &[], &[], rng)?;
                if ctr + cte == 0 {
                    continue;
                }
                budget.try_spend(cost);
                *steps_done.entry((col, err)).or_default() += 1;
                let f1 = env.evaluate()?;
                recommender.record_post_clean_f1(col, err, f1);

                if f1 >= current_f1 - 1e-12 {
                    current_f1 = f1;
                    trace.records.push(StepRecord {
                        iteration,
                        col,
                        err,
                        action: StepAction::Accepted,
                        cost,
                        budget_spent: budget.spent(),
                        predicted_f1: None,
                        raw_predicted_f1: None,
                        actual_f1: f1,
                        cleaned_cells: ctr + cte,
                    });
                    trace.f1_curve.push((budget.spent(), f1));
                    progressed = true;
                    break;
                }
                let cleaned_state = env.snapshot(col)?;
                env.restore(&pre)?;
                recommender.buffer_store(col, err, cleaned_state);
                trace.records.push(StepRecord {
                    iteration,
                    col,
                    err,
                    action: StepAction::Reverted,
                    cost,
                    budget_spent: budget.spent(),
                    predicted_f1: None,
                    raw_predicted_f1: None,
                    actual_f1: f1,
                    cleaned_cells: ctr + cte,
                });
                trace.f1_curve.push((budget.spent(), current_f1));
            }

            // Fallback: commit to the historically best candidate.
            if !progressed {
                let dirty_now = env.candidate_pairs(errors);
                if let Some((col, err)) = recommender.fallback(&dirty_now) {
                    if let Some(buffered) = recommender.buffer_take(col, err) {
                        env.restore(&buffered)?;
                        let f1 = env.evaluate()?;
                        current_f1 = f1;
                        recommender.record_post_clean_f1(col, err, f1);
                        trace.records.push(StepRecord {
                            iteration,
                            col,
                            err,
                            action: StepAction::Fallback,
                            cost: 0.0,
                            budget_spent: budget.spent(),
                            predicted_f1: None,
                            raw_predicted_f1: None,
                            actual_f1: f1,
                            cleaned_cells: 0,
                        });
                        trace.f1_curve.push((budget.spent(), f1));
                        progressed = true;
                    } else {
                        let done = steps_done.get(&(col, err)).copied().unwrap_or(0);
                        let cost = config.costs.next_cost(err, done);
                        if budget.can_afford(cost) {
                            let (ctr, cte) = env.clean_step(col, err, &[], &[], rng)?;
                            if ctr + cte > 0 {
                                budget.try_spend(cost);
                                *steps_done.entry((col, err)).or_default() += 1;
                                let f1 = env.evaluate()?;
                                current_f1 = f1;
                                recommender.record_post_clean_f1(col, err, f1);
                                trace.records.push(StepRecord {
                                    iteration,
                                    col,
                                    err,
                                    action: StepAction::Fallback,
                                    cost,
                                    budget_spent: budget.spent(),
                                    predicted_f1: None,
                                    raw_predicted_f1: None,
                                    actual_f1: f1,
                                    cleaned_cells: ctr + cte,
                                });
                                trace.f1_curve.push((budget.spent(), f1));
                                progressed = true;
                            }
                        }
                    }
                }
            }

            if !progressed {
                break;
            }
        }
        trace.final_f1 = current_f1;
        Ok(trace)
    }
}

impl Default for CometLight {
    fn default() -> Self {
        CometLight::new(CometConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_support::small_env;
    use comet_ml::{Algorithm, RandomSearch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quick_comet() -> CometConfig {
        CometConfig {
            n_combinations: 1,
            search: RandomSearch { n_samples: 1, ..RandomSearch::default() },
            ..CometConfig::default()
        }
    }

    #[test]
    fn cl_runs_and_respects_budget() {
        let mut env = small_env(1, vec![(0, 0.3), (1, 0.2)], Algorithm::Knn);
        let cl = CometLight::new(quick_comet());
        let config = StrategyConfig { budget: 8.0, ..StrategyConfig::default() };
        let mut rng = StdRng::seed_from_u64(0);
        let trace = cl.run(&mut env, &[ErrorType::MissingValues], &config, &mut rng).unwrap();
        assert!(trace.total_spent() <= 8.0 + 1e-9);
        assert!(!trace.records.is_empty());
        // Exactly one estimation pass: one recommendation runtime entry.
        assert_eq!(trace.iteration_runtimes.len(), 1);
    }

    #[test]
    fn cl_fully_cleans_with_ample_budget() {
        let mut env = small_env(2, vec![(0, 0.1), (3, 0.1)], Algorithm::Knn);
        let cl = CometLight::new(quick_comet());
        let config = StrategyConfig { budget: 1_000.0, ..StrategyConfig::default() };
        let mut rng = StdRng::seed_from_u64(1);
        cl.run(&mut env, &[ErrorType::MissingValues], &config, &mut rng).unwrap();
        assert!(env.candidate_pairs(&[ErrorType::MissingValues]).is_empty());
    }
}
