//! # comet-baselines — the cleaning strategies COMET is evaluated against
//!
//! The paper's §4.5 contenders, all running against the same simulated
//! [`CleaningEnvironment`](comet_core::CleaningEnvironment) as COMET so
//! their traces are directly comparable:
//!
//! * [`RandomCleaner`] (**RR**) — uniformly random dirty feature each step;
//!   the bench harness averages five repetitions,
//! * [`FeatureImportanceCleaner`] (**FIR**) — Shapley values computed once
//!   on the dirty data rank the features; clean top-ranked until exhausted,
//! * [`CometLight`] (**CL**) — one Estimator pass up front produces a
//!   static ranking; thereafter the same cleaning step, revert and fallback
//!   machinery as COMET,
//! * [`ActiveClean`] (**AC**) — Krishnan et al.'s gradient-based record
//!   selection for convex-loss models, adapted to the feature-level budget
//!   accounting of §5.3,
//! * [`Oracle`] — the local optimum of §4.5: actually tries every candidate
//!   step and keeps the best gain/cost (upper bound).

#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

mod activeclean;
mod cl;
mod fir;
mod oracle;
mod rr;
mod strategy;

pub use activeclean::{ActiveClean, ActiveCleanConfig};
pub use cl::CometLight;
pub use fir::FeatureImportanceCleaner;
pub use oracle::Oracle;
pub use rr::RandomCleaner;
pub use strategy::{average_traces, StrategyConfig};
