//! RR — random cleaning recommendations (paper §4.5).

use crate::strategy::{execute_picks, StrategyConfig};
use comet_core::{CleaningEnvironment, CleaningTrace, EnvError};
use comet_jenga::ErrorType;
use rand::Rng;

/// Picks a uniformly random dirty `(feature, error type)` pair each step.
/// The harness runs it five times per pre-pollution setting and averages
/// (§4.5), via [`crate::average_traces`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomCleaner;

impl RandomCleaner {
    /// Run one repetition.
    pub fn run<R: Rng>(
        &self,
        env: &mut CleaningEnvironment,
        errors: &[ErrorType],
        config: &StrategyConfig,
        rng: &mut R,
    ) -> Result<CleaningTrace, EnvError> {
        execute_picks(
            env,
            errors,
            config,
            |_env, dirty, _config, _steps, rng| Ok(Some(dirty[rng.gen_range(0..dirty.len())])),
            rng,
        )
    }

    /// Run `repetitions` independent repetitions, each on its own clone of
    /// the starting environment.
    pub fn run_repeated<R: Rng>(
        &self,
        env: &CleaningEnvironment,
        errors: &[ErrorType],
        config: &StrategyConfig,
        repetitions: usize,
        rng: &mut R,
    ) -> Result<Vec<CleaningTrace>, EnvError> {
        assert!(repetitions > 0, "need at least one repetition");
        let mut traces = Vec::with_capacity(repetitions);
        for _ in 0..repetitions {
            let mut fresh = env.clone();
            traces.push(self.run(&mut fresh, errors, config, rng)?);
        }
        Ok(traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::average_traces;
    use crate::strategy::test_support::small_env;
    use comet_ml::Algorithm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_cleaner_spends_budget_and_cleans() {
        let mut env = small_env(1, vec![(0, 0.3), (1, 0.2)], Algorithm::Knn);
        let before = env.total_dirty().unwrap();
        let config = StrategyConfig { budget: 10.0, ..StrategyConfig::default() };
        let mut rng = StdRng::seed_from_u64(0);
        let trace =
            RandomCleaner.run(&mut env, &[ErrorType::MissingValues], &config, &mut rng).unwrap();
        assert!(trace.total_spent() <= 10.0 + 1e-9);
        assert!(!trace.records.is_empty());
        assert!(env.total_dirty().unwrap() < before);
    }

    #[test]
    fn repetitions_are_independent() {
        let env = small_env(2, vec![(0, 0.3)], Algorithm::Knn);
        let config = StrategyConfig { budget: 5.0, ..StrategyConfig::default() };
        let mut rng = StdRng::seed_from_u64(1);
        let traces = RandomCleaner
            .run_repeated(&env, &[ErrorType::MissingValues], &config, 3, &mut rng)
            .unwrap();
        assert_eq!(traces.len(), 3);
        // All start from the same initial F1 (clones of the same env).
        assert_eq!(traces[0].initial_f1, traces[1].initial_f1);
        let avg = average_traces(&traces, 5);
        assert_eq!(avg.len(), 6);
        assert!(avg.iter().all(|f| (0.0..=1.0).contains(f)));
    }

    #[test]
    fn stops_when_clean() {
        let mut env = small_env(3, vec![(0, 0.05)], Algorithm::Knn);
        let config = StrategyConfig { budget: 1_000.0, ..StrategyConfig::default() };
        let mut rng = StdRng::seed_from_u64(2);
        RandomCleaner.run(&mut env, &[ErrorType::MissingValues], &config, &mut rng).unwrap();
        assert!(env.is_fully_clean().unwrap());
    }
}
