//! Oracle — the local optimum of paper §4.5.
//!
//! At each step the Oracle *actually performs* every candidate cleaning
//! step (on a snapshot), measures the true F1 gain, and keeps the candidate
//! with the best gain per cost. Greedy, so not globally optimal — the paper
//! notes COMET occasionally beats it — but a strong upper bound on average.

use crate::strategy::{execute_picks, StrategyConfig};
use comet_core::{CleaningEnvironment, CleaningTrace, EnvError};
use comet_jenga::ErrorType;
use rand::Rng;

/// The greedy look-ahead oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct Oracle;

impl Oracle {
    /// Run the oracle.
    pub fn run<R: Rng>(
        &self,
        env: &mut CleaningEnvironment,
        errors: &[ErrorType],
        config: &StrategyConfig,
        rng: &mut R,
    ) -> Result<CleaningTrace, EnvError> {
        execute_picks(
            env,
            errors,
            config,
            |env, dirty, config, steps_done, rng| {
                let current = env.evaluate()?;
                let mut best: Option<((usize, ErrorType), f64)> = None;
                for &(col, err) in dirty {
                    let snap = env.snapshot(col)?;
                    let (ctr, cte) = env.clean_step(col, err, &[], &[], rng)?;
                    let candidate = if ctr + cte > 0 {
                        let f1 = env.evaluate()?;
                        let done = steps_done.get(&(col, err)).copied().unwrap_or(0);
                        // comet-lint: allow(D2) — epsilon clamp on a validated positive cost, same as Recommender::score
                        let cost = config.costs.next_cost(err, done).max(1e-6);
                        Some(((col, err), (f1 - current) / cost))
                    } else {
                        None
                    };
                    env.restore(&snap)?;
                    if let Some((pair, gain)) = candidate {
                        if best.is_none_or(|(_, g)| gain > g) {
                            best = Some((pair, gain));
                        }
                    }
                }
                Ok(best.map(|(pair, _)| pair))
            },
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_support::small_env;
    use crate::RandomCleaner;
    use comet_ml::Algorithm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn oracle_runs_within_budget() {
        let mut env = small_env(1, vec![(0, 0.3), (1, 0.2)], Algorithm::Knn);
        let config = StrategyConfig { budget: 6.0, ..StrategyConfig::default() };
        let mut rng = StdRng::seed_from_u64(0);
        let trace = Oracle.run(&mut env, &[ErrorType::MissingValues], &config, &mut rng).unwrap();
        assert!(trace.total_spent() <= 6.0 + 1e-9);
        assert!(!trace.records.is_empty());
    }

    #[test]
    fn oracle_not_worse_than_random_on_average() {
        // Across seeds, the greedy true-gain oracle should beat random
        // cleaning in mean final F1 on heavily, unevenly polluted data.
        let mut oracle_total = 0.0;
        let mut random_total = 0.0;
        for seed in 0..6 {
            let env = small_env(seed, vec![(0, 0.5), (1, 0.4), (5, 0.3)], Algorithm::Knn);
            let config = StrategyConfig { budget: 8.0, ..StrategyConfig::default() };
            let mut rng = StdRng::seed_from_u64(seed);
            let mut env_o = env.clone();
            let to =
                Oracle.run(&mut env_o, &[ErrorType::MissingValues], &config, &mut rng).unwrap();
            let mut env_r = env.clone();
            let tr = RandomCleaner
                .run(&mut env_r, &[ErrorType::MissingValues], &config, &mut rng)
                .unwrap();
            // Compare the whole trajectory, not just the endpoint — the
            // oracle's advantage shows in how *fast* F1 recovers.
            oracle_total += to.f1_series(8).iter().sum::<f64>();
            random_total += tr.f1_series(8).iter().sum::<f64>();
        }
        // Greedy look-ahead should not lose to random by more than noise.
        // On the tiny quick-mode environments used in tests the KNN metric
        // is noisy enough that a small deficit is expected occasionally, so
        // bound the loss relative to the random trajectory (a collapse of
        // the oracle would still trip this).
        assert!(
            oracle_total >= random_total * 0.95,
            "oracle {oracle_total} vs random {random_total}"
        );
    }

    #[test]
    fn oracle_leaves_environment_clean_with_ample_budget() {
        let mut env = small_env(4, vec![(0, 0.1)], Algorithm::Knn);
        let config = StrategyConfig { budget: 1_000.0, ..StrategyConfig::default() };
        let mut rng = StdRng::seed_from_u64(3);
        Oracle.run(&mut env, &[ErrorType::MissingValues], &config, &mut rng).unwrap();
        assert!(env.is_fully_clean().unwrap());
    }
}
