//! # comet-bayes — Bayesian regression and statistics substrate
//!
//! COMET's Estimator (paper §3.2) fits a Bayesian regression through the
//! (pollution level → F1 score) measurements and extrapolates one cleaning
//! step backwards; the *width of the predictive credible interval* is the
//! uncertainty `U(f)` used in the Recommender's score (§3.3). This crate
//! provides that machinery from scratch:
//!
//! * [`BayesianLinearRegression`] — conjugate Normal–Inverse-Gamma linear
//!   regression with closed-form posterior and Student-t predictive
//!   distribution (mean + credible interval),
//! * [`PolynomialBasis`] — feature expansion for curved degradation trends,
//! * [`Ols`] — ordinary least squares (cross-check and baseline),
//! * [`StudentT`] — CDF/quantiles via the regularized incomplete beta
//!   function (Lanczos log-gamma + Lentz continued fraction),
//! * [`Hypergeometric`] — the distribution the paper uses (§3.1) to argue
//!   that polluting already-dirty cells is unlikely at low dirt ratios,
//! * [`RunningStats`] — Welford online mean/variance,
//! * small dense linear algebra (Cholesky solve) shared by the above.

mod blr;
mod hypergeom;
mod linalg;
mod ols;
mod poly;
mod running;
mod special;
mod student_t;

pub use blr::{BayesError, BayesianLinearRegression, BlrConfig, Posterior, Prediction};
pub use hypergeom::Hypergeometric;
pub use linalg::{cholesky_solve, CholeskyError};
pub use ols::Ols;
pub use poly::PolynomialBasis;
pub use running::RunningStats;
pub use special::{ln_gamma, regularized_incomplete_beta};
pub use student_t::StudentT;
