//! Welford online mean/variance accumulator.
//!
//! The Estimator's bias correction (paper §3.3, last paragraph) maintains a
//! running mean of prediction discrepancies per feature; this accumulator
//! does so in O(1) memory and numerically stably.

/// Online mean and variance over a stream of `f64` observations.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n − 1 denominator; 0 when n < 2).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &data {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((rs.variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let mut rs = RunningStats::new();
        assert_eq!(rs.mean(), 0.0);
        assert_eq!(rs.variance(), 0.0);
        rs.push(3.5);
        assert_eq!(rs.mean(), 3.5);
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(rs.std(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let (a_data, b_data) = ([1.0, 2.0, 3.0], [10.0, 20.0, 30.0, 40.0]);
        let mut a = RunningStats::new();
        for &x in &a_data {
            a.push(x);
        }
        let mut b = RunningStats::new();
        for &x in &b_data {
            b.push(x);
        }
        let mut merged = a;
        merged.merge(&b);

        let mut seq = RunningStats::new();
        for &x in a_data.iter().chain(&b_data) {
            seq.push(x);
        }
        assert_eq!(merged.count(), seq.count());
        assert!((merged.mean() - seq.mean()).abs() < 1e-12);
        assert!((merged.variance() - seq.variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn stable_under_large_offsets() {
        let mut rs = RunningStats::new();
        for i in 0..1000 {
            rs.push(1e9 + (i % 5) as f64);
        }
        assert!((rs.variance() - 2.002) < 0.01);
    }
}
