//! Hypergeometric distribution.
//!
//! Paper §3.1: the Polluter may accidentally overwrite already-dirty cells.
//! Drawing `n` cells to pollute from a column with `population` cells of
//! which `successes` are already dirty, the number of dirty cells hit is
//! hypergeometric. COMET uses this to argue the overlap is negligible when
//! dirt is sparse; we expose the distribution so the Polluter can quantify
//! the expected shortfall of a pollution step.

use crate::special::ln_gamma;

/// Hypergeometric(N = population, K = successes, n = draws).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypergeometric {
    population: u64,
    successes: u64,
    draws: u64,
}

impl Hypergeometric {
    /// Create the distribution; requires `successes ≤ population` and
    /// `draws ≤ population`.
    pub fn new(population: u64, successes: u64, draws: u64) -> Self {
        assert!(successes <= population, "successes must be ≤ population");
        assert!(draws <= population, "draws must be ≤ population");
        Hypergeometric { population, successes, draws }
    }

    /// Smallest support value: `max(0, draws + successes − population)`.
    pub fn min_k(self) -> u64 {
        (self.draws + self.successes).saturating_sub(self.population)
    }

    /// Largest support value: `min(draws, successes)`.
    pub fn max_k(self) -> u64 {
        self.draws.min(self.successes)
    }

    /// Probability of drawing exactly `k` successes.
    pub fn pmf(self, k: u64) -> f64 {
        if k < self.min_k() || k > self.max_k() {
            return 0.0;
        }
        (ln_choose(self.successes, k) + ln_choose(self.population - self.successes, self.draws - k)
            - ln_choose(self.population, self.draws))
        .exp()
    }

    /// Probability of drawing at most `k` successes.
    pub fn cdf(self, k: u64) -> f64 {
        if k >= self.max_k() {
            return 1.0;
        }
        let mut total = 0.0;
        for i in self.min_k()..=k {
            total += self.pmf(i);
        }
        // comet-lint: allow(D2) — CDF clamp to 1.0 over a finite pmf sum
        total.min(1.0)
    }

    /// Expected number of successes drawn: `n·K/N`.
    pub fn mean(self) -> f64 {
        if self.population == 0 {
            return 0.0;
        }
        self.draws as f64 * self.successes as f64 / self.population as f64
    }

    /// Probability that *no* already-dirty cell is hit (`k = 0`) — the
    /// paper's "pollution lands on clean cells" event.
    pub fn p_all_clean(self) -> f64 {
        self.pmf(0)
    }
}

/// `ln C(n, k)` via log-gamma; 0 for out-of-range `k`.
fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let h = Hypergeometric::new(50, 10, 12);
        let total: f64 = (0..=12).map(|k| h.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn known_small_case() {
        // Urn: N=10, K=4 dirty, draw n=3. P(k=0) = C(6,3)/C(10,3) = 20/120.
        let h = Hypergeometric::new(10, 4, 3);
        assert!((h.pmf(0) - 20.0 / 120.0).abs() < 1e-12);
        // P(k=2) = C(4,2)C(6,1)/C(10,3) = 36/120.
        assert!((h.pmf(2) - 36.0 / 120.0).abs() < 1e-12);
        assert!((h.mean() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn support_bounds() {
        // N=10, K=8, n=5 → min successes drawn = 3.
        let h = Hypergeometric::new(10, 8, 5);
        assert_eq!(h.min_k(), 3);
        assert_eq!(h.max_k(), 5);
        assert_eq!(h.pmf(2), 0.0);
        assert_eq!(h.pmf(6), 0.0);
    }

    #[test]
    fn cdf_monotone_and_complete() {
        let h = Hypergeometric::new(30, 7, 10);
        let mut prev = 0.0;
        for k in 0..=7 {
            let c = h.cdf(k);
            assert!(c >= prev - 1e-15);
            prev = c;
        }
        assert!((h.cdf(7) - 1.0).abs() < 1e-12);
        assert_eq!(h.cdf(100), 1.0);
    }

    #[test]
    fn sparse_dirt_rarely_hit() {
        // The paper's claim: with 1% dirt, a 1% pollution step mostly hits
        // clean cells. N=1000, K=10 dirty, n=10 draws.
        let h = Hypergeometric::new(1000, 10, 10);
        assert!(h.p_all_clean() > 0.90, "p = {}", h.p_all_clean());
        assert!(h.mean() < 0.2);
    }

    #[test]
    fn heavy_dirt_often_hit() {
        let h = Hypergeometric::new(100, 80, 10);
        assert!(h.p_all_clean() < 1e-6);
        assert_eq!(h.min_k(), 0);
    }

    #[test]
    #[should_panic(expected = "successes")]
    fn invalid_parameters_panic() {
        Hypergeometric::new(5, 6, 1);
    }

    #[test]
    fn degenerate_population() {
        let h = Hypergeometric::new(0, 0, 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.pmf(0), 1.0);
    }
}
