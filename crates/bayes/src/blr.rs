//! Conjugate Bayesian linear regression (Normal–Inverse-Gamma prior).
//!
//! Model: `y = Xw + ε`, `ε ~ N(0, σ²)`, with conjugate prior
//! `w | σ² ~ N(m₀, σ²V₀)`, `σ² ~ InvGamma(a₀, b₀)`.
//!
//! The posterior is again Normal–Inverse-Gamma and the posterior predictive
//! at a new input `x*` is a scaled/shifted Student-t — which is exactly what
//! COMET's Estimator needs: a point prediction for the F1 score after the
//! next cleaning step *plus* a credible interval whose width becomes the
//! uncertainty penalty `U(f)` in the Recommender score (paper Eq. 4).

use crate::linalg::{cholesky_factor, cholesky_solve, spd_inverse, CholeskyError};
use crate::poly::PolynomialBasis;
use crate::student_t::StudentT;
use std::fmt;

/// Condition-number estimate above which a fit is declared [`BayesError::Degenerate`].
const CONDITION_LIMIT: f64 = 1e12;

/// Failure of a regression fit or prediction in this crate (shared by the
/// Bayesian model and the OLS cross-check).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BayesError {
    /// The regularized precision matrix `V₀⁻¹ + XᵀX` failed to factor.
    Cholesky(CholeskyError),
    /// The design is numerically near-singular: the condition estimate of
    /// the precision matrix exceeds [`CONDITION_LIMIT`], so the posterior
    /// would be dominated by floating-point noise (NaN-adjacent).
    Degenerate {
        /// The offending condition estimate.
        condition: f64,
    },
    /// An observation was NaN or infinite.
    NonFinite,
    /// `predict` was called before a successful `fit`.
    Unfitted,
}

impl fmt::Display for BayesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BayesError::Cholesky(e) => write!(f, "precision factorization failed: {e}"),
            BayesError::Degenerate { condition } => {
                write!(f, "near-singular design: condition estimate {condition:.3e} > 1e12")
            }
            BayesError::NonFinite => write!(f, "non-finite observation in regression input"),
            BayesError::Unfitted => write!(f, "predict called before a successful fit"),
        }
    }
}

impl std::error::Error for BayesError {}

impl From<CholeskyError> for BayesError {
    fn from(e: CholeskyError) -> Self {
        BayesError::Cholesky(e)
    }
}

/// Hyperparameters of the Normal–Inverse-Gamma prior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlrConfig {
    /// Polynomial degree of the basis applied to the scalar input.
    pub degree: usize,
    /// Prior weight variance scale: `V₀ = prior_scale · I`.
    pub prior_scale: f64,
    /// Inverse-gamma shape `a₀`.
    pub a0: f64,
    /// Inverse-gamma rate `b₀`.
    pub b0: f64,
    /// Credible-interval level for [`Prediction::lower`]/[`Prediction::upper`].
    pub interval: f64,
}

impl Default for BlrConfig {
    fn default() -> Self {
        // Weakly informative: wide weight prior, a noise prior that admits
        // both near-deterministic and noisy F1-vs-pollution trends.
        BlrConfig { degree: 1, prior_scale: 100.0, a0: 1.0, b0: 1e-4, interval: 0.95 }
    }
}

/// Posterior parameters after conditioning on data.
#[derive(Debug, Clone, PartialEq)]
pub struct Posterior {
    /// Posterior mean of the weights, length `d`.
    pub mean: Vec<f64>,
    /// Posterior covariance scale `Vₙ` (row-major `d×d`); the weight
    /// covariance is `σ² Vₙ`.
    pub cov_scale: Vec<f64>,
    /// Posterior inverse-gamma shape `aₙ`.
    pub a: f64,
    /// Posterior inverse-gamma rate `bₙ`.
    pub b: f64,
    /// Number of observations conditioned on.
    pub n: usize,
}

/// A posterior-predictive summary at one input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predictive mean.
    pub mean: f64,
    /// Predictive standard deviation (Student-t scale × √(ν/(ν−2)) is the
    /// true SD for ν > 2; this field stores the *scale* parameter, which is
    /// what interval construction uses).
    pub scale: f64,
    /// Lower bound of the central credible interval.
    pub lower: f64,
    /// Upper bound of the central credible interval.
    pub upper: f64,
}

impl Prediction {
    /// Interval width — the paper's uncertainty `U(f)`.
    pub fn uncertainty(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Bayesian linear regression on a scalar input through a polynomial basis.
#[derive(Debug, Clone)]
pub struct BayesianLinearRegression {
    config: BlrConfig,
    basis: PolynomialBasis,
    posterior: Option<Posterior>,
}

impl BayesianLinearRegression {
    /// Create an unfitted model.
    pub fn new(config: BlrConfig) -> Self {
        let basis = PolynomialBasis::new(config.degree);
        BayesianLinearRegression { config, basis, posterior: None }
    }

    /// The configuration.
    pub fn config(&self) -> &BlrConfig {
        &self.config
    }

    /// Fit the posterior from paired observations. Requires at least one
    /// point; with fewer points than basis dimensions the prior regularizes.
    ///
    /// Fails with [`BayesError::NonFinite`] on NaN/∞ inputs and with
    /// [`BayesError::Degenerate`] when the regularized precision matrix is so
    /// ill-conditioned that the posterior would be numerical noise (e.g. a
    /// constant design column under an effectively flat prior).
    pub fn fit(&mut self, xs: &[f64], ys: &[f64]) -> Result<&Posterior, BayesError> {
        assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
        assert!(!xs.is_empty(), "need at least one observation");
        if xs.iter().chain(ys).any(|v| !v.is_finite()) {
            return Err(BayesError::NonFinite);
        }
        let d = self.basis.dim();
        let n = xs.len();

        // Precision matrix: V₀⁻¹ + XᵀX, with V₀ = prior_scale · I.
        let prior_precision = 1.0 / self.config.prior_scale;
        let mut precision = vec![0.0; d * d];
        for i in 0..d {
            precision[i * d + i] = prior_precision;
        }
        let mut xty = vec![0.0; d];
        let mut yty = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let phi = self.basis.expand(x);
            for i in 0..d {
                xty[i] += phi[i] * y;
                for j in 0..d {
                    precision[i * d + j] += phi[i] * phi[j];
                }
            }
            yty += y * y;
        }

        // Condition estimate from the Cholesky factor's diagonal: for
        // `L Lᵀ = A`, `(max lᵢᵢ / min lᵢᵢ)²` lower-bounds `cond₂(A)`. A huge
        // value means XᵀX is rank-deficient beyond what the prior can
        // regularize — solving would amplify rounding noise into the
        // posterior, so the fit is rejected instead.
        let factor = cholesky_factor(&precision, d)?;
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for i in 0..d {
            let pivot = factor[i * d + i];
            lo = lo.min(pivot);
            hi = hi.max(pivot);
        }
        let condition = (hi / lo) * (hi / lo);
        if !condition.is_finite() || condition > CONDITION_LIMIT {
            return Err(BayesError::Degenerate { condition });
        }

        // mₙ = Vₙ Xᵀy  (prior mean is zero).
        let mean = cholesky_solve(&precision, d, &xty)?;
        let cov_scale = spd_inverse(&precision, d)?;

        // bₙ = b₀ + ½(yᵀy − mₙᵀ(V₀⁻¹ + XᵀX)mₙ); guard tiny negatives from
        // floating-point cancellation.
        let mut quad = 0.0;
        for i in 0..d {
            for j in 0..d {
                quad += mean[i] * precision[i * d + j] * mean[j];
            }
        }
        let a = self.config.a0 + n as f64 / 2.0;
        // comet-lint: allow(D2) — positivity floor for the inverse-gamma rate parameter
        let b = (self.config.b0 + 0.5 * (yty - quad)).max(self.config.b0 * 1e-6).max(1e-12);

        Ok(self.posterior.insert(Posterior { mean, cov_scale, a, b, n }))
    }

    /// The fitted posterior, if [`fit`](Self::fit) has been called.
    pub fn posterior(&self) -> Option<&Posterior> {
        self.posterior.as_ref()
    }

    /// Posterior-predictive summary at input `x`. Fails with
    /// [`BayesError::Unfitted`] before a successful [`fit`](Self::fit).
    pub fn predict(&self, x: f64) -> Result<Prediction, BayesError> {
        let post = self.posterior.as_ref().ok_or(BayesError::Unfitted)?;
        let d = self.basis.dim();
        let phi = self.basis.expand(x);

        let mut mean = 0.0;
        #[allow(clippy::needless_range_loop)]
        for i in 0..d {
            mean += phi[i] * post.mean[i];
        }
        // x*ᵀ Vₙ x*.
        let mut xvx = 0.0;
        for i in 0..d {
            for j in 0..d {
                xvx += phi[i] * post.cov_scale[i * d + j] * phi[j];
            }
        }
        let scale = ((post.b / post.a) * (1.0 + xvx)).sqrt();
        let t = StudentT::new(2.0 * post.a);
        let half = t.interval_half_width(self.config.interval) * scale;
        Ok(Prediction { mean, scale, lower: mean - half, upper: mean + half })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data(n: usize, slope: f64, intercept: f64, noise: f64) -> (Vec<f64>, Vec<f64>) {
        // Deterministic pseudo-noise so tests don't need rand.
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| intercept + slope * x + noise * ((i as f64 * 12.9898).sin()))
            .collect();
        (xs, ys)
    }

    #[test]
    fn recovers_noiseless_line() {
        let (xs, ys) = line_data(20, -0.5, 0.9, 0.0);
        let mut blr = BayesianLinearRegression::new(BlrConfig::default());
        let post = blr.fit(&xs, &ys).unwrap().clone();
        // The weak prior shrinks estimates slightly toward zero.
        assert!((post.mean[0] - 0.9).abs() < 1e-2, "intercept {}", post.mean[0]);
        assert!((post.mean[1] + 0.5).abs() < 2e-2, "slope {}", post.mean[1]);
        let p = blr.predict(0.5).unwrap();
        assert!((p.mean - 0.65).abs() < 1e-2);
        // Prior shrinkage leaves small residuals even on noiseless data, so
        // the interval is narrow but not degenerate.
        assert!(p.uncertainty() < 0.15, "noiseless fit should be confident");
    }

    #[test]
    fn noisy_fit_has_wider_interval() {
        let (xs, ys) = line_data(20, -0.5, 0.9, 0.0);
        let (_, ys_noisy) = line_data(20, -0.5, 0.9, 0.1);
        let mut clean = BayesianLinearRegression::new(BlrConfig::default());
        clean.fit(&xs, &ys).unwrap();
        let mut noisy = BayesianLinearRegression::new(BlrConfig::default());
        noisy.fit(&xs, &ys_noisy).unwrap();
        assert!(
            noisy.predict(0.5).unwrap().uncertainty() > clean.predict(0.5).unwrap().uncertainty(),
            "noise must widen the credible interval"
        );
    }

    #[test]
    fn interval_shrinks_with_more_data() {
        let (xs_small, ys_small) = line_data(4, 1.0, 0.0, 0.05);
        let (xs_big, ys_big) = line_data(64, 1.0, 0.0, 0.05);
        let mut small = BayesianLinearRegression::new(BlrConfig::default());
        small.fit(&xs_small, &ys_small).unwrap();
        let mut big = BayesianLinearRegression::new(BlrConfig::default());
        big.fit(&xs_big, &ys_big).unwrap();
        assert!(
            big.predict(0.5).unwrap().uncertainty() < small.predict(0.5).unwrap().uncertainty()
        );
    }

    #[test]
    fn extrapolation_is_less_certain_than_interpolation() {
        let (xs, ys) = line_data(16, -1.0, 1.0, 0.02);
        let mut blr = BayesianLinearRegression::new(BlrConfig::default());
        blr.fit(&xs, &ys).unwrap();
        let inside = blr.predict(0.5).unwrap().uncertainty();
        let outside = blr.predict(3.0).unwrap().uncertainty();
        assert!(outside > inside, "extrapolation {outside} <= interpolation {inside}");
    }

    #[test]
    fn quadratic_basis_captures_curvature() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64 / 30.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 - 0.3 * x - 0.5 * x * x).collect();
        let mut blr =
            BayesianLinearRegression::new(BlrConfig { degree: 2, ..BlrConfig::default() });
        blr.fit(&xs, &ys).unwrap();
        let p = blr.predict(0.8).unwrap();
        let want = 1.0 - 0.3 * 0.8 - 0.5 * 0.64;
        assert!((p.mean - want).abs() < 1e-2, "{} vs {want}", p.mean);
    }

    #[test]
    fn single_point_falls_back_to_prior_shrinkage() {
        let mut blr = BayesianLinearRegression::new(BlrConfig::default());
        blr.fit(&[0.0], &[0.7]).unwrap();
        let p = blr.predict(0.0).unwrap();
        // With one point the prediction is pulled toward it but the interval
        // must be wide.
        assert!((p.mean - 0.7).abs() < 0.1);
        assert!(p.uncertainty() > 0.1);
    }

    #[test]
    fn posterior_bookkeeping() {
        let (xs, ys) = line_data(10, 1.0, 0.0, 0.0);
        let mut blr = BayesianLinearRegression::new(BlrConfig::default());
        assert!(blr.posterior().is_none());
        let post = blr.fit(&xs, &ys).unwrap();
        assert_eq!(post.n, 10);
        assert!((post.a - (1.0 + 5.0)).abs() < 1e-12);
        assert!(post.b > 0.0);
    }

    #[test]
    fn predict_before_fit_is_a_typed_error() {
        let blr = BayesianLinearRegression::new(BlrConfig::default());
        assert_eq!(blr.predict(0.0), Err(BayesError::Unfitted));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_inputs_panic() {
        BayesianLinearRegression::new(BlrConfig::default()).fit(&[0.0, 1.0], &[0.0]).unwrap();
    }

    #[test]
    fn constant_column_under_flat_prior_is_degenerate() {
        // A constant design (every observation at x = 2) makes XᵀX rank-1;
        // with an effectively flat prior the regularizer no longer hides
        // that, so the fit must refuse rather than emit a noise posterior.
        let xs = [2.0; 8];
        let ys = [0.5, 0.6, 0.4, 0.55, 0.5, 0.45, 0.6, 0.5];
        let mut blr =
            BayesianLinearRegression::new(BlrConfig { prior_scale: 1e12, ..BlrConfig::default() });
        match blr.fit(&xs, &ys) {
            Err(BayesError::Degenerate { condition }) => {
                assert!(condition > 1e12, "condition estimate {condition} too small")
            }
            other => panic!("expected Degenerate, got {other:?}"),
        }
        assert!(blr.posterior().is_none(), "a rejected fit must not leave a posterior");
        // The default prior regularizes the same design into a valid (if
        // heavily shrunk) posterior — degeneracy is about conditioning, not
        // about constant inputs per se.
        let mut regularized = BayesianLinearRegression::new(BlrConfig::default());
        assert!(regularized.fit(&xs, &ys).is_ok());
    }

    #[test]
    fn non_finite_observations_rejected() {
        let mut blr = BayesianLinearRegression::new(BlrConfig::default());
        assert_eq!(blr.fit(&[0.0, f64::NAN], &[0.1, 0.2]), Err(BayesError::NonFinite));
        assert_eq!(blr.fit(&[0.0, 1.0], &[0.1, f64::INFINITY]), Err(BayesError::NonFinite));
    }

    #[test]
    fn blr_error_display_is_informative() {
        assert!(BayesError::Degenerate { condition: 5e13 }.to_string().contains("near-singular"));
        assert!(BayesError::NonFinite.to_string().contains("non-finite"));
        let wrapped = BayesError::from(CholeskyError::NotPositiveDefinite { pivot: 0 });
        assert!(wrapped.to_string().contains("factorization failed"));
    }

    #[test]
    fn prediction_uncertainty_is_interval_width() {
        let (xs, ys) = line_data(12, 0.0, 0.5, 0.01);
        let mut blr = BayesianLinearRegression::new(BlrConfig::default());
        blr.fit(&xs, &ys).unwrap();
        let p = blr.predict(0.2).unwrap();
        assert!((p.uncertainty() - (p.upper - p.lower)).abs() < 1e-15);
        assert!(p.lower < p.mean && p.mean < p.upper);
    }
}
