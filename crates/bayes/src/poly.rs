//! Polynomial basis expansion for one-dimensional regression inputs.

/// Maps a scalar input `x` to the feature vector `[1, x, x², …, x^degree]`.
///
/// The Estimator regresses F1 score on pollution level; a degree-1 or
/// degree-2 basis captures the (often gently curved) degradation trends the
/// paper's Figure 1 illustrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolynomialBasis {
    degree: usize,
}

impl PolynomialBasis {
    /// Create a basis of the given degree (≥ 0; degree 0 is intercept-only).
    pub fn new(degree: usize) -> Self {
        PolynomialBasis { degree }
    }

    /// Number of output features (`degree + 1`).
    pub fn dim(self) -> usize {
        self.degree + 1
    }

    /// The polynomial degree.
    pub fn degree(self) -> usize {
        self.degree
    }

    /// Expand a single input.
    pub fn expand(self, x: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim());
        let mut p = 1.0;
        for _ in 0..=self.degree {
            out.push(p);
            p *= x;
        }
        out
    }

    /// Expand many inputs into a row-major design matrix (`n × dim`).
    pub fn design_matrix(self, xs: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(xs.len() * self.dim());
        for &x in xs {
            out.extend_from_slice(&self.expand(x));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expand_degree_two() {
        let basis = PolynomialBasis::new(2);
        assert_eq!(basis.dim(), 3);
        assert_eq!(basis.expand(3.0), vec![1.0, 3.0, 9.0]);
        assert_eq!(basis.expand(0.0), vec![1.0, 0.0, 0.0]);
        assert_eq!(basis.expand(-2.0), vec![1.0, -2.0, 4.0]);
    }

    #[test]
    fn degree_zero_is_intercept_only() {
        let basis = PolynomialBasis::new(0);
        assert_eq!(basis.expand(42.0), vec![1.0]);
    }

    #[test]
    fn design_matrix_layout() {
        let basis = PolynomialBasis::new(1);
        let m = basis.design_matrix(&[2.0, 5.0]);
        assert_eq!(m, vec![1.0, 2.0, 1.0, 5.0]);
    }
}
