//! Ordinary least squares on a polynomial basis — the frequentist
//! counterpart of [`crate::BayesianLinearRegression`], used as a numerical
//! cross-check and by ablation benchmarks (Score without uncertainty).

use crate::blr::BayesError;
use crate::linalg::cholesky_solve;
use crate::poly::PolynomialBasis;

/// Ordinary least squares fit of `y` on `[1, x, …, x^degree]` with a small
/// ridge term for numerical stability.
#[derive(Debug, Clone)]
pub struct Ols {
    basis: PolynomialBasis,
    ridge: f64,
    weights: Option<Vec<f64>>,
}

impl Ols {
    /// Create an unfitted model of the given polynomial degree.
    pub fn new(degree: usize) -> Self {
        Ols { basis: PolynomialBasis::new(degree), ridge: 1e-9, weights: None }
    }

    /// Fit the weights by solving the (ridge-stabilized) normal equations.
    pub fn fit(&mut self, xs: &[f64], ys: &[f64]) -> Result<&[f64], BayesError> {
        assert_eq!(xs.len(), ys.len(), "xs and ys must have equal length");
        assert!(!xs.is_empty(), "need at least one observation");
        let d = self.basis.dim();
        let mut xtx = vec![0.0; d * d];
        let mut xty = vec![0.0; d];
        for (&x, &y) in xs.iter().zip(ys) {
            let phi = self.basis.expand(x);
            for i in 0..d {
                xty[i] += phi[i] * y;
                for j in 0..d {
                    xtx[i * d + j] += phi[i] * phi[j];
                }
            }
        }
        for i in 0..d {
            xtx[i * d + i] += self.ridge;
        }
        let w = cholesky_solve(&xtx, d, &xty)?;
        Ok(self.weights.insert(w))
    }

    /// Fitted weights (intercept first).
    pub fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }

    /// Predict at `x`. Fails with [`BayesError::Unfitted`] before a
    /// successful [`fit`](Self::fit).
    pub fn predict(&self, x: f64) -> Result<f64, BayesError> {
        let w = self.weights.as_ref().ok_or(BayesError::Unfitted)?;
        Ok(self.basis.expand(x).iter().zip(w).map(|(phi, wi)| phi * wi).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0]; // y = 1 + 2x
        let mut ols = Ols::new(1);
        let w = ols.fit(&xs, &ys).unwrap().to_vec();
        assert!((w[0] - 1.0).abs() < 1e-6);
        assert!((w[1] - 2.0).abs() < 1e-6);
        assert!((ols.predict(10.0).unwrap() - 21.0).abs() < 1e-5);
    }

    #[test]
    fn least_squares_of_inconsistent_data() {
        // y = x with one outlier pulls slope below 1 slightly; the residual
        // sum must be minimal — check against hand-derived solution for
        // xs = [0,1,2], ys = [0,1,5]: slope = 2.5, intercept = -1/2... compute:
        // Sxx=5, Sx=3, Sy=6, Sxy=11, n=3 → slope=(3*11-3*6)/(3*5-9)=15/6=2.5,
        // intercept=(6-2.5*3)/3=-0.5.
        let mut ols = Ols::new(1);
        ols.fit(&[0.0, 1.0, 2.0], &[0.0, 1.0, 5.0]).unwrap();
        let w = ols.weights().unwrap();
        assert!((w[1] - 2.5).abs() < 1e-6);
        assert!((w[0] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn agrees_with_blr_mean_for_weak_prior() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 - 0.1 * x).collect();
        let mut ols = Ols::new(1);
        ols.fit(&xs, &ys).unwrap();
        let mut blr = crate::BayesianLinearRegression::new(crate::BlrConfig {
            prior_scale: 1e6,
            ..crate::BlrConfig::default()
        });
        blr.fit(&xs, &ys).unwrap();
        for x in [0.0, 5.0, 20.0] {
            assert!((ols.predict(x).unwrap() - blr.predict(x).unwrap().mean).abs() < 1e-4);
        }
    }

    #[test]
    fn predict_unfitted_is_a_typed_error() {
        assert_eq!(Ols::new(1).predict(0.0), Err(BayesError::Unfitted));
    }
}
