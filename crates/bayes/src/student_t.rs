//! Student-t distribution: PDF, CDF, and quantiles.

use crate::special::{ln_gamma, regularized_incomplete_beta};

/// Student-t distribution with `nu` degrees of freedom (location 0, scale 1).
///
/// The predictive distribution of a conjugate Bayesian linear regression is a
/// scaled/shifted Student-t; [`crate::BayesianLinearRegression`] uses
/// [`StudentT::quantile`] to build credible intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    nu: f64,
}

impl StudentT {
    /// Create a Student-t distribution with `nu > 0` degrees of freedom.
    pub fn new(nu: f64) -> Self {
        assert!(nu > 0.0, "degrees of freedom must be positive, got {nu}");
        StudentT { nu }
    }

    /// Degrees of freedom.
    pub fn nu(self) -> f64 {
        self.nu
    }

    /// Probability density at `t`.
    pub fn pdf(self, t: f64) -> f64 {
        let nu = self.nu;
        let ln_norm = ln_gamma((nu + 1.0) / 2.0)
            - ln_gamma(nu / 2.0)
            - 0.5 * (nu * std::f64::consts::PI).ln();
        (ln_norm - (nu + 1.0) / 2.0 * (1.0 + t * t / nu).ln()).exp()
    }

    /// Cumulative distribution function at `t`, via the identity
    /// `P(T ≤ t) = 1 − I_x(ν/2, 1/2) / 2` with `x = ν/(ν + t²)` for `t > 0`.
    pub fn cdf(self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        let x = self.nu / (self.nu + t * t);
        let tail = 0.5 * regularized_incomplete_beta(self.nu / 2.0, 0.5, x);
        if t > 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    /// Quantile (inverse CDF) at probability `p ∈ (0, 1)`, computed by
    /// bisection on the CDF (the CDF is smooth and strictly increasing, so
    /// 200 bisections reach ~1e-12 absolute precision on the bracketed
    /// interval).
    pub fn quantile(self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");
        if (p - 0.5).abs() < 1e-15 {
            return 0.0;
        }
        // Bracket: expand until the CDF straddles p.
        let mut lo = -1.0;
        let mut hi = 1.0;
        while self.cdf(lo) > p {
            lo *= 2.0;
            if lo < -1e12 {
                break;
            }
        }
        while self.cdf(hi) < p {
            hi *= 2.0;
            if hi > 1e12 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-13 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Two-sided central interval half-width for confidence `level`
    /// (e.g. 0.95 → the 97.5 % quantile).
    pub fn interval_half_width(self, level: f64) -> f64 {
        assert!(level > 0.0 && level < 1.0, "level must be in (0,1)");
        self.quantile(0.5 + level / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_symmetry() {
        let t = StudentT::new(5.0);
        for x in [0.5, 1.0, 2.3] {
            assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-12);
        }
        assert_eq!(t.cdf(0.0), 0.5);
    }

    #[test]
    fn cdf_matches_cauchy_for_nu_1() {
        // T(1) is Cauchy: CDF = 1/2 + atan(t)/π.
        let t = StudentT::new(1.0);
        for x in [-3.0f64, -1.0, 0.0, 0.5, 2.0] {
            let want = 0.5 + x.atan() / std::f64::consts::PI;
            assert!((t.cdf(x) - want).abs() < 1e-10, "cdf({x})");
        }
    }

    #[test]
    fn cdf_approaches_normal_for_large_nu() {
        // Φ(1.96) ≈ 0.975.
        let t = StudentT::new(1e6);
        assert!((t.cdf(1.959964) - 0.975).abs() < 1e-4);
    }

    #[test]
    fn known_critical_values() {
        // Classic t-table: t_{0.975, 10} = 2.228, t_{0.975, 2} = 4.303.
        assert!((StudentT::new(10.0).quantile(0.975) - 2.2281).abs() < 1e-3);
        assert!((StudentT::new(2.0).quantile(0.975) - 4.3027).abs() < 1e-3);
        assert!((StudentT::new(1.0).quantile(0.975) - 12.7062).abs() < 1e-3);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let t = StudentT::new(7.0);
        for p in [0.01, 0.2, 0.5, 0.77, 0.99] {
            let q = t.quantile(p);
            assert!((t.cdf(q) - p).abs() < 1e-10, "p={p}");
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Trapezoid over [-50, 50] for ν = 4.
        let t = StudentT::new(4.0);
        let n = 20_000;
        let (a, b) = (-50.0, 50.0);
        let h = (b - a) / n as f64;
        let mut total = 0.5 * (t.pdf(a) + t.pdf(b));
        for i in 1..n {
            total += t.pdf(a + i as f64 * h);
        }
        total *= h;
        assert!((total - 1.0).abs() < 1e-4, "integral {total}");
    }

    #[test]
    fn interval_half_width_95() {
        let hw = StudentT::new(10.0).interval_half_width(0.95);
        assert!((hw - 2.2281).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dof_rejected() {
        StudentT::new(0.0);
    }

    #[test]
    #[should_panic(expected = "p in (0,1)")]
    fn quantile_rejects_bad_p() {
        StudentT::new(3.0).quantile(1.0);
    }
}
