//! Tiny dense linear algebra: Cholesky factorization and solves for the
//! symmetric positive-definite systems that arise in (Bayesian) least
//! squares. Matrices are row-major `Vec<f64>` with explicit dimension — the
//! systems here are d×d with d ≤ ~5 (polynomial basis), so simplicity wins
//! over cleverness.

use std::fmt;

/// Failure of a Cholesky factorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CholeskyError {
    /// The matrix is not positive definite (or numerically singular).
    NotPositiveDefinite { pivot: usize },
    /// Dimension mismatch between the matrix and right-hand side.
    DimensionMismatch,
}

impl fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CholeskyError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix not positive definite at pivot {pivot}")
            }
            CholeskyError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Solve `A x = b` for symmetric positive-definite `A` (row-major, `d×d`).
/// Returns the solution vector.
pub fn cholesky_solve(a: &[f64], d: usize, b: &[f64]) -> Result<Vec<f64>, CholeskyError> {
    if a.len() != d * d || b.len() != d {
        return Err(CholeskyError::DimensionMismatch);
    }
    let l = cholesky_factor(a, d)?;
    // Forward substitution: L y = b.
    let mut y = vec![0.0; d];
    for i in 0..d {
        let mut sum = b[i];
        for j in 0..i {
            sum -= l[i * d + j] * y[j];
        }
        y[i] = sum / l[i * d + i];
    }
    // Backward substitution: Lᵀ x = y.
    let mut x = vec![0.0; d];
    for i in (0..d).rev() {
        let mut sum = y[i];
        for j in (i + 1)..d {
            sum -= l[j * d + i] * x[j];
        }
        x[i] = sum / l[i * d + i];
    }
    Ok(x)
}

/// Lower-triangular Cholesky factor `L` of `A = L Lᵀ` (row-major).
pub(crate) fn cholesky_factor(a: &[f64], d: usize) -> Result<Vec<f64>, CholeskyError> {
    let mut l = vec![0.0; d * d];
    for i in 0..d {
        for j in 0..=i {
            let mut sum = a[i * d + j];
            for k in 0..j {
                sum -= l[i * d + k] * l[j * d + k];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(CholeskyError::NotPositiveDefinite { pivot: i });
                }
                l[i * d + j] = sum.sqrt();
            } else {
                l[i * d + j] = sum / l[j * d + j];
            }
        }
    }
    Ok(l)
}

/// Invert a symmetric positive-definite matrix by solving against the
/// identity column by column. Returns row-major `d×d`.
pub(crate) fn spd_inverse(a: &[f64], d: usize) -> Result<Vec<f64>, CholeskyError> {
    let mut inv = vec![0.0; d * d];
    let mut e = vec![0.0; d];
    for col in 0..d {
        e.iter_mut().for_each(|v| *v = 0.0);
        e[col] = 1.0;
        let x = cholesky_solve(a, d, &e)?;
        for row in 0..d {
            inv[row * d + col] = x[row];
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let x = cholesky_solve(&a, 2, &[3.0, -4.0]).unwrap();
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_known_system() {
        // A = [[4,2],[2,3]], b = [10, 8] → x = [7/4, 3/2].
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let x = cholesky_solve(&a, 2, &[10.0, 8.0]).unwrap();
        assert!((x[0] - 1.75).abs() < 1e-12);
        assert!((x[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn solves_3x3() {
        // A = LLᵀ with L = [[2,0,0],[1,3,0],[0.5,1,1.5]].
        let l = [2.0, 0.0, 0.0, 1.0, 3.0, 0.0, 0.5, 1.0, 1.5];
        let mut a = vec![0.0; 9];
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    a[i * 3 + j] += l[i * 3 + k] * l[j * 3 + k];
                }
            }
        }
        let x_true = [1.0, -2.0, 0.5];
        let mut b = vec![0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                b[i] += a[i * 3 + j] * x_true[j];
            }
        }
        let x = cholesky_solve(&a, 3, &b).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, −1
        assert!(matches!(
            cholesky_solve(&a, 2, &[1.0, 1.0]),
            Err(CholeskyError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        assert_eq!(cholesky_solve(&[1.0], 2, &[1.0, 2.0]), Err(CholeskyError::DimensionMismatch));
        assert_eq!(
            cholesky_solve(&[1.0, 0.0, 0.0, 1.0], 2, &[1.0]),
            Err(CholeskyError::DimensionMismatch)
        );
    }

    #[test]
    fn inverse_of_spd() {
        let a = vec![4.0, 2.0, 2.0, 3.0];
        let inv = spd_inverse(&a, 2).unwrap();
        // A * A⁻¹ = I.
        for i in 0..2 {
            for j in 0..2 {
                let mut v = 0.0;
                for k in 0..2 {
                    v += a[i * 2 + k] * inv[k * 2 + j];
                }
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn error_display() {
        assert!(CholeskyError::NotPositiveDefinite { pivot: 1 }.to_string().contains("pivot 1"));
        assert!(CholeskyError::DimensionMismatch.to_string().contains("mismatch"));
    }
}
