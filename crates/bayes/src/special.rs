//! Special functions: log-gamma and the regularized incomplete beta
//! function, the numerical backbone of the Student-t distribution.

/// Natural log of the gamma function via the Lanczos approximation
/// (g = 7, n = 9 coefficients; |error| < 1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g=7).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps precision for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` computed with the
/// Lentz continued-fraction expansion (Numerical Recipes §6.4).
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // Prefactor x^a (1-x)^b / (a B(a,b)).
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // The continued fraction converges fastest for x < (a+1)/(a+b+2); apply
    // the symmetry I_x(a,b) = 1 − I_{1−x}(b,a) directly (no recursion, so no
    // ping-pong at the threshold).
    if x < (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        1.0 - ln_front.exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Modified Lentz continued fraction for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;

    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let factorials: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, &f) in factorials.iter().enumerate() {
            let got = ln_gamma((n + 1) as f64);
            assert!((got - f.ln()).abs() < 1e-10, "ln_gamma({}) = {got}, want {}", n + 1, f.ln());
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        let want = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - want).abs() < 1e-10);
        // Γ(3/2) = √π / 2.
        let want = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - want).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn beta_endpoints() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn beta_symmetric_case() {
        // I_{1/2}(a, a) = 1/2 by symmetry.
        for a in [0.5, 1.0, 2.5, 10.0] {
            let v = regularized_incomplete_beta(a, a, 0.5);
            assert!((v - 0.5).abs() < 1e-12, "I_0.5({a},{a}) = {v}");
        }
    }

    #[test]
    fn beta_uniform_case() {
        // I_x(1, 1) = x (Beta(1,1) is uniform).
        for x in [0.1, 0.33, 0.5, 0.9] {
            let v = regularized_incomplete_beta(1.0, 1.0, x);
            assert!((v - x).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_closed_form_a1() {
        // I_x(1, b) = 1 − (1−x)^b.
        for (b, x) in [(2.0, 0.3), (5.0, 0.7), (0.5, 0.2)] {
            let want = 1.0 - (1.0f64 - x).powf(b);
            let got = regularized_incomplete_beta(1.0, b, x);
            assert!((got - want).abs() < 1e-12, "I_{x}(1,{b}) = {got}, want {want}");
        }
    }

    #[test]
    fn beta_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..100 {
            let x = i as f64 / 100.0;
            let v = regularized_incomplete_beta(3.0, 7.0, x);
            assert!(v >= prev, "non-monotone at x={x}");
            prev = v;
        }
    }

    #[test]
    fn beta_complement_identity() {
        // I_x(a,b) + I_{1-x}(b,a) = 1.
        for (a, b, x) in [(2.0, 5.0, 0.3), (0.7, 0.9, 0.8), (10.0, 3.0, 0.55)] {
            let lhs =
                regularized_incomplete_beta(a, b, x) + regularized_incomplete_beta(b, a, 1.0 - x);
            assert!((lhs - 1.0).abs() < 1e-12);
        }
    }
}
