//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` its benches use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Timing is a simple mean/min/max over `sample_size` samples —
//! no warm-up modelling, outlier analysis, or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How expensive `iter_batched` setup values are (accepted for API
/// compatibility; batching strategy does not change in this shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch upstream.
    SmallInput,
    /// Large inputs: one per batch upstream.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Measurement statistics of one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Sampled {
    /// Mean time per iteration.
    pub mean: Duration,
    /// Fastest sample.
    pub min: Duration,
    /// Slowest sample.
    pub max: Duration,
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    result: Option<Sampled>,
}

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let mut times = Vec::with_capacity(self.samples);
        black_box(routine()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        self.record(&times);
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut times = Vec::with_capacity(self.samples);
        black_box(routine(setup())); // warm-up
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        self.record(&times);
    }

    fn record(&mut self, times: &[Duration]) {
        let total: Duration = times.iter().sum();
        self.result = Some(Sampled {
            mean: total / times.len().max(1) as u32,
            min: times.iter().min().copied().unwrap_or_default(),
            max: times.iter().max().copied().unwrap_or_default(),
        });
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

fn run_one(id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, result: None };
    f(&mut bencher);
    match bencher.result {
        Some(s) => println!(
            "{id:<48} time: [{} {} {}]",
            fmt_duration(s.min),
            fmt_duration(s.mean),
            fmt_duration(s.max)
        ),
        None => println!("{id:<48} (no measurement)"),
    }
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Upstream disables plot generation; the shim never plots.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group function (both upstream forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0usize;
        c.bench_function("unit/increment", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs >= 3, "warm-up + samples ran {runs} times");
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        let mut group = c.benchmark_group("unit");
        group.sample_size(2);
        let mut seen = Vec::new();
        let mut next = 0usize;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |v| seen.push(v),
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert!(seen.len() >= 2);
        let mut sorted = seen.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "inputs must be distinct: {seen:?}");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
