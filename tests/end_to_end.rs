//! Cross-crate integration tests: the full COMET pipeline from dataset
//! generation through pollution, tuning, cleaning sessions and baselines.

use comet::baselines::{ActiveClean, Oracle, RandomCleaner, StrategyConfig};
use comet::core::{CleaningEnvironment, CleaningSession, CometConfig, CostPolicy, StepAction};
use comet::datasets::Dataset;
use comet::frame::{train_test_split, SplitOptions};
use comet::jenga::{ErrorType, GroundTruth, PrePollutionPlan, Provenance, Scenario};
use comet::ml::{Algorithm, Metric, RandomSearch};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_env(
    dataset: Dataset,
    algorithm: Algorithm,
    scenario: Scenario,
    rows: usize,
    seed: u64,
) -> CleaningEnvironment {
    let mut rng = StdRng::seed_from_u64(seed);
    let df = dataset.generate(Some(rows), &mut rng);
    let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
    let gt_train = GroundTruth::new(tt.train.clone());
    let gt_test = GroundTruth::new(tt.test.clone());
    let mut train = tt.train;
    let mut test = tt.test;
    let mut prov_train = Provenance::for_frame(&train);
    let mut prov_test = Provenance::for_frame(&test);
    let plan = PrePollutionPlan::sample(&train, scenario, 0.2, 0.4, &mut rng).unwrap();
    plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).unwrap();
    plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).unwrap();
    CleaningEnvironment::new(
        train,
        test,
        gt_train,
        gt_test,
        prov_train,
        prov_test,
        algorithm,
        Metric::F1,
        0.02,
        RandomSearch { n_samples: 2, ..RandomSearch::default() },
        seed,
        &mut rng,
    )
    .unwrap()
}

#[test]
fn comet_full_pipeline_single_error() {
    let mut env = build_env(
        Dataset::Eeg,
        Algorithm::Knn,
        Scenario::SingleError(ErrorType::MissingValues),
        260,
        1,
    );
    let initial_dirty = env.total_dirty().unwrap();
    assert!(initial_dirty > 0);

    let session = CleaningSession::new(
        CometConfig { budget: 8.0, n_combinations: 1, ..CometConfig::default() },
        vec![ErrorType::MissingValues],
    );
    let mut rng = StdRng::seed_from_u64(2);
    let trace = session.run(&mut env, &mut rng).unwrap().trace;

    // Bookkeeping invariants.
    assert!(trace.total_spent() <= 8.0 + 1e-9);
    assert!((0.0..=1.0).contains(&trace.initial_f1));
    assert!((0.0..=1.0).contains(&trace.final_f1));
    assert!(env.total_dirty().unwrap() <= initial_dirty);
    let accepted = trace.count_action(StepAction::Accepted)
        + trace.count_action(StepAction::Fallback)
        + trace.count_action(StepAction::BufferApplied);
    assert!(accepted > 0, "some cleaning must have been kept");
    // Costs in the constant policy are one unit per non-buffer step.
    for r in &trace.records {
        if r.action != StepAction::BufferApplied && r.action != StepAction::Fallback {
            assert_eq!(r.cost, 1.0);
        }
    }
}

#[test]
fn comet_multi_error_with_paper_costs() {
    let mut env = build_env(Dataset::Cmc, Algorithm::Svm, Scenario::MultiError, 260, 3);
    let session = CleaningSession::new(
        CometConfig {
            budget: 10.0,
            costs: CostPolicy::paper_multi(),
            n_combinations: 1,
            ..CometConfig::default()
        },
        ErrorType::ALL.to_vec(),
    );
    let mut rng = StdRng::seed_from_u64(4);
    let trace = session.run(&mut env, &mut rng).unwrap().trace;
    assert!(trace.total_spent() <= 10.0 + 1e-9);
    // Multi-error traces may clean several error types.
    let mut types: Vec<ErrorType> = trace.records.iter().map(|r| r.err).collect();
    types.sort_unstable();
    types.dedup();
    assert!(!types.is_empty());
    // Missing-value steps after the first on a feature are free (one-shot).
    let mut seen_mv_feature: Vec<usize> = Vec::new();
    for r in &trace.records {
        if r.err == ErrorType::MissingValues
            && (r.action == StepAction::Accepted || r.action == StepAction::Reverted)
        {
            if seen_mv_feature.contains(&r.col) {
                assert_eq!(r.cost, 0.0, "subsequent MV steps are free");
            } else {
                assert_eq!(r.cost, 2.0, "first MV step costs 2");
                seen_mv_feature.push(r.col);
            }
        }
    }
}

#[test]
fn comet_vs_random_on_concentrated_dirt() {
    // One informative feature heavily polluted among many clean ones:
    // COMET should find it faster than random cleaning on average.
    let mut comet_score = 0.0;
    let mut rr_score = 0.0;
    for seed in 0..2 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let df = Dataset::Eeg.generate(Some(300), &mut rng);
        let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
        let gt_train = GroundTruth::new(tt.train.clone());
        let gt_test = GroundTruth::new(tt.test.clone());
        let mut train = tt.train;
        let mut test = tt.test;
        let mut prov_train = Provenance::for_frame(&train);
        let mut prov_test = Provenance::for_frame(&test);
        // Pollute every feature moderately.
        let levels: Vec<(usize, f64)> = (0..14).map(|c| (c, 0.3)).collect();
        let plan =
            PrePollutionPlan::explicit(Scenario::SingleError(ErrorType::MissingValues), levels);
        plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).unwrap();
        plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).unwrap();
        let env = CleaningEnvironment::new(
            train,
            test,
            gt_train,
            gt_test,
            prov_train,
            prov_test,
            Algorithm::Knn,
            Metric::F1,
            0.02,
            RandomSearch { n_samples: 1, ..RandomSearch::default() },
            seed,
            &mut rng,
        )
        .unwrap();

        let session = CleaningSession::new(
            CometConfig { budget: 10.0, n_combinations: 1, ..CometConfig::default() },
            vec![ErrorType::MissingValues],
        );
        let mut comet_env = env.clone();
        let trace = session.run(&mut comet_env, &mut rng).unwrap().trace;
        comet_score += trace.f1_series(10).iter().sum::<f64>();

        let config = StrategyConfig { budget: 10.0, costs: CostPolicy::constant() };
        let traces = RandomCleaner
            .run_repeated(&env, &[ErrorType::MissingValues], &config, 2, &mut rng)
            .unwrap();
        let mean: f64 = traces.iter().map(|t| t.f1_series(10).iter().sum::<f64>()).sum::<f64>()
            / traces.len() as f64;
        rr_score += mean;
    }
    // COMET must not lose to random by more than evaluation noise.
    assert!(comet_score >= rr_score - 0.4, "COMET {comet_score:.3} vs RR {rr_score:.3}");
}

#[test]
fn oracle_and_activeclean_share_environment_semantics() {
    let env = build_env(
        Dataset::Eeg,
        Algorithm::Svm,
        Scenario::SingleError(ErrorType::GaussianNoise),
        240,
        7,
    );
    let config = StrategyConfig { budget: 5.0, costs: CostPolicy::constant() };
    let mut rng = StdRng::seed_from_u64(8);

    let mut oracle_env = env.clone();
    let oracle_trace =
        Oracle.run(&mut oracle_env, &[ErrorType::GaussianNoise], &config, &mut rng).unwrap();
    let mut ac_env = env.clone();
    let ac_trace = ActiveClean::default()
        .run(&mut ac_env, &[ErrorType::GaussianNoise], &config, &mut rng)
        .unwrap();

    // Identical starting states.
    assert_eq!(oracle_trace.initial_f1, ac_trace.initial_f1);
    assert_eq!(oracle_trace.fully_clean_f1, ac_trace.fully_clean_f1);
    // Both stayed within budget and actually cleaned.
    for trace in [&oracle_trace, &ac_trace] {
        assert!(trace.total_spent() <= 5.0 + 1e-9);
        assert!(trace.records.iter().map(|r| r.cleaned_cells).sum::<usize>() > 0);
    }
    assert!(env.total_dirty().unwrap() > ac_env.total_dirty().unwrap());
}

#[test]
fn cleanml_pair_pipeline() {
    let mut rng = StdRng::seed_from_u64(30);
    let pair = Dataset::Credit.generate_cleanml_pair(Some(300), &mut rng);
    let tt = train_test_split(&pair.clean, SplitOptions::default(), &mut rng).unwrap();
    let project = |rows: &[usize]| {
        let mut prov = Provenance::new(pair.dirty.ncols(), rows.len());
        for col in 0..pair.dirty.ncols() {
            for (i, &row) in rows.iter().enumerate() {
                if let Some(err) = pair.provenance.get(col, row) {
                    prov.record(col, i, err);
                }
            }
        }
        prov
    };
    let mut env = CleaningEnvironment::new(
        pair.dirty.take(&tt.train_rows).unwrap(),
        pair.dirty.take(&tt.test_rows).unwrap(),
        GroundTruth::new(pair.clean.take(&tt.train_rows).unwrap()),
        GroundTruth::new(pair.clean.take(&tt.test_rows).unwrap()),
        project(&tt.train_rows),
        project(&tt.test_rows),
        Algorithm::Gb,
        Metric::F1,
        0.02,
        RandomSearch { n_samples: 1, ..RandomSearch::default() },
        31,
        &mut rng,
    )
    .unwrap();

    let errors: Vec<ErrorType> = Dataset::Credit.spec().cleanml_errors.to_vec();
    let before = env.total_dirty().unwrap();
    assert!(before > 0);
    let session = CleaningSession::new(
        CometConfig { budget: 6.0, n_combinations: 1, ..CometConfig::default() },
        errors,
    );
    let trace = session.run(&mut env, &mut rng).unwrap().trace;
    assert!(env.total_dirty().unwrap() < before);
    assert!(trace.total_spent() <= 6.0 + 1e-9);
}

#[test]
fn deterministic_given_seed_across_the_whole_pipeline() {
    let run = |seed: u64| {
        let mut env = build_env(
            Dataset::SCredit,
            Algorithm::Knn,
            Scenario::SingleError(ErrorType::CategoricalShift),
            200,
            seed,
        );
        let session = CleaningSession::new(
            CometConfig { budget: 4.0, n_combinations: 1, ..CometConfig::default() },
            vec![ErrorType::CategoricalShift],
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = session.run(&mut env, &mut rng).unwrap().trace;
        (
            trace.initial_f1,
            trace.final_f1,
            trace.records.iter().map(|r| (r.col, r.actual_f1.to_bits())).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(5), run(5), "bit-identical traces for identical seeds");
}
