//! Property-based tests (proptest) on cross-crate invariants.

use comet::bayes::{BayesianLinearRegression, BlrConfig, Hypergeometric, StudentT};
use comet::frame::{train_test_split, Cell, Column, DataFrame, SplitOptions};
use comet::jenga::{inject, sample_rows, ErrorType, GroundTruth};
use comet::ml::metrics::{accuracy, f1_binary, f1_macro};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a small mixed-type frame from generated raw data.
fn frame(values: &[f64], cats: &[u8], labels: &[u8]) -> DataFrame {
    let n = values.len();
    let x = Column::numeric("x", values.to_vec());
    let c = Column::categorical(
        "c",
        cats.iter().map(|&v| (v % 3) as u32).collect(),
        vec!["a".into(), "b".into(), "d".into()],
    )
    .unwrap();
    let y = Column::categorical(
        "y",
        labels.iter().map(|&v| (v % 2) as u32).collect(),
        vec!["n".into(), "p".into()],
    )
    .unwrap();
    assert_eq!(cats.len(), n);
    assert_eq!(labels.len(), n);
    DataFrame::new(vec![x, c, y], Some("y")).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pollution touches exactly the requested feature and never the label,
    /// and reverting the injection restores the frame bit-for-bit.
    #[test]
    fn pollution_is_local_and_revertible(
        values in prop::collection::vec(-1e3f64..1e3, 20..60),
        cats in prop::collection::vec(0u8..3, 60),
        labels in prop::collection::vec(0u8..2, 60),
        seed in 0u64..1000,
        k in 1usize..10,
        err_idx in 0usize..4,
    ) {
        let n = values.len();
        let df0 = frame(&values, &cats[..n], &labels[..n]);
        let err = ErrorType::ALL[err_idx];
        let col = if err.applicable(comet::frame::ColumnKind::Numeric) { 0 } else { 1 };
        let mut df = df0.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = sample_rows(n, k, &mut rng);
        let rec = inject(&mut df, col, &rows, err, &mut rng).unwrap();

        // Locality: the other feature and the label are untouched.
        let other = 1 - col;
        prop_assert_eq!(df.column(other).unwrap(), df0.column(other).unwrap());
        prop_assert_eq!(df.label_codes().unwrap(), df0.label_codes().unwrap());
        // Changed cells ⊆ requested rows.
        for (row, _) in &rec.changed {
            prop_assert!(rows.contains(row));
        }
        // Revert restores exactly.
        rec.revert(&mut df).unwrap();
        prop_assert_eq!(df, df0);
    }

    /// Ground-truth cleaning: after cleaning at most `k` cells, the dirty
    /// count decreases by exactly the number of cleaned cells and never
    /// exceeds the step size.
    #[test]
    fn cleaning_steps_account_exactly(
        values in prop::collection::vec(-100f64..100.0, 30..50),
        seed in 0u64..1000,
        pollute_k in 5usize..15,
        clean_k in 1usize..8,
    ) {
        let n = values.len();
        let labels: Vec<u8> = (0..n as u8).collect();
        let cats = vec![0u8; n];
        let df0 = frame(&values, &cats, &labels);
        let gt = GroundTruth::new(df0.clone());
        let mut df = df0.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = sample_rows(n, pollute_k, &mut rng);
        inject(&mut df, 0, &rows, ErrorType::MissingValues, &mut rng).unwrap();
        let before = gt.dirty_count(&df, 0).unwrap();
        let cleaned = gt.clean_step(&mut df, 0, clean_k, &[], &mut rng).unwrap();
        let after = gt.dirty_count(&df, 0).unwrap();
        prop_assert_eq!(before - after, cleaned.len());
        prop_assert!(cleaned.len() <= clean_k);
    }

    /// Train/test split partitions rows exactly, with no duplication.
    #[test]
    fn split_partitions_rows(
        n in 10usize..120,
        frac in 0.1f64..0.9,
        seed in 0u64..1000,
        stratify in any::<bool>(),
    ) {
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
        let cats = vec![0u8; n];
        let df = frame(&values, &cats, &labels);
        let mut rng = StdRng::seed_from_u64(seed);
        let tt = train_test_split(
            &df,
            SplitOptions { test_fraction: frac, stratify },
            &mut rng,
        )
        .unwrap();
        let mut all: Vec<usize> =
            tt.train_rows.iter().chain(&tt.test_rows).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        prop_assert!(!tt.train_rows.is_empty());
        prop_assert!(!tt.test_rows.is_empty());
    }

    /// Metrics stay in [0, 1]; F1 = 1 iff predictions equal labels is
    /// one-sided: perfect predictions always score 1.
    #[test]
    fn metric_bounds(
        y_true in prop::collection::vec(0u32..3, 1..60),
        y_pred_raw in prop::collection::vec(0u32..3, 60),
    ) {
        let n = y_true.len();
        let y_pred = &y_pred_raw[..n];
        let acc = accuracy(&y_true, y_pred);
        prop_assert!((0.0..=1.0).contains(&acc));
        let f1 = f1_macro(&y_true, y_pred, 3);
        prop_assert!((0.0..=1.0).contains(&f1));
        let f1b = f1_binary(&y_true, y_pred, 1);
        prop_assert!((0.0..=1.0).contains(&f1b));
        // Perfect predictions.
        prop_assert_eq!(accuracy(&y_true, &y_true), 1.0);
        if y_true.contains(&1) {
            prop_assert_eq!(f1_binary(&y_true, &y_true, 1), 1.0);
        }
    }

    /// The Bayesian regression's credible interval contains its own mean
    /// and widens with the interval level.
    #[test]
    fn blr_interval_properties(
        ys in prop::collection::vec(0.0f64..1.0, 4..20),
        x_query in -2.0f64..3.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let mut narrow = BayesianLinearRegression::new(BlrConfig {
            interval: 0.5,
            ..BlrConfig::default()
        });
        narrow.fit(&xs, &ys).unwrap();
        let mut wide = BayesianLinearRegression::new(BlrConfig {
            interval: 0.99,
            ..BlrConfig::default()
        });
        wide.fit(&xs, &ys).unwrap();
        let pn = narrow.predict(x_query).unwrap();
        let pw = wide.predict(x_query).unwrap();
        prop_assert!(pn.lower <= pn.mean && pn.mean <= pn.upper);
        prop_assert!((pn.mean - pw.mean).abs() < 1e-9, "level must not shift the mean");
        prop_assert!(pw.uncertainty() >= pn.uncertainty());
    }

    /// Student-t CDF is monotone and symmetric for any ν.
    #[test]
    fn student_t_properties(nu in 0.5f64..50.0, t in -20.0f64..20.0) {
        let dist = StudentT::new(nu);
        let c = dist.cdf(t);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!((dist.cdf(t) + dist.cdf(-t) - 1.0).abs() < 1e-9);
        prop_assert!(dist.cdf(t + 0.1) >= c - 1e-12);
    }

    /// Hypergeometric PMF sums to one over its support.
    #[test]
    fn hypergeometric_normalizes(
        population in 1u64..200,
        successes_frac in 0.0f64..1.0,
        draws_frac in 0.0f64..1.0,
    ) {
        let successes = (population as f64 * successes_frac) as u64;
        let draws = (population as f64 * draws_frac) as u64;
        let h = Hypergeometric::new(population, successes, draws);
        let total: f64 = (h.min_k()..=h.max_k()).map(|k| h.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {}", total);
    }

    /// Cells written through the typed API always read back identically.
    #[test]
    fn cell_roundtrip(v in -1e9f64..1e9, row_count in 1usize..30, row_sel in 0usize..30) {
        let row = row_sel % row_count;
        let mut c = Column::numeric("x", vec![0.0; row_count]);
        c.set(row, Cell::Num(v)).unwrap();
        prop_assert_eq!(c.get(row).unwrap(), Cell::Num(v));
        c.set(row, Cell::Missing).unwrap();
        prop_assert!(c.get(row).unwrap().is_missing());
    }
}

mod core_properties {
    use comet::core::{Budget, CleaningTrace, CostModel, CostPolicy};
    use comet::jenga::ErrorType;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// A budget never reports negative remaining funds and never lets
        /// total spending exceed the total, for any spend sequence.
        #[test]
        fn budget_never_overspends(
            total in 0.0f64..100.0,
            costs in prop::collection::vec(0.0f64..10.0, 0..50),
        ) {
            let mut budget = Budget::new(total);
            for cost in costs {
                let before = budget.spent();
                let ok = budget.try_spend(cost);
                if ok {
                    prop_assert!((budget.spent() - before - cost).abs() < 1e-9);
                } else {
                    prop_assert_eq!(budget.spent(), before);
                }
                prop_assert!(budget.remaining() >= 0.0);
                prop_assert!(budget.spent() <= budget.total() + 1e-6);
            }
        }

        /// Cumulative cost equals the sum of per-step costs for every model,
        /// and per-step costs are monotone for the linear model.
        #[test]
        fn cost_models_are_consistent(
            steps in 0usize..30,
            first in 0.0f64..5.0,
            rest in 0.0f64..5.0,
            increment in 0.0f64..3.0,
        ) {
            for model in [
                CostModel::Constant(first),
                CostModel::OneShot { first, rest },
                CostModel::Linear { initial: first, increment },
            ] {
                let total: f64 = (0..steps).map(|s| model.next_cost(s)).sum();
                prop_assert!((model.cumulative(steps) - total).abs() < 1e-9);
            }
            let linear = CostModel::Linear { initial: first, increment };
            for s in 0..steps.saturating_sub(1) {
                prop_assert!(linear.next_cost(s + 1) >= linear.next_cost(s));
            }
        }

        /// The constant policy charges the same for every error type; the
        /// paper's multi policy charges MV ≤ 2 total after the first step.
        #[test]
        fn cost_policy_routing(steps in 0usize..20) {
            let constant = CostPolicy::constant();
            for err in ErrorType::ALL {
                prop_assert_eq!(constant.next_cost(err, steps), 1.0);
            }
            let multi = CostPolicy::paper_multi();
            let mv_total = multi.model(ErrorType::MissingValues).cumulative(steps.max(1));
            prop_assert_eq!(mv_total, 2.0, "MV is one-shot: 2 units ever");
        }

        /// f1_at_budget is monotone in budget for a non-decreasing curve and
        /// always returns a value present in {initial} ∪ curve values.
        #[test]
        fn trace_budget_lookup(
            initial in 0.0f64..1.0,
            deltas in prop::collection::vec((0.1f64..2.0, 0.0f64..1.0), 0..20),
            probe in 0.0f64..50.0,
        ) {
            let mut spent = 0.0;
            let mut curve = Vec::new();
            for (step, f1) in &deltas {
                spent += step;
                curve.push((spent, *f1));
            }
            let trace = CleaningTrace {
                initial_f1: initial,
                f1_curve: curve.clone(),
                final_f1: curve.last().map_or(initial, |&(_, f)| f),
                ..CleaningTrace::default()
            };
            let value = trace.f1_at_budget(probe);
            let mut valid: Vec<f64> = vec![initial];
            valid.extend(curve.iter().map(|&(_, f)| f));
            prop_assert!(valid.iter().any(|v| (v - value).abs() < 1e-15));
            // Beyond total spend, the lookup returns the last kept value.
            prop_assert!((trace.f1_at_budget(1e9) - trace.final_f1).abs() < 1e-15);
        }
    }
}

mod fingerprint_props {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mutating any single cell — value, validity bit, or categorical
        /// code — changes the frame fingerprint, and undoing the mutation
        /// restores it bit-for-bit. This is the soundness condition of the
        /// evaluation cache: distinct data states must not share a key.
        #[test]
        fn fingerprint_tracks_single_cell_mutations(
            values in prop::collection::vec(-1e3f64..1e3, 20..60),
            cats in prop::collection::vec(0u8..3, 60),
            labels in prop::collection::vec(0u8..2, 60),
            pick in 0.0f64..1.0,
            delta in 1.0f64..100.0,
        ) {
            let n = values.len();
            let df0 = frame(&values, &cats[..n], &labels[..n]);
            let base = df0.fingerprint();
            prop_assert_eq!(df0.fingerprint(), base, "fingerprint must be deterministic");

            let row = ((pick * n as f64) as usize).min(n - 1);

            // Numeric value mutation, then exact restore.
            let mut df = df0.clone();
            let old = df.column(0).unwrap().num(row).unwrap();
            df.set(row, 0, Cell::Num(old + delta)).unwrap();
            prop_assert_ne!(df.fingerprint(), base);
            df.set(row, 0, Cell::Num(old)).unwrap();
            prop_assert_eq!(df.fingerprint(), base);

            // Validity flip alone (payload slot untouched).
            let mut df = df0.clone();
            df.set(row, 0, Cell::Missing).unwrap();
            prop_assert_ne!(df.fingerprint(), base);

            // Categorical code mutation.
            let mut df = df0.clone();
            let old_code = df.column(1).unwrap().cat(row).unwrap();
            df.set(row, 1, Cell::Cat((old_code + 1) % 3)).unwrap();
            prop_assert_ne!(df.fingerprint(), base);
        }
    }
}
