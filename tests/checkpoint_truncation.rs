//! Property-based crash-recovery: a checkpoint truncated at an
//! *arbitrary byte* — the worst a `kill -9` or a full disk can leave
//! behind — must either resume bit-identically or fail with a typed
//! [`CometError::Checkpoint`], never panic. And a torn checkpoint must
//! never contaminate its neighbours: sibling sessions resuming from
//! their own (intact) files in the same directory stay bit-identical
//! regardless of what the truncated one does.

use comet::core::{build_paired_env, CheckpointSpec, CleaningSession, CometConfig, CometError};
use comet::frame::{Cell, Column, DataFrame};
use comet::jenga::ErrorType;
use comet::ml::{Algorithm, RandomSearch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// Seeds of the sibling sessions sharing one store directory.
const SEEDS: [u64; 3] = [11, 22, 33];

/// A small dirty/clean pair with enough dirt in both features for a
/// session to take several checkpointed iterations.
fn toy_pair() -> (DataFrame, DataFrame) {
    let n = 40;
    let x: Vec<f64> =
        (0..n).map(|i| if i % 2 == 0 { -2.0 } else { 2.0 } + i as f64 * 0.01).collect();
    let z: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    let labels: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
    let clean = DataFrame::new(
        vec![
            Column::numeric("x", x),
            Column::numeric("z", z),
            Column::categorical("y", labels, vec!["no".into(), "yes".into()]).unwrap(),
        ],
        Some("y"),
    )
    .unwrap();
    let mut dirty = clean.clone();
    for row in [0, 5, 10, 15, 20, 25] {
        dirty.set(row, 0, Cell::Missing).unwrap();
    }
    for row in [2, 9, 16, 23] {
        dirty.set(row, 1, Cell::Num(1e4 + row as f64)).unwrap();
    }
    (dirty, clean)
}

fn session_config() -> CometConfig {
    CometConfig { budget: 6.0, step_frac: 0.05, ..CometConfig::default() }
}

/// Run one full session for `seed`, checkpointing to `path`. Returns the
/// trace CSV (the byte-identity witness).
fn run_session(seed: u64, path: &Path, resume: bool) -> Result<String, CometError> {
    let (dirty, clean) = toy_pair();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut env = build_paired_env(
        dirty,
        Some(clean),
        Algorithm::Knn,
        0.05,
        RandomSearch { n_samples: 1, ..RandomSearch::default() },
        7,
        comet::frame::DEFAULT_SEGMENT_ROWS,
        &mut rng,
    )?;
    let session = CleaningSession::new(session_config(), ErrorType::ALL.to_vec())
        .with_checkpoint(CheckpointSpec { path: path.into(), resume });
    let outcome = session.run(&mut env, &mut rng)?;
    Ok(outcome.trace.to_csv(Some(env.train())))
}

struct Reference {
    dir: PathBuf,
    /// Per seed: (trace CSV, checkpoint bytes of the completed run).
    runs: Vec<(String, Vec<u8>)>,
}

/// The uninterrupted reference runs, computed once: truncation cases
/// compare against these bytes.
fn reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("comet-ckpt-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let runs = SEEDS
            .iter()
            .map(|&seed| {
                let path = dir.join(format!("ref-{seed}.jsonl"));
                let trace = run_session(seed, &path, false).expect("reference run");
                let bytes = std::fs::read(&path).expect("reference checkpoint");
                assert!(
                    bytes.iter().filter(|&&b| b == b'\n').count() >= 3,
                    "reference checkpoint too short for interesting truncations"
                );
                (trace, bytes)
            })
            .collect();
        Reference { dir, runs }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Truncate one sibling's checkpoint at an arbitrary byte while the
    /// other sessions resume from intact files in the same directory,
    /// everyone concurrently. The truncated session resumes
    /// bit-identically or fails with a typed checkpoint error; the
    /// siblings are bit-identical unconditionally.
    #[test]
    fn truncated_checkpoints_resume_exactly_or_fail_typed(
        victim in 0usize..SEEDS.len(),
        cut_frac in 0.0f64..1.0,
        case in 0u64..1_000_000,
    ) {
        let reference = reference();
        let case_dir = reference.dir.join(format!("case-{case}"));
        std::fs::create_dir_all(&case_dir).unwrap();
        let mut paths = Vec::new();
        for (i, &seed) in SEEDS.iter().enumerate() {
            let path = case_dir.join(format!("ckpt-{seed}.jsonl"));
            let bytes = &reference.runs[i].1;
            let written: &[u8] = if i == victim {
                let cut = ((bytes.len() as f64) * cut_frac) as usize;
                &bytes[..cut.min(bytes.len())]
            } else {
                bytes
            };
            std::fs::write(&path, written).unwrap();
            paths.push(path);
        }

        // Resume all three concurrently — sibling writes must not leak
        // into each other's files or traces.
        let results: Vec<Result<String, CometError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = SEEDS
                .iter()
                .zip(&paths)
                .map(|(&seed, path)| scope.spawn(move || run_session(seed, path, true)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panics")).collect()
        });

        for (i, result) in results.into_iter().enumerate() {
            let expected = &reference.runs[i].0;
            match result {
                Ok(trace) => prop_assert_eq!(
                    &trace, expected,
                    "session {} diverged after resume", SEEDS[i]
                ),
                Err(CometError::Checkpoint(_)) if i == victim => {
                    // Typed refusal is the other legal outcome for the
                    // truncated file (e.g. the cut landed in the header).
                }
                Err(e) => return Err(TestCaseError(format!(
                    "session {} failed with a non-checkpoint error: {e}", SEEDS[i]
                ))),
            }
        }
        std::fs::remove_dir_all(&case_dir).ok();
    }
}

/// Deterministic corner cases the generator might miss: empty file,
/// header-only prefix, and a cut exactly on a line boundary.
#[test]
fn truncation_corner_cases() {
    let reference = reference();
    let dir = reference.dir.join("corners");
    std::fs::create_dir_all(&dir).unwrap();
    let bytes = &reference.runs[0].1;
    let expected = &reference.runs[0].0;

    // Empty file: typed error (no header), never a panic.
    let empty = dir.join("empty.jsonl");
    std::fs::write(&empty, b"").unwrap();
    assert!(matches!(run_session(SEEDS[0], &empty, true), Err(CometError::Checkpoint(_))));

    // Header only: a resume that replays nothing and recomputes everything.
    let header_end = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
    let header_only = dir.join("header.jsonl");
    std::fs::write(&header_only, &bytes[..header_end]).unwrap();
    assert_eq!(&run_session(SEEDS[0], &header_only, true).unwrap(), expected);

    // Cut at the penultimate line boundary: replays all but the tail.
    let cuts: Vec<usize> =
        bytes.iter().enumerate().filter(|&(_, &b)| b == b'\n').map(|(i, _)| i + 1).collect();
    let partial = dir.join("partial.jsonl");
    std::fs::write(&partial, &bytes[..cuts[cuts.len() - 2]]).unwrap();
    assert_eq!(&run_session(SEEDS[0], &partial, true).unwrap(), expected);

    std::fs::remove_dir_all(&dir).ok();
}
