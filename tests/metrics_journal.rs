//! Integration test of the observability layer end to end: a real
//! cleaning session with the `comet-obs` registry enabled and an
//! in-memory journal sink, validating the streamed JSONL records.

use comet::core::{CleaningEnvironment, CleaningSession, CometConfig, PHASES};
use comet::frame::{train_test_split, SplitOptions};
use comet::jenga::{ErrorType, GroundTruth, PrePollutionPlan, Provenance, Scenario};
use comet::ml::{Algorithm, Metric, RandomSearch};
use comet::obs::journal::SharedBuffer;
use comet::obs::{journal, json};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// The obs enable flag and journal sink are process-global; tests in this
/// binary that touch them serialize here.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn build_env(seed: u64) -> CleaningEnvironment {
    let mut rng = StdRng::seed_from_u64(seed);
    let df = comet::datasets::Dataset::Eeg.generate(Some(200), &mut rng);
    let tt = train_test_split(&df, SplitOptions::default(), &mut rng).unwrap();
    let gt_train = GroundTruth::new(tt.train.clone());
    let gt_test = GroundTruth::new(tt.test.clone());
    let mut train = tt.train;
    let mut test = tt.test;
    let mut prov_train = Provenance::for_frame(&train);
    let mut prov_test = Provenance::for_frame(&test);
    let plan = PrePollutionPlan::explicit(
        Scenario::SingleError(ErrorType::MissingValues),
        vec![(0, 0.3), (1, 0.2)],
    );
    plan.apply(&mut train, 0.01, &mut prov_train, &mut rng).unwrap();
    plan.apply(&mut test, 0.01, &mut prov_test, &mut rng).unwrap();
    CleaningEnvironment::new(
        train,
        test,
        gt_train,
        gt_test,
        prov_train,
        prov_test,
        Algorithm::Knn,
        Metric::F1,
        0.02,
        RandomSearch { n_samples: 1, ..RandomSearch::default() },
        11,
        &mut rng,
    )
    .unwrap()
}

fn quick_config(budget: f64) -> CometConfig {
    CometConfig {
        budget,
        n_combinations: 1,
        search: RandomSearch { n_samples: 1, ..RandomSearch::default() },
        ..CometConfig::default()
    }
}

#[test]
fn session_streams_valid_journal_records() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let mut env = build_env(9);
    let session = CleaningSession::new(quick_config(5.0), vec![ErrorType::MissingValues]);

    let buffer = SharedBuffer::new();
    comet::obs::reset();
    comet::obs::set_enabled(true);
    journal::set_sink(Some(Box::new(buffer.clone())));
    let mut rng = StdRng::seed_from_u64(3);
    let outcome = session.run(&mut env, &mut rng).unwrap();
    let metrics = outcome.metrics.as_ref().expect("metrics collected");
    journal::emit(&metrics.summary_json());
    journal::set_sink(None);
    comet::obs::set_enabled(false);

    let text = buffer.contents();
    let lines: Vec<&str> = text.lines().collect();
    // One record per iteration, plus the summary we appended.
    assert_eq!(lines.len(), metrics.iterations.len() + 1, "journal:\n{text}");
    for (i, line) in lines.iter().enumerate() {
        let value = json::parse(line)
            .unwrap_or_else(|e| panic!("journal line {i} must parse ({e}): {line}"));
        let kind = value.get("kind").and_then(|k| k.as_str());
        if i < metrics.iterations.len() {
            assert_eq!(kind, Some("iteration"));
            assert_eq!(
                value.get("iteration").and_then(|v| v.as_f64()),
                Some(metrics.iterations[i].iteration as f64),
            );
            let phases = value.get("phases").expect("phases object");
            for phase in PHASES {
                let v = phases.get(phase).and_then(|v| v.as_f64());
                assert!(v.is_some_and(|s| s >= 0.0), "line {i} phase {phase}: {line}");
            }
        } else {
            assert_eq!(kind, Some("summary"));
            assert_eq!(
                value.get("iterations").and_then(|v| v.as_f64()),
                Some(metrics.iterations.len() as f64),
            );
        }
    }
    // The report renders without panicking and names every phase.
    let report = metrics.report();
    for phase in PHASES {
        assert!(report.contains(phase), "report missing {phase}:\n{report}");
    }
}

#[test]
fn journal_sink_absent_means_no_records_but_same_trace() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let env0 = build_env(12);
    let session = CleaningSession::new(quick_config(4.0), vec![ErrorType::MissingValues]);
    let run = |enabled: bool| {
        let mut env = env0.clone();
        env.clear_eval_cache();
        comet::obs::reset();
        comet::obs::set_enabled(enabled);
        let mut rng = StdRng::seed_from_u64(8);
        let outcome = session.run(&mut env, &mut rng).unwrap();
        comet::obs::set_enabled(false);
        outcome
    };
    journal::set_sink(None);
    let bare = run(false);
    let instrumented = run(true);
    assert!(bare.metrics.is_none());
    assert!(instrumented.metrics.is_some());
    assert!(
        bare.trace.content_eq(&instrumented.trace),
        "enabling metrics must not change the trace",
    );
}
