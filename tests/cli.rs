//! End-to-end tests of the `comet` CLI binary: pollute a CSV, evaluate it,
//! run a budgeted recommendation session, and check the emitted artifacts.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn comet() -> Command {
    Command::new(env!("CARGO_BIN_EXE_comet"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("comet_cli_it_{tag}"));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A small separable dataset written as CSV.
fn write_clean_csv(path: &PathBuf) {
    let mut csv = String::from("f1,f2,cat,y\n");
    // Deterministic pseudo-random but separable data.
    for i in 0..240 {
        let c = i % 2;
        let jitter = ((i * 37) % 101) as f64 / 101.0 - 0.5;
        let f1 = if c == 0 { -2.0 } else { 2.0 } + jitter;
        let f2 = ((i * 13) % 17) as f64 / 17.0;
        let cat = if c == 0 { "a" } else { "b" };
        let label = if c == 0 { "no" } else { "yes" };
        csv.push_str(&format!("{f1:.4},{f2:.4},{cat},{label}\n"));
    }
    fs::write(path, csv).unwrap();
}

#[test]
fn pollute_then_evaluate_then_recommend() {
    let dir = temp_dir("full");
    let clean = dir.join("clean.csv");
    let dirty = dir.join("dirty.csv");
    let trace = dir.join("trace.csv");
    write_clean_csv(&clean);

    // pollute
    let out = comet()
        .args([
            "pollute",
            "--input",
            clean.to_str().unwrap(),
            "--label",
            "y",
            "--error",
            "mv",
            "--level",
            "0.3",
            "--output",
            dirty.to_str().unwrap(),
            "--seed",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "pollute failed: {}", String::from_utf8_lossy(&out.stderr));
    let dirty_text = fs::read_to_string(&dirty).unwrap();
    assert!(dirty_text.contains(",,"), "dirty CSV should contain empty (missing) fields");

    // evaluate both versions; the dirty one must not crash and both report F1.
    for file in [&clean, &dirty] {
        let out = comet()
            .args(["evaluate", "--input", file.to_str().unwrap(), "--label", "y"])
            .output()
            .unwrap();
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("F1"), "{stdout}");
    }

    // recommend with a tiny budget, writing the trace CSV.
    let out = comet()
        .args([
            "recommend",
            "--dirty",
            dirty.to_str().unwrap(),
            "--clean",
            clean.to_str().unwrap(),
            "--label",
            "y",
            "--budget",
            "4",
            "--step",
            "0.03",
            "--trace",
            trace.to_str().unwrap(),
            "--seed",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "recommend failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("dirty F1"), "{stdout}");
    assert!(stdout.contains("budget units"), "{stdout}");
    let trace_text = fs::read_to_string(&trace).unwrap();
    assert!(trace_text.starts_with("iteration,feature,error_type"));
    assert!(trace_text.lines().count() >= 2, "trace must contain steps");

    // Same run again with --metrics-out: the journal must be valid JSONL
    // and the trace byte-identical (metrics only observe).
    let trace2 = dir.join("trace_metrics.csv");
    let journal = dir.join("run.jsonl");
    let out = comet()
        .args([
            "recommend",
            "--dirty",
            dirty.to_str().unwrap(),
            "--clean",
            clean.to_str().unwrap(),
            "--label",
            "y",
            "--budget",
            "4",
            "--step",
            "0.03",
            "--trace",
            trace2.to_str().unwrap(),
            "--metrics-out",
            journal.to_str().unwrap(),
            "--seed",
            "5",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "recommend failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("metrics report"), "{stdout}");
    assert!(stdout.contains("metrics journal written"), "{stdout}");
    assert_eq!(
        trace_text,
        fs::read_to_string(&trace2).unwrap(),
        "metrics must not change the trace",
    );

    let journal_text = fs::read_to_string(&journal).unwrap();
    let lines: Vec<&str> = journal_text.lines().collect();
    assert!(lines.len() >= 2, "journal needs iteration records and a summary:\n{journal_text}");
    for (i, line) in lines.iter().enumerate() {
        let value = comet::obs::json::parse(line)
            .unwrap_or_else(|e| panic!("journal line {i} must parse ({e}): {line}"));
        let kind = value.get("kind").and_then(|k| k.as_str()).map(str::to_string);
        if i + 1 < lines.len() {
            assert_eq!(kind.as_deref(), Some("iteration"), "line {i}: {line}");
            let phases = value.get("phases").expect("iteration records carry phases");
            for phase in comet::core::PHASES {
                assert!(phases.get(phase).is_some(), "line {i} missing phase {phase}");
            }
        } else {
            assert_eq!(kind.as_deref(), Some("summary"), "last line: {line}");
            assert!(value.get("phase_totals").is_some());
            assert!(value.get("registry").is_some());
        }
    }

    fs::remove_dir_all(dir).ok();
}

#[test]
fn unknown_command_and_missing_flags_fail_cleanly() {
    let out = comet().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = comet().args(["pollute", "--input", "x.csv"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing required flag"));

    let out = comet().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn recommend_rejects_shape_mismatch() {
    let dir = temp_dir("mismatch");
    let a = dir.join("a.csv");
    let b = dir.join("b.csv");
    fs::write(&a, "x,y\n1.0,no\n2.0,yes\n3.0,no\n4.0,yes\n").unwrap();
    fs::write(&b, "x,y\n1.0,no\n2.0,yes\n").unwrap();
    let out = comet()
        .args([
            "recommend",
            "--dirty",
            a.to_str().unwrap(),
            "--clean",
            b.to_str().unwrap(),
            "--label",
            "y",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("identical shapes"));
    fs::remove_dir_all(dir).ok();
}

#[test]
fn help_prints_usage() {
    let out = comet().args(["--help"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("comet pollute"));
    assert!(stdout.contains("comet recommend"));
}
