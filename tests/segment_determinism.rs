//! Segmentation is a storage layout, not a semantic: the same session must
//! produce byte-identical traces whether its frames live in one segment,
//! 64Ki-row segments, or absurdly small ones — across thread counts, under
//! a spill budget tight enough to page every segment to disk, and across a
//! kill-and-resume mid-run. These tests are the determinism contract of
//! DESIGN.md §15.
//!
//! The spill pool is process-global, so every test here serializes on one
//! mutex (other integration-test binaries are separate processes and
//! cannot interfere).

use comet::core::{build_paired_env, CheckpointSpec, CleaningSession, CometConfig, CometError};
use comet::frame::{Cell, Column, DataFrame};
use comet::jenga::ErrorType;
use comet::ml::{Algorithm, RandomSearch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

static POOL_LOCK: Mutex<()> = Mutex::new(());

fn lock_pool() -> MutexGuard<'static, ()> {
    POOL_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("comet-segdet-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A dirty/clean pair with enough dirt in both features for a session to
/// take several iterations (same shape as the checkpoint-truncation toy).
fn toy_pair() -> (DataFrame, DataFrame) {
    let n = 40;
    let x: Vec<f64> =
        (0..n).map(|i| if i % 2 == 0 { -2.0 } else { 2.0 } + i as f64 * 0.01).collect();
    let z: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
    let labels: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
    let clean = DataFrame::new(
        vec![
            Column::numeric("x", x),
            Column::numeric("z", z),
            Column::categorical("y", labels, vec!["no".into(), "yes".into()]).unwrap(),
        ],
        Some("y"),
    )
    .unwrap();
    let mut dirty = clean.clone();
    for row in [0, 5, 10, 15, 20, 25] {
        dirty.set(row, 0, Cell::Missing).unwrap();
    }
    for row in [2, 9, 16, 23] {
        dirty.set(row, 1, Cell::Num(1e4 + row as f64)).unwrap();
    }
    (dirty, clean)
}

/// Run one full session at the given segment size, returning the trace CSV
/// (the byte-identity witness). `checkpoint` optionally records/resumes.
fn run_trace(seg_rows: usize, checkpoint: Option<(&Path, bool)>) -> Result<String, CometError> {
    let (dirty, clean) = toy_pair();
    let mut rng = StdRng::seed_from_u64(17);
    let mut env = build_paired_env(
        dirty,
        Some(clean),
        Algorithm::Knn,
        0.05,
        RandomSearch { n_samples: 1, ..RandomSearch::default() },
        7,
        seg_rows,
        &mut rng,
    )?;
    let config = CometConfig {
        budget: 6.0,
        step_frac: 0.05,
        segment_rows: seg_rows,
        ..CometConfig::default()
    };
    let mut session = CleaningSession::new(config, ErrorType::ALL.to_vec());
    if let Some((path, resume)) = checkpoint {
        session = session.with_checkpoint(CheckpointSpec { path: path.into(), resume });
    }
    let outcome = session.run(&mut env, &mut rng)?;
    Ok(outcome.trace.to_csv(Some(env.train())))
}

/// The core contract: segment size × thread count never changes a trace.
/// Sizes cover pathological (3 rows), boundary-straddling (16), the default
/// (64Ki ⇒ single segment here), and the whole-column sentinel (0).
#[test]
fn traces_bit_identical_across_segment_sizes_and_threads() {
    let _guard = lock_pool();
    let reference = run_trace(comet::frame::DEFAULT_SEGMENT_ROWS, None).unwrap();
    assert!(reference.lines().count() > 1, "session must actually take steps");
    for seg_rows in [3usize, 16, 0] {
        for threads in [1usize, 2, 8] {
            let trace = comet::par::with_threads(threads, || run_trace(seg_rows, None)).unwrap();
            assert_eq!(
                trace, reference,
                "trace diverged at seg_rows={seg_rows}, threads={threads}"
            );
        }
    }
}

/// Same contract with the spill tier armed so tightly that every segment
/// pages to disk: an out-of-core run is bit-identical to the in-memory one,
/// and actually spilled.
#[test]
fn traces_bit_identical_under_spill_pressure() {
    let _guard = lock_pool();
    let reference = run_trace(comet::frame::DEFAULT_SEGMENT_ROWS, None).unwrap();
    let dir = temp_dir("spill");
    comet::frame::spill_configure(&dir, 64).unwrap();
    let result = comet::par::with_threads(2, || run_trace(8, None));
    let stats = comet::frame::spill_stats().unwrap();
    comet::frame::spill_deconfigure();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(result.unwrap(), reference, "out-of-core trace diverged");
    assert!(stats.spills > 0, "a 64-byte budget must force spills: {stats:?}");
}

/// Kill-and-resume mid-spill: truncate a completed run's checkpoint at a
/// line boundary (what a `kill -9` leaves behind) and resume under the same
/// tight spill budget — the replayed-plus-recomputed trace is bit-identical.
#[test]
fn kill_and_resume_mid_spill_is_bit_identical() {
    let _guard = lock_pool();
    let dir = temp_dir("resume");
    comet::frame::spill_configure(dir.join("spill"), 64).unwrap();

    let ckpt = dir.join("ckpt.jsonl");
    let reference = run_trace(8, Some((&ckpt, false))).unwrap();
    let bytes = std::fs::read(&ckpt).unwrap();
    let cuts: Vec<usize> =
        bytes.iter().enumerate().filter(|&(_, &b)| b == b'\n').map(|(i, _)| i + 1).collect();
    assert!(cuts.len() >= 3, "need several checkpointed iterations to cut");
    std::fs::write(&ckpt, &bytes[..cuts[cuts.len() - 2]]).unwrap();

    let resumed = run_trace(8, Some((&ckpt, true))).unwrap();
    comet::frame::spill_deconfigure();
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(resumed, reference, "resume after mid-spill kill diverged");
}

/// Spill files and feature blocks are addressed per segment, so resuming a
/// checkpoint under a different segment size must be refused loudly, not
/// silently recomputed.
#[test]
fn resume_with_different_segment_size_is_refused() {
    let _guard = lock_pool();
    let dir = temp_dir("refuse");
    let ckpt = dir.join("ckpt.jsonl");
    run_trace(8, Some((&ckpt, false))).unwrap();
    let err = run_trace(16, Some((&ckpt, true))).unwrap_err();
    std::fs::remove_dir_all(&dir).ok();
    assert!(
        matches!(err, CometError::Checkpoint(ref m) if m.contains("segment_rows")),
        "expected a typed segment_rows refusal, got: {err}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random pollute/restore/set sequences applied to copies of one
    /// column at segment sizes {1, 7, 64Ki ⇒ single, whole-column} leave
    /// every copy with identical cells and an identical fingerprint.
    /// Each op is (kind, row, value): kind 0 pollutes (→ missing), kind 1
    /// restores the original value, kind 2 sets a fresh one.
    #[test]
    fn random_edit_sequences_are_segment_size_invariant(
        ops in prop::collection::vec((0u8..3, 0usize..50, -1e3f64..1e3), 1..40),
    ) {
        let _guard = lock_pool();
        let base: Vec<f64> = (0..50).map(|i| (i as f64) * 0.75 - 12.0).collect();
        let whole = Column::numeric("x", base.clone());
        let mut copies: Vec<Column> = [1usize, 7, comet::frame::DEFAULT_SEGMENT_ROWS, 0]
            .iter()
            .map(|&s| whole.resegment(s).unwrap())
            .collect();
        for &(kind, row, v) in &ops {
            let cell = match kind {
                0 => Cell::Missing,
                1 => Cell::Num(base[row]),
                _ => Cell::Num(v),
            };
            for col in &mut copies {
                col.set(row, cell).unwrap();
            }
        }
        let fp = copies[0].fingerprint();
        for (i, col) in copies.iter().enumerate() {
            prop_assert_eq!(col.fingerprint(), fp, "fingerprint diverged for copy {}", i);
            for row in 0..50 {
                prop_assert_eq!(
                    col.get(row).unwrap(),
                    copies[0].get(row).unwrap(),
                    "cell ({}, copy {}) diverged", row, i
                );
            }
        }
    }
}
