//! `comet` — command-line interface to the COMET toolkit.
//!
//! ```text
//! comet pollute   --input data.csv --label y --error mv --level 0.2 --output dirty.csv
//! comet evaluate  --input data.csv --label y --algo knn
//! comet recommend --dirty dirty.csv --clean clean.csv --label y --algo knn --budget 10
//! comet serve     --root store/ --workers 2 --port-file port.txt
//! comet client start --port-file port.txt --dirty FP --clean FP --label y
//! ```
//!
//! * `pollute` injects one error type at a given level into every applicable
//!   feature — handy for building test fixtures.
//! * `evaluate` splits a CSV, tunes the chosen model, and reports F1.
//! * `recommend` runs a full COMET session against a dirty/clean CSV pair
//!   (the clean file is the simulated Cleaner's ground truth) and prints
//!   the step-by-step cleaning recommendations plus a summary; the trace is
//!   optionally written as CSV via `--trace out.csv`, and `--metrics-out
//!   run.jsonl` enables the `comet-obs` registry for the run and streams a
//!   JSONL journal (one record per iteration with per-phase durations and
//!   counters, one summary record at exit) plus a metrics report.
//!   `--checkpoint ckpt.jsonl` records a resumable checkpoint every
//!   iteration; add `--resume` to continue a killed run bit-identically,
//!   and `--max-retries N` to tune candidate-failure retries (DESIGN.md §9).
//! * `serve` runs the multi-tenant session daemon (DESIGN.md §14): it
//!   hosts uploaded datasets and queued cleaning sessions, survives
//!   `kill -9` (interrupted sessions resume bit-identically from their
//!   checkpoints on restart), and blocks until a client sends `drain`.
//! * `client` is the matching wire client, one request per invocation; it
//!   prints the daemon's JSON response, and `--retry N` honours the
//!   server's backoff hints on retryable rejections.

use comet::core::{build_paired_env, CheckpointSpec, CleaningSession, CometConfig};
use comet::frame::{read_csv, write_csv};
use comet::jenga::{inject, sample_rows, ErrorType};
use comet::ml::{Algorithm, RandomSearch};
use comet::obs::json::JsonObject;
use comet::serve::{Client, Daemon, ServeConfig, ServeFault, ServeFaultPlan};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  comet pollute   --input FILE --label COL --error mv|gn|cs|s --level FRAC --output FILE [--seed N]
  comet evaluate  --input FILE --label COL [--algo NAME] [--seed N]
  comet recommend --dirty FILE --clean FILE --label COL [--algo NAME] [--budget N]
                  [--step FRAC] [--batch N] [--max-retries N] [--trace FILE]
                  [--checkpoint FILE [--resume]] [--metrics-out FILE]
                  [--kernels scalar|simd] [--f32-probes]
                  [--detect [--detectors LIST]]
                  [--no-feature-cache] [--seed N]
                  [--segment-rows N] [--memory-budget BYTES]

  comet serve     --root DIR [--workers N] [--max-queued N] [--tenant-cap N]
                  [--backoff-ms N] [--port N] [--port-file FILE]
                  [--kernels scalar|simd] [--metrics-out FILE]
                  [--report-every-secs N] [--inject-fault SPEC[,SPEC...]]
                  [--segment-rows N] [--memory-budget BYTES]
  comet client ACTION [--port N | --port-file FILE] [--retry N] ...
                  ping | stats | drain
                  upload  --file FILE
                  start   --dirty FP --label COL [--clean FP] [--algo NAME]
                          [--budget N] [--seed N] [--tenant NAME] [--detect]
                          [--deadline-ms N]
                  status  --session ID
                  results --session ID [--from N]
                  cancel  --session ID

  --detect      seed candidates from the built-in detector ensemble instead
                of the dirty/clean provenance diff (the oracle); --detectors
                narrows the ensemble (comma list, e.g. missing-sentinel,iqr;
                default all)
  --segment-rows N      rows per column segment (default 65536; 0 = whole
                column). Traces are bit-identical across sizes.
  --memory-budget BYTES cap resident segment bytes; cold segments spill to
                disk (LRU, content-addressed). Accepts K/M/G suffixes,
                e.g. 512M";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "pollute" => cmd_pollute(rest),
        "evaluate" => cmd_evaluate(rest),
        "recommend" => cmd_recommend(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["resume", "no-feature-cache", "f32-probes", "detect"];

/// Parse `--key value` pairs (and valueless [`BOOL_FLAGS`]).
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut iter = args.iter();
    while let Some(key) = iter.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected --flag, got {key:?}"));
        };
        if BOOL_FLAGS.contains(&name) {
            out.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = iter.next().ok_or_else(|| format!("--{name} needs a value"))?;
        out.insert(name.to_string(), value.clone());
    }
    Ok(out)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags.get(name).map(String::as_str).ok_or_else(|| format!("missing required flag --{name}"))
}

fn seed_of(flags: &HashMap<String, String>) -> Result<u64, String> {
    flags.get("seed").map_or(Ok(42), |s| s.parse().map_err(|e| format!("--seed: {e}")))
}

/// `--detect [--detectors LIST]` → the session's detector configuration.
/// `--detectors` without `--detect` is rejected rather than ignored.
fn parse_detect(
    flags: &HashMap<String, String>,
) -> Result<Option<comet::detect::DetectorConfig>, String> {
    let enabled = flags.contains_key("detect");
    match flags.get("detectors") {
        Some(list) => {
            if !enabled {
                return Err("--detectors requires --detect".into());
            }
            let set = comet::detect::DetectorSet::parse(list)
                .ok_or_else(|| format!("unknown detector in {list:?}"))?;
            if set.is_empty() {
                return Err("--detectors must enable at least one detector".into());
            }
            Ok(Some(comet::detect::DetectorConfig {
                enabled: set,
                ..comet::detect::DetectorConfig::default()
            }))
        }
        None if enabled => Ok(Some(comet::detect::DetectorConfig::default())),
        None => Ok(None),
    }
}

/// `--segment-rows N` → rows per column segment (`0` = whole-column,
/// absent = the config default).
fn segment_rows_of(flags: &HashMap<String, String>) -> Result<usize, String> {
    flags.get("segment-rows").map_or(Ok(CometConfig::default().segment_rows), |s| {
        s.parse().map_err(|e| format!("--segment-rows: {e}"))
    })
}

/// Parse a byte size: a plain integer, optionally with a binary K/M/G
/// suffix (`512M` = 512 × 2²⁰).
fn parse_bytes(s: &str) -> Result<u64, String> {
    let (digits, shift) = match s.as_bytes().last() {
        Some(b'K' | b'k') => (&s[..s.len() - 1], 10),
        Some(b'M' | b'm') => (&s[..s.len() - 1], 20),
        Some(b'G' | b'g') => (&s[..s.len() - 1], 30),
        _ => (s, 0),
    };
    let n: u64 = digits.trim().parse().map_err(|e| format!("bad byte size {s:?}: {e}"))?;
    n.checked_shl(shift)
        .filter(|v| v >> shift == n)
        .ok_or_else(|| format!("byte size {s:?} overflows u64"))
}

fn algo_of(flags: &HashMap<String, String>) -> Result<Algorithm, String> {
    match flags.get("algo") {
        None => Ok(Algorithm::Knn),
        Some(name) => Algorithm::parse(name).ok_or_else(|| format!("unknown algorithm {name:?}")),
    }
}

fn cmd_pollute(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let input = required(&flags, "input")?;
    let label = required(&flags, "label")?;
    let output = required(&flags, "output")?;
    let error = ErrorType::parse(required(&flags, "error")?)
        .ok_or("unknown error type (use mv|gn|cs|s)")?;
    let level: f64 = required(&flags, "level")?.parse().map_err(|e| format!("--level: {e}"))?;
    if !(0.0..=1.0).contains(&level) {
        return Err("--level must be in [0, 1]".into());
    }
    let mut rng = StdRng::seed_from_u64(seed_of(&flags)?);

    let mut df = read_csv(input, Some(label)).map_err(|e| format!("{input}: {e}"))?;
    let n = df.nrows();
    let cells = (level * n as f64).round() as usize;
    let mut touched = 0usize;
    for col in df.feature_indices() {
        let kind = df.column(col).map_err(|e| e.to_string())?.kind();
        if !error.applicable(kind) {
            continue;
        }
        let rows = sample_rows(n, cells, &mut rng);
        let rec = inject(&mut df, col, &rows, error, &mut rng).map_err(|e| e.to_string())?;
        touched += rec.changed.len();
    }
    write_csv(&df, output).map_err(|e| e.to_string())?;
    println!("polluted {touched} cells with {error}; wrote {output}");
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let input = required(&flags, "input")?;
    let label = required(&flags, "label")?;
    let algorithm = algo_of(&flags)?;
    let mut rng = StdRng::seed_from_u64(seed_of(&flags)?);

    let df = read_csv(input, Some(label)).map_err(|e| format!("{input}: {e}"))?;
    let segment_rows = segment_rows_of(&flags)?;
    let env = build_paired_env(
        df,
        None,
        algorithm,
        0.01,
        RandomSearch::default(),
        7,
        segment_rows,
        &mut rng,
    )
    .map_err(|e| e.to_string())?;
    let f1 = env.evaluate().map_err(|e| e.to_string())?;
    println!(
        "{algorithm} on {input}: F1 {f1:.4} ({} train / {} test rows, {} features)",
        env.train().nrows(),
        env.test().nrows(),
        env.feature_cols().len()
    );
    Ok(())
}

fn cmd_recommend(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let dirty_path = required(&flags, "dirty")?;
    let clean_path = required(&flags, "clean")?;
    let label = required(&flags, "label")?;
    let algorithm = algo_of(&flags)?;
    let budget: f64 = flags
        .get("budget")
        .map_or(Ok(20.0), |s| s.parse().map_err(|e| format!("--budget: {e}")))?;
    let step: f64 =
        flags.get("step").map_or(Ok(0.01), |s| s.parse().map_err(|e| format!("--step: {e}")))?;
    let batch: usize =
        flags.get("batch").map_or(Ok(1), |s| s.parse().map_err(|e| format!("--batch: {e}")))?;
    let max_retries: usize = flags.get("max-retries").map_or_else(
        || Ok(CometConfig::default().max_retries),
        |s| s.parse().map_err(|e| format!("--max-retries: {e}")),
    )?;
    // Kernel tier precedence: `--kernels` beats `COMET_KERNELS` beats the
    // scalar default (the config default already resolves the env var).
    let kernels = match flags.get("kernels") {
        None => CometConfig::default().kernels,
        Some(name) => comet::ml::kernels::KernelTier::parse(name)
            .ok_or_else(|| format!("unknown kernel tier {name:?} (use scalar|simd)"))?,
    };
    let f32_probes = flags.contains_key("f32-probes");
    let detect = parse_detect(&flags)?;
    let resume = flags.contains_key("resume");
    let checkpoint =
        flags.get("checkpoint").map(|path| CheckpointSpec { path: path.into(), resume });
    if resume && checkpoint.is_none() {
        return Err("--resume requires --checkpoint FILE".into());
    }
    let mut rng = StdRng::seed_from_u64(seed_of(&flags)?);

    let segment_rows = segment_rows_of(&flags)?;
    // `--memory-budget` arms the spill tier before the CSVs stream in, so
    // even the initial load stays under the cap. The spill directory lives
    // next to the checkpoint when one is given (it survives a kill and the
    // resume finds the same content-addressed files), else under the OS
    // temp dir.
    let memory_budget = flags.get("memory-budget").map(|s| parse_bytes(s)).transpose()?;
    if let Some(budget) = memory_budget {
        let dir = match flags.get("checkpoint") {
            Some(ckpt) => std::path::Path::new(ckpt)
                .parent()
                .filter(|p| !p.as_os_str().is_empty())
                .unwrap_or_else(|| std::path::Path::new("."))
                .join("comet-spill"),
            None => std::env::temp_dir().join(format!("comet-spill-{}", std::process::id())),
        };
        comet::frame::spill_configure(&dir, budget)
            .map_err(|e| format!("--memory-budget: cannot open spill dir: {e}"))?;
    }

    let dirty = read_csv(dirty_path, Some(label)).map_err(|e| format!("{dirty_path}: {e}"))?;
    let clean = read_csv(clean_path, Some(label)).map_err(|e| format!("{clean_path}: {e}"))?;

    // The shared front-end path: `comet-core::build_paired_env` splits,
    // derives the provenance oracle, and assembles the environment exactly
    // the way the `comet-serve` daemon does, so a CLI run and a served run
    // with the same seed produce bit-identical traces.
    let mut env = build_paired_env(
        dirty,
        Some(clean),
        algorithm,
        step,
        RandomSearch::default(),
        7,
        segment_rows,
        &mut rng,
    )
    .map_err(|e| e.to_string())?;
    if let Some(budget) = memory_budget {
        // Derived feature blocks get a quarter of the budget; they are
        // dropped (recomputed from segments), never spilled.
        env.set_feature_cache_budget((budget / 4).max(1) as usize);
    }
    // `--no-feature-cache` reverts evaluation to full re-featurization per
    // candidate — the pre-cache behaviour, kept as an escape hatch and for
    // timing comparisons. Scores are identical either way.
    if flags.contains_key("no-feature-cache") {
        env.set_feature_caching(false);
    }
    // Which error types does the dirt look like? Oracle mode runs the
    // paper's four (the provenance derived from the diff uses those
    // heuristically). Detection mode runs the full extended taxonomy: the
    // ensemble attributes families like outliers and near-duplicates that
    // the diff heuristic never emits.
    let errors =
        if detect.is_some() { ErrorType::EXTENDED.to_vec() } else { ErrorType::ALL.to_vec() };

    // `--metrics-out` turns on the observability registry for this run and
    // streams the JSONL journal to the given path while the session runs.
    let metrics_out = flags.get("metrics-out");
    if let Some(path) = metrics_out {
        let file = std::fs::File::create(path).map_err(|e| format!("--metrics-out: {e}"))?;
        comet::obs::reset();
        comet::obs::set_enabled(true);
        comet::obs::journal::set_sink(Some(Box::new(std::io::BufWriter::new(file))));
    }

    println!("dirty F1: {:.4}", env.evaluate().map_err(|e| e.to_string())?);
    let config = CometConfig {
        budget,
        step_frac: step,
        batch_size: batch,
        max_retries,
        kernels,
        f32_probes,
        detect,
        segment_rows,
        ..CometConfig::default()
    };
    let mut session = CleaningSession::new(config, errors);
    if let Some(spec) = checkpoint {
        session = session.with_checkpoint(spec);
    }
    let outcome = session.run(&mut env, &mut rng).map_err(|e| e.to_string())?;

    if let Some(path) = metrics_out {
        if let Some(metrics) = &outcome.metrics {
            comet::obs::journal::emit(&metrics.summary_json());
            print!("{}", metrics.report());
        }
        // `take_sink` flushes and surfaces any write error the journal
        // swallowed mid-run — a silently truncated journal should not
        // report success.
        let (_sink, flush_error) = comet::obs::journal::take_sink();
        comet::obs::set_enabled(false);
        match flush_error {
            Some(e) => eprintln!("warning: metrics journal {path} may be incomplete: {e}"),
            None => println!("metrics journal written to {path}"),
        }
    }
    let trace = outcome.trace;

    for r in &trace.records {
        let feature = env
            .train()
            .column(r.col)
            .map(|c| c.name().to_string())
            .unwrap_or_else(|_| format!("#{}", r.col));
        println!(
            "  [{:>3}] {feature:<16} {:<4} cost {:>4.1}  F1 {:.4}  {}",
            r.iteration,
            r.err.abbrev(),
            r.cost,
            r.actual_f1,
            r.action.label(),
        );
    }
    for f in &trace.failures {
        println!(
            "  [{:>3}] candidate (#{}, {}) failed after {} retries: {}",
            f.iteration,
            f.col,
            f.err.abbrev(),
            f.retries,
            f.reason,
        );
    }
    print!("{}", trace.summary());
    if detect.is_some() {
        // Harness-side diagnostics: how well the ensemble tracked the
        // dirty/clean diff (COMET itself never saw these numbers).
        if let Ok(scores) = env.detector_scores() {
            println!("detector precision/recall vs the dirty/clean diff (train split):");
            for s in scores {
                println!(
                    "  {:<20} flagged {:>5}  P {:.3}  R {:.3}",
                    s.detector.name(),
                    s.flagged,
                    s.precision,
                    s.recall,
                );
            }
        }
    }
    if let Some(path) = flags.get("trace") {
        std::fs::write(path, trace.to_csv(Some(env.train()))).map_err(|e| e.to_string())?;
        println!("trace written to {path}");
    }
    if memory_budget.is_some() {
        if let Some(s) = comet::frame::spill_stats() {
            println!(
                "spill tier: {} spills / {} reloads, {} segments resident \
                 ({:.1} MiB resident, {:.1} MiB on disk)",
                s.spills,
                s.reloads,
                s.resident_segments,
                s.resident_bytes as f64 / (1u64 << 20) as f64,
                s.spill_bytes as f64 / (1u64 << 20) as f64,
            );
        }
        comet::frame::spill_deconfigure();
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let mut config =
        ServeConfig { root: required(&flags, "root")?.into(), ..ServeConfig::default() };
    if let Some(v) = flags.get("workers") {
        config.workers = v.parse().map_err(|e| format!("--workers: {e}"))?;
    }
    if let Some(v) = flags.get("max-queued") {
        config.admission.max_queued = v.parse().map_err(|e| format!("--max-queued: {e}"))?;
    }
    if let Some(v) = flags.get("tenant-cap") {
        config.admission.per_tenant_cap = v.parse().map_err(|e| format!("--tenant-cap: {e}"))?;
    }
    if let Some(v) = flags.get("backoff-ms") {
        config.admission.base_backoff_ms = v.parse().map_err(|e| format!("--backoff-ms: {e}"))?;
    }
    if let Some(v) = flags.get("port") {
        config.port = v.parse().map_err(|e| format!("--port: {e}"))?;
    }
    if let Some(v) = flags.get("report-every-secs") {
        let secs: u64 = v.parse().map_err(|e| format!("--report-every-secs: {e}"))?;
        config.report_every = std::time::Duration::from_secs(secs);
    }
    if let Some(name) = flags.get("kernels") {
        config.kernels = comet::ml::kernels::KernelTier::parse(name)
            .ok_or_else(|| format!("unknown kernel tier {name:?} (use scalar|simd)"))?;
    }
    if let Some(list) = flags.get("inject-fault") {
        let specs: Vec<ServeFault> =
            list.split(',').map(ServeFault::parse).collect::<Result<_, _>>()?;
        config.faults = ServeFaultPlan::new(specs);
    }
    if flags.contains_key("segment-rows") {
        config.segment_rows = segment_rows_of(&flags)?;
    }
    if let Some(s) = flags.get("memory-budget") {
        config.memory_budget = Some(parse_bytes(s)?);
    }
    let metrics_out = flags.get("metrics-out");
    if let Some(path) = metrics_out {
        let file = std::fs::File::create(path).map_err(|e| format!("--metrics-out: {e}"))?;
        comet::obs::reset();
        comet::obs::set_enabled(true);
        comet::obs::journal::set_sink(Some(Box::new(std::io::BufWriter::new(file))));
    }

    let daemon = Daemon::start(config).map_err(|e| format!("starting daemon: {e}"))?;
    let port = daemon.port();
    // The port file is the rendezvous for scripts driving an ephemeral
    // port: written only once the socket is live and accepting.
    if let Some(path) = flags.get("port-file") {
        std::fs::write(path, format!("{port}\n")).map_err(|e| format!("--port-file: {e}"))?;
    }
    println!("comet-serve listening on 127.0.0.1:{port}");
    daemon.join();
    println!("comet-serve drained");

    if let Some(path) = metrics_out {
        let (_sink, flush_error) = comet::obs::journal::take_sink();
        comet::obs::set_enabled(false);
        match flush_error {
            Some(e) => eprintln!("warning: metrics journal {path} may be incomplete: {e}"),
            None => println!("metrics journal written to {path}"),
        }
    }
    Ok(())
}

fn cmd_client(args: &[String]) -> Result<(), String> {
    let Some((action, rest)) = args.split_first() else {
        return Err(
            "client needs an action: ping|upload|start|status|results|cancel|stats|drain".into()
        );
    };
    let flags = parse_flags(rest)?;
    let retries: usize =
        flags.get("retry").map_or(Ok(0), |s| s.parse().map_err(|e| format!("--retry: {e}")))?;
    let request = build_client_request(action, &flags)?;
    let port = client_port(&flags)?;
    let mut client =
        Client::connect(port).map_err(|e| format!("connecting to 127.0.0.1:{port}: {e}"))?;
    // Typed retryable rejections (queue-full, tenant-cap) are retried up
    // to `--retry` times honouring the server's backoff hint; anything
    // still failing surfaces as `kind: message (retry in N ms)` on stderr
    // with a nonzero exit.
    let value = client.request_with_retry(&request, retries).map_err(|e| e.to_string())?;
    println!("{value}");
    Ok(())
}

/// Resolve the daemon port from `--port` or a `--port-file` written by
/// `comet serve`.
fn client_port(flags: &HashMap<String, String>) -> Result<u16, String> {
    if let Some(p) = flags.get("port") {
        return p.parse().map_err(|e| format!("--port: {e}"));
    }
    match flags.get("port-file") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("--port-file {path}: {e}"))?;
            text.trim().parse().map_err(|e| format!("--port-file {path}: {e}"))
        }
        None => Err("client needs --port N or --port-file FILE".into()),
    }
}

/// Encode one client action as a request frame for the serve protocol.
fn build_client_request(action: &str, flags: &HashMap<String, String>) -> Result<String, String> {
    let mut req = JsonObject::new();
    match action {
        "ping" | "stats" | "drain" => {
            req.field_str("cmd", action);
        }
        "upload" => {
            let path = required(flags, "file")?;
            let csv = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            req.field_str("cmd", "upload").field_str("csv", &csv);
        }
        "start" => {
            req.field_str("cmd", "start")
                .field_str("dirty", required(flags, "dirty")?)
                .field_str("label", required(flags, "label")?);
            for key in ["clean", "tenant", "algo"] {
                if let Some(value) = flags.get(key) {
                    req.field_str(key, value);
                }
            }
            if let Some(b) = flags.get("budget") {
                req.field_f64("budget", b.parse().map_err(|e| format!("--budget: {e}"))?);
            }
            if let Some(s) = flags.get("seed") {
                req.field_u64("seed", s.parse().map_err(|e| format!("--seed: {e}"))?);
            }
            if flags.contains_key("detect") {
                req.field_raw("detect", "true");
            }
            if let Some(ms) = flags.get("deadline-ms") {
                req.field_u64(
                    "deadline_ms",
                    ms.parse().map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
        }
        "status" | "cancel" => {
            req.field_str("cmd", action).field_str("session", required(flags, "session")?);
        }
        "results" => {
            req.field_str("cmd", "results").field_str("session", required(flags, "session")?);
            if let Some(from) = flags.get("from") {
                req.field_u64("from", from.parse().map_err(|e| format!("--from: {e}"))?);
            }
        }
        other => {
            return Err(format!(
                "unknown client action {other:?} \
                 (use ping|upload|start|status|results|cancel|stats|drain)"
            ));
        }
    }
    Ok(req.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Result<HashMap<String, String>, String> {
        parse_flags(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parse_flags_pairs() {
        let f = flags(&["--input", "a.csv", "--label", "y"]).unwrap();
        assert_eq!(f.get("input").unwrap(), "a.csv");
        assert_eq!(required(&f, "label").unwrap(), "y");
        assert!(required(&f, "missing").is_err());
    }

    #[test]
    fn parse_flags_rejects_bad_shapes() {
        assert!(flags(&["input", "a.csv"]).is_err(), "missing --");
        assert!(flags(&["--input"]).is_err(), "dangling flag");
    }

    #[test]
    fn resume_is_a_valueless_flag() {
        let f = flags(&["--resume", "--trace", "t.csv"]).unwrap();
        assert_eq!(f.get("resume").unwrap(), "true");
        assert_eq!(f.get("trace").unwrap(), "t.csv");
        let f = flags(&["--resume"]).unwrap();
        assert!(f.contains_key("resume"));
    }

    #[test]
    fn kernel_flags_parse() {
        let f = flags(&["--f32-probes", "--kernels", "simd"]).unwrap();
        assert!(f.contains_key("f32-probes"), "--f32-probes is valueless");
        assert_eq!(f.get("kernels").unwrap(), "simd");
        assert_eq!(comet::ml::kernels::KernelTier::parse("simd").unwrap().lanes(), 8);
    }

    #[test]
    fn segment_and_budget_flags_parse() {
        let f = flags(&[]).unwrap();
        assert_eq!(segment_rows_of(&f).unwrap(), CometConfig::default().segment_rows);
        let f = flags(&["--segment-rows", "1024"]).unwrap();
        assert_eq!(segment_rows_of(&f).unwrap(), 1024);
        let f = flags(&["--segment-rows", "0"]).unwrap();
        assert_eq!(segment_rows_of(&f).unwrap(), 0, "0 = whole-column");
        assert!(segment_rows_of(&flags(&["--segment-rows", "many"]).unwrap()).is_err());

        assert_eq!(parse_bytes("4096").unwrap(), 4096);
        assert_eq!(parse_bytes("64K").unwrap(), 64 << 10);
        assert_eq!(parse_bytes("512M").unwrap(), 512 << 20);
        assert_eq!(parse_bytes("2g").unwrap(), 2 << 30);
        assert!(parse_bytes("1.5G").is_err());
        assert!(parse_bytes("lots").is_err());
        assert!(parse_bytes("99999999999G").is_err(), "overflow is loud");
    }

    #[test]
    fn seed_and_algo_defaults() {
        let f = flags(&[]).unwrap();
        assert_eq!(seed_of(&f).unwrap(), 42);
        assert_eq!(algo_of(&f).unwrap(), Algorithm::Knn);
        let f = flags(&["--seed", "7", "--algo", "gb"]).unwrap();
        assert_eq!(seed_of(&f).unwrap(), 7);
        assert_eq!(algo_of(&f).unwrap(), Algorithm::Gb);
        let f = flags(&["--algo", "alexnet"]).unwrap();
        assert!(algo_of(&f).is_err());
        let f = flags(&["--seed", "NaN"]).unwrap();
        assert!(seed_of(&f).is_err());
    }

    #[test]
    fn detect_flags_parse() {
        let f = flags(&["--detect"]).unwrap();
        let config = parse_detect(&f).unwrap().expect("--detect enables detection");
        assert_eq!(config, comet::detect::DetectorConfig::default());

        let f = flags(&["--detect", "--detectors", "missing-sentinel,iqr"]).unwrap();
        let config = parse_detect(&f).unwrap().unwrap();
        assert!(config.enabled.contains(comet::detect::DetectorKind::MissingSentinel));
        assert!(config.enabled.contains(comet::detect::DetectorKind::Iqr));
        assert!(!config.enabled.contains(comet::detect::DetectorKind::Domain));

        // Oracle mode stays the default; partial/invalid flags are loud.
        assert_eq!(parse_detect(&flags(&[]).unwrap()).unwrap(), None);
        assert!(parse_detect(&flags(&["--detectors", "iqr"]).unwrap()).is_err());
        assert!(parse_detect(&flags(&["--detect", "--detectors", "psychic"]).unwrap()).is_err());
    }

    #[test]
    fn provenance_derivation_classifies_errors() {
        // The CLI builds environments through the shared `comet-core`
        // helpers; this exercises the façade re-export end to end.
        use comet::frame::{Cell, Column, DataFrame};
        use comet::jenga::GroundTruth;
        let x = Column::numeric("x", vec![1.0, 2.0, 3.0, 4.0]);
        let c = Column::categorical("c", vec![0, 1, 0, 1], vec!["a".into(), "b".into()]).unwrap();
        let y = Column::categorical("y", vec![0, 1, 0, 1], vec!["n".into(), "p".into()]).unwrap();
        let clean = DataFrame::new(vec![x, c, y], Some("y")).unwrap();
        let mut dirty = clean.clone();
        dirty.set(0, 0, Cell::Missing).unwrap(); // MV
        dirty.set(1, 0, Cell::Num(200.0)).unwrap(); // ×100 → scaling
        dirty.set(2, 0, Cell::Num(3.7)).unwrap(); // noise
        dirty.set(3, 1, Cell::Cat(0)).unwrap(); // shift
        let gt = GroundTruth::new(clean);
        let prov = comet::core::derive_provenance(&dirty, &gt).unwrap();
        assert_eq!(prov.get(0, 0), Some(ErrorType::MissingValues));
        assert_eq!(prov.get(0, 1), Some(ErrorType::Scaling));
        assert_eq!(prov.get(0, 2), Some(ErrorType::GaussianNoise));
        assert_eq!(prov.get(1, 3), Some(ErrorType::CategoricalShift));
        assert_eq!(prov.get(0, 3), None);
    }

    #[test]
    fn client_requests_encode_and_validate() {
        let f = flags(&["--session", "s00000001", "--from", "3"]).unwrap();
        let req = build_client_request("results", &f).unwrap();
        let parsed = comet::obs::json::parse(&req).unwrap();
        assert_eq!(parsed.get("cmd").unwrap().as_str(), Some("results"));
        assert_eq!(parsed.get("session").unwrap().as_str(), Some("s00000001"));
        assert_eq!(parsed.get("from").unwrap().as_f64(), Some(3.0));

        let f = flags(&["--dirty", "abc", "--label", "y", "--detect", "--budget", "5"]).unwrap();
        let req = build_client_request("start", &f).unwrap();
        let parsed = comet::obs::json::parse(&req).unwrap();
        assert_eq!(parsed.get("detect"), Some(&comet::obs::json::JsonValue::Bool(true)));
        assert_eq!(parsed.get("budget").unwrap().as_f64(), Some(5.0));
        assert!(parsed.get("clean").is_none(), "omitted flags stay omitted");

        assert!(build_client_request("start", &flags(&["--dirty", "abc"]).unwrap()).is_err());
        assert!(build_client_request("status", &flags(&[]).unwrap()).is_err());
        assert!(build_client_request("frobnicate", &flags(&[]).unwrap()).is_err());
    }

    #[test]
    fn client_port_resolves_flag_then_file() {
        let f = flags(&["--port", "4410"]).unwrap();
        assert_eq!(client_port(&f).unwrap(), 4410);
        assert!(client_port(&flags(&[]).unwrap()).is_err(), "no source → loud error");
        assert!(client_port(&flags(&["--port", "banana"]).unwrap()).is_err());

        let path = std::env::temp_dir().join(format!("comet-port-{}", std::process::id()));
        std::fs::write(&path, "4411\n").unwrap();
        let f = flags(&["--port-file", path.to_str().unwrap()]).unwrap();
        assert_eq!(client_port(&f).unwrap(), 4411);
        std::fs::remove_file(&path).ok();
    }
}
