//! # comet — façade crate
//!
//! Re-exports the public API of the COMET workspace: the data frame
//! substrate, error-injection framework, ML library, Bayesian statistics,
//! dataset generators, the COMET cleaning-recommendation engine, the
//! baselines it is evaluated against, and the `comet-serve` session daemon.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use comet_baselines as baselines;
pub use comet_bayes as bayes;
pub use comet_core as core;
pub use comet_datasets as datasets;
pub use comet_detect as detect;
pub use comet_frame as frame;
pub use comet_jenga as jenga;
pub use comet_ml as ml;
pub use comet_obs as obs;
pub use comet_par as par;
pub use comet_serve as serve;

/// Commonly used items, importable as `use comet::prelude::*`.
pub mod prelude {
    pub use comet_core::{CleaningSession, CometConfig, CostModel, CostPolicy, SessionOutcome};
    pub use comet_datasets::{Dataset, DatasetSpec};
    pub use comet_frame::{DataFrame, SplitOptions};
    pub use comet_jenga::{ErrorType, PrePollutionPlan};
    pub use comet_ml::{Algorithm, Metric};
}
